#!/usr/bin/env bash
# Full local CI: build, the whole workspace test suite (the root
# package's `cargo test` alone misses the member crates — see
# README.md), then the zero-warning lint gate.
set -eu
cd "$(dirname "$0")/.."

echo "== ci: build =="
cargo build --workspace --all-targets

echo "== ci: test (--workspace) =="
cargo test --workspace --quiet

echo "== ci: engine scratch-reuse stress =="
cargo test --quiet --test engine_reuse

echo "== ci: engine allocation gate =="
cargo test --quiet --test alloc_gate

echo "== ci: lint =="
scripts/lint.sh

echo "== ci: ok =="
