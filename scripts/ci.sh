#!/usr/bin/env bash
# Full local CI: build, the whole workspace test suite (the root
# package's `cargo test` alone misses the member crates — see
# README.md), then the zero-warning lint gate.
set -eu
cd "$(dirname "$0")/.."

echo "== ci: build =="
cargo build --workspace --all-targets

echo "== ci: test (--workspace) =="
cargo test --workspace --quiet

echo "== ci: engine scratch-reuse stress =="
cargo test --quiet --test engine_reuse

echo "== ci: engine allocation gate =="
cargo test --quiet --test alloc_gate

echo "== ci: fault campaign soak (determinism + golden) =="
# The seeded campaign must be a pure function of its config: two runs
# byte-identical, and both matching the checked-in golden summary.
# Regenerate after an intentional change with:
#   cargo run -q -p cst-tools -- campaign --quick --seed 7 > scripts/campaign_golden.json
campaign_a="$(mktemp)"
campaign_b="$(mktemp)"
stream_a="$(mktemp)"
stream_b="$(mktemp)"
model_a="$(mktemp)"
model_b="$(mktemp)"
trap 'rm -f "$campaign_a" "$campaign_b" "$stream_a" "$stream_b" "$model_a" "$model_b"' EXIT
cargo run -q -p cst-tools -- campaign --quick --seed 7 > "$campaign_a"
cargo run -q -p cst-tools -- campaign --quick --seed 7 > "$campaign_b"
if ! cmp -s "$campaign_a" "$campaign_b"; then
    echo "fault campaign is nondeterministic under a fixed seed" >&2
    exit 1
fi
if ! diff -u scripts/campaign_golden.json "$campaign_a"; then
    echo "fault campaign drifted from scripts/campaign_golden.json" >&2
    exit 1
fi
# The per-trial execution cross-check defaults to compiled replay; the
# event-driven interpreter must produce the same bytes (the report is a
# pure function of the config, never of the sim backend).
cargo run -q -p cst-tools -- campaign --quick --seed 7 --interpreted > "$campaign_b"
if ! cmp -s "$campaign_a" "$campaign_b"; then
    echo "campaign report differs between compiled and interpreted backends" >&2
    exit 1
fi
echo "fault campaign: deterministic, matches golden, backend-independent"

echo "== ci: stream replay soak (determinism + golden) =="
# The seeded request stream must be a pure function of its flags once the
# wall-clock fields are stripped: two runs identical, and both matching
# the checked-in golden hit/miss counts. Regenerate after an intentional
# change (new stream model, new cache policy) with:
#   cargo run -q -p cst-tools -- stream --requests 400 --pes 256 --working 6 \
#       --repeat 0.7 --delta 2 --seed 11 --cache-cap 32 --json \
#       | grep -vE '"(elapsed_ns|requests_per_sec)"' > scripts/stream_golden.json
stream_cmd() {
    cargo run -q -p cst-tools -- stream --requests 400 --pes 256 --working 6 \
        --repeat 0.7 --delta 2 --seed 11 --cache-cap 32 --json \
        | grep -vE '"(elapsed_ns|requests_per_sec)"'
}
stream_cmd > "$stream_a"
stream_cmd > "$stream_b"
if ! cmp -s "$stream_a" "$stream_b"; then
    echo "stream replay is nondeterministic under a fixed seed" >&2
    exit 1
fi
if ! diff -u scripts/stream_golden.json "$stream_a"; then
    echo "stream replay drifted from scripts/stream_golden.json" >&2
    exit 1
fi
echo "stream replay: deterministic, matches golden"

echo "== ci: layered decomposition sweep (determinism + golden) =="
# The seeded arbitrary-set sweep (layering + per-layer routing + full
# CST3xx/static/model audit per request) must be a pure function of its
# flags: two runs byte-identical, both matching the checked-in golden
# (layer counts vs certified lower bounds included). Regenerate after an
# intentional change (new coloring order, new certificate) with:
#   cargo run -q -p cst-tools -- decomp --report > scripts/decomp_golden.json
decomp_a="$(mktemp)"
decomp_b="$(mktemp)"
trap 'rm -f "$campaign_a" "$campaign_b" "$stream_a" "$stream_b" "$model_a" "$model_b" "$decomp_a" "$decomp_b"' EXIT
cargo run -q -p cst-tools -- decomp --report > "$decomp_a"
cargo run -q -p cst-tools -- decomp --report > "$decomp_b"
if ! cmp -s "$decomp_a" "$decomp_b"; then
    echo "decomposition sweep is nondeterministic under a fixed seed" >&2
    exit 1
fi
if ! diff -u scripts/decomp_golden.json "$decomp_a"; then
    echo "decomposition sweep drifted from scripts/decomp_golden.json" >&2
    exit 1
fi
echo "decomposition sweep: deterministic, audits clean, matches golden"

echo "== ci: reference-model exhaustive enumeration =="
# The tentpole correctness gate: every right-oriented well-nested set on
# n <= 8 leaves (334 sets, Motzkin-enumerated), every reachable protocol
# state, cross-checked transition-for-transition against switch_logic —
# plus the seeded shape-exhaustive sweep at n = 16. Exit 0 means zero
# divergences; the summary must also be byte-identical across two runs.
cargo run -q -p cst-tools -- model enumerate > "$model_a"
cargo run -q -p cst-tools -- model enumerate > "$model_b"
if ! cmp -s "$model_a" "$model_b"; then
    echo "model enumeration is nondeterministic" >&2
    exit 1
fi
cat "$model_a"

echo "== ci: reference-model conformance sweep =="
# Seeded random sets replayed through the model via the host scheduler's
# trace emitter; same determinism contract.
model_conform() {
    cargo run -q -p cst-tools -- model conform --requests 40 --pes 64 \
        --density 0.5 --seed 11
}
model_conform > "$model_a"
model_conform > "$model_b"
if ! cmp -s "$model_a" "$model_b"; then
    echo "model conformance sweep is nondeterministic under a fixed seed" >&2
    exit 1
fi
cat "$model_a"

echo "== ci: serve daemon soak (unix socket, determinism + golden) =="
# One cst-serve daemon on a Unix socket, two seeded single-client
# bench-serve runs against it. With --clients 1 --reset every stats
# field in the report is a pure function of the flags: the two runs must
# be byte-identical once the wall-clock fields are stripped, and both
# must match the checked-in golden. Regenerate after an intentional
# change (new counters, new cache policy, new wire layout) by re-running
# the serve_cmd pipeline below against a fresh daemon:
#   cargo run -q -p cst-tools -- serve --unix target/ci-serve.sock &
#   cargo run -q -p cst-tools -- bench-serve --unix target/ci-serve.sock \
#       --clients 1 --reset --json | <strip> > scripts/serve_golden.json
serve_a="$(mktemp)"
serve_b="$(mktemp)"
serve_sock="target/ci-serve.sock"
serve_ready="target/ci-serve.ready"
serve_pid=""
rm -f "$serve_sock" "$serve_ready"
trap 'rm -f "$campaign_a" "$campaign_b" "$stream_a" "$stream_b" "$model_a" "$model_b" "$decomp_a" "$decomp_b" "$serve_a" "$serve_b" "$serve_sock" "$serve_ready"; if [ -n "$serve_pid" ]; then kill "$serve_pid" 2>/dev/null || true; fi' EXIT
cargo build -q -p cst-tools
target/debug/cst-tools serve --unix "$serve_sock" --ready-file "$serve_ready" --max-seconds 600 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -f "$serve_ready" ] && break
    sleep 0.1
done
if [ ! -f "$serve_ready" ]; then
    echo "cst-serve daemon did not come up on $serve_sock" >&2
    exit 1
fi
serve_cmd() {
    target/debug/cst-tools bench-serve --unix "$serve_sock" --clients 1 --reset --json \
        | grep -vE '"(uncached_ns_per_req|cached_ns_per_req|speedup|soak_p50_ns|soak_p99_ns|soak_requests_per_sec|contended_hit_p50_ns|contended_hit_p99_ns|available_parallelism|elapsed_ns)"'
}
serve_cmd > "$serve_a"
serve_cmd > "$serve_b"
if ! cmp -s "$serve_a" "$serve_b"; then
    echo "serve daemon stats are nondeterministic under a fixed seed" >&2
    exit 1
fi
if ! diff -u scripts/serve_golden.json "$serve_a"; then
    echo "serve daemon stats drifted from scripts/serve_golden.json" >&2
    exit 1
fi
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "serve daemon: deterministic over the wire, matches golden"

echo "== ci: lint =="
scripts/lint.sh

echo "== ci: ok =="
