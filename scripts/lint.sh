#!/usr/bin/env bash
# Zero-warning lint gate.
#
#   1. clippy over the whole workspace with -D warnings (vendored
#      stand-ins under vendor/ opt out via crate-level #![allow]);
#      falls back to a -D warnings build when clippy is unavailable.
#   2. unwrap/expect budget over crates/*/src non-test code, checked
#      against scripts/unwrap_allowlist.txt.
#
# Exits non-zero on any violation. Run from anywhere; operates on the
# repository root.
set -u
cd "$(dirname "$0")/.."

status=0

echo "== lint: clippy (-D warnings) =="
if cargo clippy --version >/dev/null 2>&1; then
    if ! cargo clippy --workspace --all-targets -- -D warnings; then
        status=1
    fi
else
    echo "clippy unavailable; falling back to RUSTFLAGS=-Dwarnings build"
    if ! RUSTFLAGS="-D warnings" cargo build --workspace --all-targets; then
        status=1
    fi
fi

echo "== lint: unwrap/expect budget =="
allowlist=scripts/unwrap_allowlist.txt
if [ ! -f "$allowlist" ]; then
    echo "missing $allowlist" >&2
    exit 1
fi

violations=0
while IFS= read -r f; do
    # Count .unwrap() / .expect( in non-test code: stop at the first
    # #[cfg(test)] module marker, skip // comment lines.
    n=$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        { c += gsub(/\.unwrap\(\)/, "") + gsub(/\.expect\(/, "") }
        END { print c + 0 }
    ' "$f")
    allowed=$(awk -v path="$f" '$1 == path { print $2; exit }' "$allowlist")
    allowed=${allowed:-0}
    if [ "$n" -gt "$allowed" ]; then
        echo "unwrap budget exceeded: $f has $n non-test unwrap/expect calls (allowed: $allowed)" >&2
        violations=$((violations + 1))
    fi
done < <(find crates -path '*/src/*' -name '*.rs' | sort)

# Flag stale allowlist entries so the budget only ratchets down.
while read -r path allowed; do
    case "$path" in ''|'#'*) continue ;; esac
    if [ ! -f "$path" ]; then
        echo "stale allowlist entry (file gone): $path" >&2
        violations=$((violations + 1))
    fi
done < "$allowlist"

if [ "$violations" -gt 0 ]; then
    echo "unwrap lint: $violations violation(s)" >&2
    status=1
else
    echo "unwrap lint: ok"
fi

exit $status
