#!/usr/bin/env bash
# Smoke-run the benchmark suite: every bench binary executes one
# abbreviated pass (criterion `--test` mode — no statistics, just "does
# it run and produce sane numbers"). The E5 scheduler-throughput bench
# additionally emits its measurements as JSON next to this script's
# output directory, so CI can diff against the checked-in BENCH_e5.json
# baselines without a full measurement run.
#
# Usage: scripts/bench_smoke.sh [output-dir]   (default: target/bench-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-target/bench-smoke}"
# cargo bench runs bench binaries with the package dir as cwd, so the
# CRITERION_JSON path must be absolute.
case "$out_dir" in /*) ;; *) out_dir="$PWD/$out_dir" ;; esac
mkdir -p "$out_dir"

# The engine registry is the single source of truth for router names;
# bench IDs must match it (checked against the E5 JSON below).
echo "== bench smoke: router registry =="
routers="$(cargo run -q -p cst-tools -- list-routers --names)"
printf '%s\n' "$routers"

echo "== bench smoke: e5_scheduler_throughput (JSON -> $out_dir/BENCH_e5.json) =="
CRITERION_JSON="$out_dir/BENCH_e5.json" \
    cargo bench -p bench --bench e5_scheduler_throughput -- --test

echo "== bench smoke: e5 bench IDs resolve in the registry =="
grep -o '"e5_schedulers/[^"]*"' "$out_dir/BENCH_e5.json" | tr -d '"' \
    | while IFS= read -r key; do
    name=${key#e5_schedulers/}
    name=${name%/*}
    # here-string, not a pipe: grep -q exits at the first match, and
    # under pipefail printf's SIGPIPE would read as a spurious failure
    if ! grep -qx "$name" <<< "$routers"; then
        echo "bench id '$name' is not a registry router name" >&2
        exit 1
    fi
done

echo "== bench smoke: e5 timings vs checked-in baseline =="
# Smoke timings are one cold pass, so this is a catastrophic-regression
# guard, not a measurement: every fault-free router/size must stay
# within E5_SMOKE_FACTOR x (default 20) of the checked-in warm median.
factor="${E5_SMOKE_FACTOR:-20}"
awk -v factor="$factor" '
    FNR == 1 { file++ }
    file == 1 && /"current"/ { in_cur = 1 }
    file == 1 && in_cur && /"e5_schedulers\// {
        key = $1; gsub(/[",:]/, "", key); base[key] = $2 + 0
    }
    file == 2 && /"e5_schedulers\// {
        key = $1; gsub(/[",:]/, "", key)
        if (key in base) {
            smoke = $2 + 0
            if (smoke > factor * base[key]) {
                printf "e5 regression: %s took %.0f ns (baseline %.0f ns, limit %.0fx)\n", \
                    key, smoke, base[key], factor > "/dev/stderr"
                bad = 1
            }
            checked++
        }
    }
    END {
        if (checked == 0) {
            print "e5 smoke gate: no comparable bench keys found" > "/dev/stderr"
            exit 1
        }
        if (bad) exit 1
        printf "e5 smoke gate: %d keys within %sx of baseline\n", checked, factor
    }
' BENCH_e5.json "$out_dir/BENCH_e5.json"

echo "== bench smoke: e6_stream_throughput (JSON -> $out_dir/BENCH_e6.json) =="
CRITERION_JSON="$out_dir/BENCH_e6.json" \
    cargo bench -p bench --bench e6_stream_throughput -- --test

echo "== bench smoke: e6 stream bench IDs =="
# The five stream ids are the cache's public contract: the checked-in
# BENCH_e6.json and a fresh smoke run must both carry exactly this set.
e6_ids="e6_stream/cached/1024
e6_stream/cold-baseline/1024
e6_stream/cold/1024
e6_stream/incremental-delta/1024
e6_stream/uncached/1024"
for f in BENCH_e6.json "$out_dir/BENCH_e6.json"; do
    got="$(grep -o '"e6_stream/[^"]*"' "$f" | tr -d '"' | sort -u)"
    if [ "$got" != "$e6_ids" ]; then
        echo "$f: e6_stream ids drifted from the expected set:" >&2
        diff <(printf '%s\n' "$e6_ids") <(printf '%s\n' "$got") >&2 || true
        exit 1
    fi
done
echo "e6 id gate: both files carry the five stream ids"

echo "== bench smoke: e6 cold path vs e5 baseline =="
# Two catastrophic-regression guards on the cache's miss path, in the
# same one-cold-pass spirit as the e5 gate above:
#  1. cold must stay within E6_COLD_FACTOR x (default 3) of cold-baseline
#     measured in the SAME smoke run (insert overhead, apples to apples);
#  2. the fixed-request uncached id must stay within E5_SMOKE_FACTOR x
#     (default 20) of the checked-in BENCH_e5.json csa/1024 warm median
#     (the two ids share the workload shape, so this anchors the e6 run
#     against the cross-file e5 baseline).
cold_factor="${E6_COLD_FACTOR:-3}"
awk -v cold_factor="$cold_factor" -v e5_factor="$factor" '
    FNR == 1 { file++ }
    file == 1 && /"current"/ { in_cur = 1 }
    file == 1 && in_cur && /"e5_schedulers\/csa\/1024"/ {
        e5_base = $2 + 0
    }
    file == 2 && /"e6_stream\// {
        key = $1; gsub(/[",:]/, "", key); sub(/^e6_stream\//, "", key)
        sub(/\/1024$/, "", key)
        val[key] = $2 + 0
    }
    END {
        if (e5_base == 0 || !("cold" in val) || !("cold-baseline" in val) || !("uncached" in val)) {
            print "e6 cold gate: missing bench keys" > "/dev/stderr"
            exit 1
        }
        if (val["cold"] > cold_factor * val["cold-baseline"]) {
            printf "e6 cold regression: cold %.0f ns vs cold-baseline %.0f ns (limit %.1fx)\n", \
                val["cold"], val["cold-baseline"], cold_factor > "/dev/stderr"
            exit 1
        }
        if (val["uncached"] > e5_factor * e5_base) {
            printf "e6/e5 anchor regression: uncached %.0f ns vs e5 csa/1024 %.0f ns (limit %.0fx)\n", \
                val["uncached"], e5_base, e5_factor > "/dev/stderr"
            exit 1
        }
        printf "e6 cold gate: cold/cold-baseline = %.2fx (limit %.1fx), uncached/e5 = %.2fx (limit %.0fx)\n", \
            val["cold"] / val["cold-baseline"], cold_factor, val["uncached"] / e5_base, e5_factor
    }
' BENCH_e5.json "$out_dir/BENCH_e6.json"

echo "== bench smoke: e13_compiled_replay (JSON -> $out_dir/BENCH_e13.json) =="
CRITERION_JSON="$out_dir/BENCH_e13.json" \
    cargo bench -p bench --bench e13_compiled_replay -- --test

echo "== bench smoke: e13 bench IDs =="
# The eleven ids are the compile-and-replay contract: interpreter /
# compiled / compile at each size plus the compile-once-replay-many
# stream pair. The checked-in BENCH_e13.json and a fresh smoke run must
# both carry exactly this set.
e13_ids="e13_compiled_replay/compile/1024
e13_compiled_replay/compile/256
e13_compiled_replay/compile/4096
e13_compiled_replay/compiled/1024
e13_compiled_replay/compiled/256
e13_compiled_replay/compiled/4096
e13_compiled_replay/interpreter/1024
e13_compiled_replay/interpreter/256
e13_compiled_replay/interpreter/4096
e13_compiled_replay/stream-compiled/1024
e13_compiled_replay/stream-interpreter/1024"
for f in BENCH_e13.json "$out_dir/BENCH_e13.json"; do
    got="$(grep -o '"e13_compiled_replay/[^"]*"' "$f" | tr -d '"' | sort -u)"
    if [ "$got" != "$e13_ids" ]; then
        echo "$f: e13_compiled_replay ids drifted from the expected set:" >&2
        diff <(printf '%s\n' "$e13_ids") <(printf '%s\n' "$got") >&2 || true
        exit 1
    fi
done
echo "e13 id gate: both files carry the eleven replay ids"

echo "== bench smoke: e13 compiled must be no slower than the interpreter =="
# Replay of a pre-lowered program must never lose to the event-driven
# interpreter at any size — in the fresh smoke run (one cold pass; the
# real gap is ~10x, so even cold noise cannot legitimately invert it)
# and in the checked-in warm medians.
for f in BENCH_e13.json "$out_dir/BENCH_e13.json"; do
    awk -v file="$f" '
        /"e13_compiled_replay\// {
            key = $1; gsub(/[",:]/, "", key)
            sub(/^e13_compiled_replay\//, "", key)
            val[key] = $2 + 0
        }
        END {
            checked = 0
            for (k in val) {
                if (k !~ /^(compiled|stream-compiled)\//) continue
                ref = k; sub(/^stream-compiled/, "stream-interpreter", ref)
                sub(/^compiled/, "interpreter", ref)
                if (!(ref in val)) {
                    printf "%s: missing interpreter id %s\n", file, ref > "/dev/stderr"
                    exit 1
                }
                if (val[k] > val[ref]) {
                    printf "%s: %s (%.0f ns) slower than %s (%.0f ns)\n", \
                        file, k, val[k], ref, val[ref] > "/dev/stderr"
                    exit 1
                }
                checked++
            }
            if (checked != 4) {
                printf "%s: e13 gate checked %d pairs, expected 4\n", file, checked > "/dev/stderr"
                exit 1
            }
            printf "%s: compiled <= interpreter at every size\n", file
        }
    ' "$f"
done

echo "== bench smoke: e14_decomp (JSON -> $out_dir/BENCH_e14.json) =="
CRITERION_JSON="$out_dir/BENCH_e14.json" \
    cargo bench -p bench --bench e14_decomp -- --test

echo "== bench smoke: e14 bench IDs =="
# The nine ids are the layered front-end's contract: decompose /
# route-layers / warm-cached at each size. The checked-in BENCH_e14.json
# and a fresh smoke run must both carry exactly this set.
e14_ids="e14_decomp/decompose/1024
e14_decomp/decompose/256
e14_decomp/decompose/4096
e14_decomp/route-layers/1024
e14_decomp/route-layers/256
e14_decomp/route-layers/4096
e14_decomp/warm-cached/1024
e14_decomp/warm-cached/256
e14_decomp/warm-cached/4096"
for f in BENCH_e14.json "$out_dir/BENCH_e14.json"; do
    got="$(grep -o '"e14_decomp/[^"]*"' "$f" | tr -d '"' | sort -u)"
    if [ "$got" != "$e14_ids" ]; then
        echo "$f: e14_decomp ids drifted from the expected set:" >&2
        diff <(printf '%s\n' "$e14_ids") <(printf '%s\n' "$got") >&2 || true
        exit 1
    fi
done
echo "e14 id gate: both files carry the nine layering ids"

echo "== bench smoke: e14 warm path must beat fresh layer routing =="
# A warm cached general route (memo + per-layer cache hits) must never
# lose to re-routing every layer — in the fresh smoke run and in the
# checked-in warm medians (the real gap is ~8x; cold noise cannot
# legitimately invert it).
for f in BENCH_e14.json "$out_dir/BENCH_e14.json"; do
    awk -v file="$f" '
        /"e14_decomp\// {
            key = $1; gsub(/[",:]/, "", key)
            sub(/^e14_decomp\//, "", key)
            val[key] = $2 + 0
        }
        END {
            checked = 0
            for (k in val) {
                if (k !~ /^warm-cached\//) continue
                ref = k; sub(/^warm-cached/, "route-layers", ref)
                if (!(ref in val)) {
                    printf "%s: missing route-layers id %s\n", file, ref > "/dev/stderr"
                    exit 1
                }
                if (val[k] > val[ref]) {
                    printf "%s: %s (%.0f ns) slower than %s (%.0f ns)\n", \
                        file, k, val[k], ref, val[ref] > "/dev/stderr"
                    exit 1
                }
                checked++
            }
            if (checked != 3) {
                printf "%s: e14 gate checked %d pairs, expected 3\n", file, checked > "/dev/stderr"
                exit 1
            }
            printf "%s: warm-cached <= route-layers at every size\n", file
        }
    ' "$f"
done

echo "== bench smoke: e15_serve (JSON -> $out_dir/BENCH_e15.json) =="
# bench-serve self-hosts a daemon on an ephemeral loopback port and
# drives it uncached / cached / soak; --bench-json emits the headline
# numbers in the BENCH id scheme. Regenerate the checked-in file with:
#   cargo run --release -q -p cst-tools -- bench-serve \
#       --bench-json BENCH_e15.json
cargo run --release -q -p cst-tools -- bench-serve --clients 1 --reset \
    --bench-json "$out_dir/BENCH_e15.json"

echo "== bench smoke: e15 bench IDs =="
# Both the fresh smoke run and the checked-in baseline must carry
# exactly the four serve ids at the default 1024-PE size.
e15_ids="e15_serve/cached/1024
e15_serve/soak-p50/1024
e15_serve/soak-p99/1024
e15_serve/uncached/1024"
for f in BENCH_e15.json "$out_dir/BENCH_e15.json"; do
    got="$(grep -o '"e15_serve/[^"]*"' "$f" | tr -d '"' | sort -u)"
    if [ "$got" != "$e15_ids" ]; then
        echo "$f: e15_serve ids drifted from the expected set:" >&2
        diff <(printf '%s\n' "$e15_ids") <(printf '%s\n' "$got") >&2 || true
        exit 1
    fi
done
echo "e15 id gate: both files carry the four serve ids"

echo "== bench smoke: e15 cached serve must beat uncached =="
# A cache hit is a fingerprint probe plus an Arc clone; a miss is a full
# route plus serialization. The fresh smoke run must keep cached at or
# under uncached, and the checked-in baseline must hold the 5x
# acceptance floor (the measured gap is ~18x single-core).
for spec in "BENCH_e15.json 5" "$out_dir/BENCH_e15.json 1"; do
    set -- $spec
    awk -v file="$1" -v factor="$2" '
        /"e15_serve\// {
            key = $1; gsub(/[",:]/, "", key)
            sub(/^e15_serve\//, "", key)
            val[key] = $2 + 0
        }
        END {
            if (!("cached/1024" in val) || !("uncached/1024" in val)) {
                printf "%s: missing cached/uncached ids\n", file > "/dev/stderr"
                exit 1
            }
            if (val["cached/1024"] * factor > val["uncached/1024"]) {
                printf "%s: cached (%.0f ns) x%d exceeds uncached (%.0f ns)\n", \
                    file, val["cached/1024"], factor, val["uncached/1024"] > "/dev/stderr"
                exit 1
            }
            printf "%s: cached x%d <= uncached\n", file, factor
        }
    ' "$1"
done

echo "== bench smoke: e16_herd (JSON -> $out_dir/BENCH_e16.json) =="
# The thundering-herd phase barrier-releases 8 connections onto one
# fresh key: single-flight coalescing must cost exactly one engine
# computation, and the contended warm-hit percentiles are the lock-free
# hit tier's headline numbers. Regenerate the checked-in file with:
#   cargo run --release -q -p cst-tools -- bench-serve --clients 1 \
#       --reset --herd 8 --bench-json BENCH_e16.json
cargo run --release -q -p cst-tools -- bench-serve --clients 1 --reset \
    --herd 8 --bench-json "$out_dir/BENCH_e16.json"

echo "== bench smoke: e16 bench IDs =="
# Both the fresh smoke run and the checked-in baseline must carry
# exactly the three herd ids at the default 1024-PE size.
e16_ids="e16_herd/computations-per-key/1024
e16_herd/contended-hit-p50/1024
e16_herd/contended-hit-p99/1024"
for f in BENCH_e16.json "$out_dir/BENCH_e16.json"; do
    got="$(grep -o '"e16_herd/[^"]*"' "$f" | tr -d '"' | sort -u)"
    if [ "$got" != "$e16_ids" ]; then
        echo "$f: e16_herd ids drifted from the expected set:" >&2
        diff <(printf '%s\n' "$e16_ids") <(printf '%s\n' "$got") >&2 || true
        exit 1
    fi
done
echo "e16 id gate: both files carry the three herd ids"

echo "== bench smoke: e16 exactly-one-computation and contended-hit floor =="
# Two gates per (e16, e15) file pair:
#  1. computations-per-key must be exactly 1 — the single-flight layer's
#     hard property, deterministic on any box however the herd
#     interleaves;
#  2. the contended hit p50 must stay under the same environment's e15
#     uncached route time: x5 floor for the checked-in pair, x1 for the
#     fresh smoke run (a contended cache hit beating a fresh route is
#     the minimum bar everywhere, including single-core runners where
#     the herd serializes).
for spec in "BENCH_e16.json BENCH_e15.json 5" \
            "$out_dir/BENCH_e16.json $out_dir/BENCH_e15.json 1"; do
    set -- $spec
    awk -v e16_file="$1" -v factor="$3" '
        FNR == 1 { file++ }
        file == 1 && /"e16_herd\// {
            key = $1; gsub(/[",:]/, "", key); sub(/^e16_herd\//, "", key)
            v16[key] = $2 + 0
        }
        file == 2 && /"e15_serve\/uncached\/1024"/ { unc = $2 + 0 }
        END {
            if (!("computations-per-key/1024" in v16) || !("contended-hit-p50/1024" in v16)) {
                printf "%s: missing e16 herd ids\n", e16_file > "/dev/stderr"
                exit 1
            }
            if (v16["computations-per-key/1024"] != 1) {
                printf "%s: herd cost %.0f computations per key, want exactly 1\n", \
                    e16_file, v16["computations-per-key/1024"] > "/dev/stderr"
                exit 1
            }
            if (unc == 0) {
                printf "%s: no e15 uncached baseline to anchor against\n", e16_file > "/dev/stderr"
                exit 1
            }
            if (v16["contended-hit-p50/1024"] * factor > unc) {
                printf "%s: contended hit p50 (%.0f ns) x%d exceeds e15 uncached (%.0f ns)\n", \
                    e16_file, v16["contended-hit-p50/1024"], factor, unc > "/dev/stderr"
                exit 1
            }
            printf "%s: 1 computation per herd key, contended p50 x%d <= uncached\n", \
                e16_file, factor
        }
    ' "$1" "$2"
done

echo "== bench smoke: remaining benches =="
for b in e1_rounds_optimality e2_config_changes e3_total_power \
         e4_control_overhead e6_change_histogram e7_segmentable_bus \
         e8_ablation_selection e9_applications e10_sessions \
         e11_bus_emulation e12_motivation substrate_micro; do
    cargo bench -p bench --bench "$b" -- --test
done

echo "== bench smoke: trace emitter zero-cost when disabled =="
# The E5/E13 throughput numbers rest on the warm scheduling path never
# touching the heap; the protocol-trace instrumentation (cst-model
# conformance) threads an Option through that path and must stay free
# when disabled. The allocation gate asserts exactly that.
cargo test --quiet --test alloc_gate

echo "== bench smoke: OK (E5/E6/E13 JSON under $out_dir) =="
