#!/usr/bin/env bash
# Smoke-run the benchmark suite: every bench binary executes one
# abbreviated pass (criterion `--test` mode — no statistics, just "does
# it run and produce sane numbers"). The E5 scheduler-throughput bench
# additionally emits its measurements as JSON next to this script's
# output directory, so CI can diff against the checked-in BENCH_e5.json
# baselines without a full measurement run.
#
# Usage: scripts/bench_smoke.sh [output-dir]   (default: target/bench-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-target/bench-smoke}"
mkdir -p "$out_dir"

echo "== bench smoke: e5_scheduler_throughput (JSON -> $out_dir/BENCH_e5.json) =="
CRITERION_JSON="$out_dir/BENCH_e5.json" \
    cargo bench -p bench --bench e5_scheduler_throughput -- --test

echo "== bench smoke: remaining benches =="
for b in e1_rounds_optimality e2_config_changes e3_total_power \
         e4_control_overhead e6_change_histogram e7_segmentable_bus \
         e8_ablation_selection e9_applications e10_sessions \
         e11_bus_emulation e12_motivation substrate_micro; do
    cargo bench -p bench --bench "$b" -- --test
done

echo "== bench smoke: OK (E5 JSON at $out_dir/BENCH_e5.json) =="
