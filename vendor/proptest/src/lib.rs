//! Offline stand-in for `proptest`: deterministic random test cases,
//! no shrinking. Supports the forms this workspace uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn prop(x in 0u8..3, v in proptest::collection::vec(strat, 16)) {
//!         prop_assert!(x < 3);
//!         prop_assert_eq!(v.len(), 16, "length {}", v.len());
//!     }
//! }
//! ```

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's config: only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed assertion inside a property body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator for case inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x5DEECE66D }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values (upstream's `Strategy`, minus shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.sample(rng))
        }
    }

    /// A constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            assert!(lo < hi, "empty strategy range");
            loop {
                let v = lo + rng.below(u64::from(hi - lo)) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    /// `bool` coin flip (upstream `any::<bool>()` analogue).
    #[derive(Clone, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of exactly `size` elements.
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array {
        ($($fn_name:ident, $n:literal;)*) => {$(
            pub fn $fn_name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    uniform_array! {
        uniform2, 2;
        uniform3, 3;
        uniform4, 4;
        uniform8, 8;
        uniform16, 16;
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run each property over `cases` random inputs; panic on first failure
/// (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(0xC57_C57);
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($a), stringify!($b), lhs, rhs,
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!(
                    "{} (left: {:?}, right: {:?})",
                    format!($($fmt)+), lhs, rhs,
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!(
                    "assertion failed: {} != {} (both: {:?})",
                    stringify!($a), stringify!($b), lhs,
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 0u8..3, y in 1usize..=4) {
            prop_assert!(x < 3);
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(0u8..10, 16),
            w in crate::array::uniform4(0u8..4).prop_map(|a| a.iter().map(|&x| x as usize).sum::<usize>()),
        ) {
            prop_assert_eq!(v.len(), 16);
            prop_assert!(w <= 12, "sum {} too large", w);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            if x > 1000 {
                return Ok(());
            }
            prop_assert!(x < 100);
        }
    }
}
