//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's serializer/visitor architecture this
//! stub uses a simplified **value-tree data model**: `Serialize` lowers
//! a type to a [`Value`], `Deserialize` rebuilds it from one. The
//! conventions match what upstream `serde_json` produces for the
//! shapes this workspace uses (named struct → object in declaration
//! order, newtype struct → inner value, tuple struct → array, unit
//! enum variant → variant-name string, integer map keys →
//! stringified).

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serde data model, as a concrete tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map with string keys (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map-key lookup (linear; round maps are tiny).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Human-readable name of the value's shape, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization/serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", got.type_name()))
}

/// Lower `self` into the data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- scalars

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-char string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, Error> =
                    items.iter().map(T::from_value).collect();
                parsed.map(|vec| {
                    vec.try_into().expect("length checked above")
                })
            }
            other => Err(unexpected("fixed-size sequence", other)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let slot = it.next()
                                    .ok_or_else(|| Error::msg("tuple too short"))?;
                                $name::from_value(slot)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(Error::msg("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(unexpected("tuple sequence", other)),
                }
            }
        }
    )+};
}

ser_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

// Map keys: upstream serde_json stringifies integer keys and passes
// string keys through. Newtype keys delegate to the inner value.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        other => Err(Error(format!("map key must be string-like, got {}", other.type_name()))),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    // Try the string itself first, then reinterpret as an integer for
    // numeric key types (e.g. `NodeId` keys stored as "4").
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        return K::from_value(&Value::UInt(u));
    }
    if let Ok(i) = s.parse::<i64>() {
        return K::from_value(&Value::Int(i));
    }
    Err(Error(format!("cannot interpret map key {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    (key_to_string(k.to_value()).expect("serializable map key"), v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    (key_to_string(k.to_value()).expect("serializable map key"), v.to_value())
                })
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// -------------------------------------------------------- derive support

/// Used by the generated `Deserialize` impls: fetch a struct field,
/// treating a missing key as `Null` (so `Option` fields tolerate
/// omission).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(field) => T::from_value(field)
                .map_err(|e| Error(format!("field {name:?}: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error(format!("missing field {name:?}"))),
        },
        other => Err(unexpected("struct map", other)),
    }
}

/// Used by the generated tuple-struct `Deserialize` impls.
pub fn de_element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Seq(items) => match items.get(idx) {
            Some(item) => T::from_value(item),
            None => Err(Error(format!("missing tuple element {idx}"))),
        },
        other => Err(unexpected("tuple sequence", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for v in [0usize, 1, 5, usize::MAX] {
            assert_eq!(usize::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        assert_eq!(Vec::<(usize, usize)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [Some(1u32), None, Some(3)];
        assert_eq!(<[Option<u32>; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let mut m = BTreeMap::new();
        m.insert(4usize, "x".to_string());
        let back = BTreeMap::<usize, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
        // Integer keys stringify, matching upstream serde_json.
        assert_eq!(m.to_value().get("4"), Some(&Value::Str("x".into())));
    }
}
