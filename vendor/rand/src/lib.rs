//! Offline stand-in for `rand 0.8`. Deterministic xoshiro256++ core
//! seeded via splitmix64; implements the subset of the `rand` API this
//! workspace uses. Streams differ from upstream `rand`, which is fine:
//! the workspace's tests are invariant-based, not golden-value.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform value in the given range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++ core; upstream uses
    /// ChaCha12 — different stream, same contract).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Same core, separate name to mirror upstream.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<usize> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
