//! Offline stand-in for `serde_json`: JSON writer + recursive-descent
//! parser over the vendored serde value model. Output conventions
//! match upstream serde_json for the shapes this workspace uses
//! (compact `to_string`, two-space-indent `to_string_pretty`, floats
//! printed with a decimal point).

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// JSON serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------ write

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error("JSON cannot represent NaN/Infinity".into()));
            }
            if *f == f.trunc() && f.abs() < 1e16 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(usize, usize)> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert(4usize, vec![true, false]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"4\":[true,false]}");
        let back: BTreeMap<usize, Vec<bool>> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn option_none_roundtrips() {
        let v: Vec<Option<u32>> = vec![None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[null,3]");
        let back: Vec<Option<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
