//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! No `syn`/`quote`: the item token stream is parsed by hand, which is
//! enough for the shapes this workspace uses — non-generic named
//! structs, tuple structs, and unit-variant enums, with no
//! `#[serde(...)]` attributes. Anything else panics with a clear
//! message so the gap is obvious at compile time.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> =
                (0..*n).map(|i| format!("::serde::de_element(v, {i})?")).collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error(\n\
                             ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error(\n\
                         ::std::format!(\"expected {name} variant string, got {{other:?}}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type {name} not supported");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde stub derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde stub derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind {other}"),
    };
    Item { name, shape }
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Type, ... }` body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected ':' after field, got {other:?}"),
        }
        // Skip the type: scan to the next comma outside angle brackets.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of comma-separated fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Variant names of a unit-variant enum.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                i += 1;
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde stub derive: enum {enum_name} has a non-unit variant \
                 {}; only unit variants are supported",
                variants.last().unwrap()
            ),
            other => panic!("serde stub derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}
