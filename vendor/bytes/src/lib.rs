//! Offline stand-in for `bytes`: a cheaply clonable, immutable byte
//! buffer. Only the surface this workspace uses.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static slice (copied; upstream borrows, but the semantics
    /// — cheap clones, value equality — are identical).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_clone() {
        let a = Bytes::from(b"hello".to_vec());
        let b = Bytes::from_static(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.clone(), b);
        assert_eq!(a.len(), 5);
        assert!(Bytes::new().is_empty());
    }
}
