//! A counting [`GlobalAlloc`] wrapper for allocation-gate tests.
//!
//! Install [`CountingAlloc`] as the `#[global_allocator]` of a test
//! binary, then wrap the code under test in [`measure`] to get the exact
//! number of heap allocations and bytes requested on the *current thread*
//! while the closure ran. Counters are per-thread `Cell`s with `const`
//! initializers, so reading or resetting them never allocates and other
//! threads (e.g. worker pools) never perturb the measurement.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;
//!
//! let (stats, value) = alloc_counter::measure(|| expensive_warm_path());
//! assert_eq!(stats.bytes_allocated, 0, "warm path must not allocate");
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // `const` initializers: accessing these never triggers a lazy
    // runtime initialization (which could itself allocate and deadlock
    // the accounting).
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static DEALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static PAUSED: Cell<bool> = const { Cell::new(false) };
    static TRACE_REMAINING: Cell<u64> = const { Cell::new(0) };
}

/// Debugging aid: print a backtrace for the next `n` counted allocations
/// on this thread (to stderr). Use inside a failing gate to find *where*
/// an unexpected warm-path allocation comes from; the capture itself runs
/// with counting paused so it does not perturb the measurement.
pub fn trace_next(n: u64) {
    TRACE_REMAINING.with(|t| t.set(n));
}

/// Allocation totals observed on the current thread during a
/// [`measure`] window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `alloc`/`realloc` calls.
    pub allocations: u64,
    /// Total bytes requested by those calls.
    pub bytes_allocated: u64,
    /// Number of `dealloc` calls.
    pub deallocations: u64,
}

/// A `System`-backed allocator that counts this thread's allocations.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_dealloc();
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth-by-realloc is an allocation event for gating purposes:
        // the steady state we assert is "no heap traffic at all".
        record_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

fn record_alloc(size: usize) {
    if PAUSED.with(|p| p.get()) {
        return;
    }
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + size as u64));
    let trace = TRACE_REMAINING.with(|t| {
        let v = t.get();
        if v > 0 {
            t.set(v - 1);
        }
        v > 0
    });
    if trace {
        PAUSED.with(|p| p.set(true));
        let bt = std::backtrace::Backtrace::force_capture();
        eprintln!("[alloc-counter] {size}-byte allocation:\n{bt}");
        PAUSED.with(|p| p.set(false));
    }
}

fn record_dealloc() {
    if PAUSED.with(|p| p.get()) {
        return;
    }
    DEALLOCATIONS.with(|c| c.set(c.get() + 1));
}

/// Reset this thread's counters to zero.
pub fn reset() {
    ALLOCATIONS.with(|c| c.set(0));
    BYTES.with(|c| c.set(0));
    DEALLOCATIONS.with(|c| c.set(0));
}

/// Snapshot this thread's counters.
pub fn snapshot() -> AllocStats {
    AllocStats {
        allocations: ALLOCATIONS.with(|c| c.get()),
        bytes_allocated: BYTES.with(|c| c.get()),
        deallocations: DEALLOCATIONS.with(|c| c.get()),
    }
}

/// Run `f` with counting paused on this thread (e.g. around assertion
/// formatting inside a measured region).
pub fn paused<T>(f: impl FnOnce() -> T) -> T {
    PAUSED.with(|p| p.set(true));
    let out = f();
    PAUSED.with(|p| p.set(false));
    out
}

/// Measure the allocations `f` performs on this thread. Only meaningful
/// when [`CountingAlloc`] is installed as the global allocator.
pub fn measure<T>(f: impl FnOnce() -> T) -> (AllocStats, T) {
    reset();
    let value = f();
    (snapshot(), value)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters tick only when CountingAlloc is the global allocator; this
    // crate's own tests install it so the helpers are exercised for real.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counts_vec_growth() {
        let (stats, v) = measure(|| {
            let mut v: Vec<u64> = Vec::with_capacity(4);
            v.extend(0..4);
            v
        });
        assert!(stats.allocations >= 1);
        assert!(stats.bytes_allocated >= 32);
        drop(v);
    }

    #[test]
    fn pure_arithmetic_allocates_nothing() {
        let (stats, sum) = measure(|| (0u64..1000).sum::<u64>());
        assert_eq!(sum, 499_500);
        assert_eq!(stats, AllocStats::default());
    }

    #[test]
    fn paused_regions_are_invisible() {
        let (stats, _) = measure(|| paused(|| vec![0u8; 1024]));
        assert_eq!(stats.allocations, 0);
        // the dealloc of the paused vec happened outside measure, fine
    }

    #[test]
    #[allow(clippy::useless_vec)] // the point is the heap allocation
    fn reset_clears_counters() {
        let _keep = vec![1u8; 64];
        reset();
        assert_eq!(snapshot(), AllocStats::default());
    }
}
