//! Offline stand-in for `criterion`. Performs **real wall-clock
//! measurement** (warm-up, then `sample_size` samples, median
//! reported) with the criterion API surface this workspace uses.
//!
//! - `--test` or `--quick` on the bench binary's command line switches
//!   to smoke mode: each benchmark body runs once, timed but not
//!   sampled (the single-pass time is recorded so JSON output still
//!   lists every bench id; it is not a statistically sound measurement).
//! - `CRITERION_JSON=<path>` dumps `{ "<id>": ns_per_iter, ... }` for
//!   all executed benchmarks at `criterion_main!` exit.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: false,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Apply command-line flags (`--test` / `--quick` smoke modes).
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => self.test_mode = true,
                _ => {} // ignore harness flags like --bench and filters
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().id;
        run_bench(self, label, None, &mut f);
        self
    }
}

/// Units-per-iteration annotation; reported alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier, optionally `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// A named group of benchmarks (prefixes every id with `group/`).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_bench(self.criterion, label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(self.criterion, label, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark bodies; `iter` runs and times the closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    /// Median ns/iter, filled by `iter`.
    result_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            // Single pass: timed so the JSON dump still carries the
            // bench id, but reported as a smoke run, not a measurement.
            let start = Instant::now();
            std::hint::black_box(f());
            self.result_ns = Some(start.elapsed().as_nanos() as f64);
            return;
        }
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Split the measurement budget across samples.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / self.sample_size as f64) / est_ns.max(1.0))
            .ceil()
            .max(1.0) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.result_ns = Some(samples[samples.len() / 2]);
    }

    /// Upstream-compatible alias used with setup closures.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    label: String,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        sample_size: criterion.sample_size,
        warm_up_time: criterion.warm_up_time,
        measurement_time: criterion.measurement_time,
        test_mode: criterion.test_mode,
        result_ns: None,
    };
    f(&mut bencher);
    match bencher.result_ns {
        None => println!("{label}: ok (smoke)"),
        Some(ns) if criterion.test_mode => {
            println!("{label}: ok (smoke)");
            RESULTS.lock().unwrap().push((label, ns));
        }
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!(" ({:.0} elem/s)", n as f64 * 1e9 / ns)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(" ({:.1} MiB/s)", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!("{label}: {ns:.0} ns/iter{rate}");
            RESULTS.lock().unwrap().push((label, ns));
        }
    }
}

/// Write accumulated results as JSON if `CRITERION_JSON` is set.
/// Called by `criterion_main!`; harmless to call repeatedly.
pub fn finalize() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!("  \"{}\": {:.1}{}\n", label.replace('"', "'"), ns, sep));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion stub: cannot write {path}: {e}");
    }
}

/// `std::hint::black_box` re-export, matching upstream's API.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|(label, ns)| label == "g/count" && *ns >= 0.0));
    }
}
