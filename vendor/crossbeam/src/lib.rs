//! Offline stand-in for `crossbeam`: scoped threads and unbounded
//! channels implemented over `std`. Only the surface this workspace
//! uses (`thread::scope`, `Scope::spawn`, `channel::unbounded`).

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

pub mod thread {
    use std::any::Any;

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads tied to a scope. The closure passed
    /// to [`Scope::spawn`] receives the scope again (crossbeam's
    /// convention) so workers can spawn sub-workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike upstream crossbeam a panicking child propagates
    /// as a panic rather than an `Err`, which is equivalent for tests.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// An unbounded MPSC channel (upstream's is MPMC; every use in this
    /// workspace is single-consumer).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_and_channel() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let total = super::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut sum = 0;
            for v in rx.iter() {
                sum += v;
            }
            sum
        })
        .unwrap();
        assert_eq!(total, 6);
    }
}
