//! Offline stand-in for `parking_lot`: std sync primitives with the
//! parking_lot calling convention (no poisoning, `lock()` returns the
//! guard directly).

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(clippy::all)]

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that ignores poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
        let rw = RwLock::new(3);
        assert_eq!(*rw.read(), 3);
        *rw.write() = 4;
        assert_eq!(rw.into_inner(), 4);
    }
}
