//! Fingerprint soundness (proptest): equal sets always fingerprint
//! equally, unequal sets essentially never do — and when they *are*
//! forced to collide (truncated fingerprints), the cache's equality
//! fallback turns the collision into a counted miss, never a wrong
//! schedule.

use cst::comm::CommSet;
use cst::core::CstTopology;
use cst::engine::{Csa, EngineCtx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural equality implies fingerprint equality — a set rebuilt
    /// from its own pairs (fresh allocations, same content) fingerprints
    /// identically.
    #[test]
    fn equal_sets_have_equal_fingerprints(seed in 0u64..1_000_000, n_exp in 3u32..=10) {
        let n = 1usize << n_exp;
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.5);
        let pairs: Vec<(usize, usize)> =
            set.comms().iter().map(|c| (c.source.0, c.dest.0)).collect();
        let rebuilt = CommSet::from_pairs(n, &pairs);
        prop_assert_eq!(set.clone(), rebuilt.clone(), "rebuild must be structurally equal");
        prop_assert_eq!(set.fingerprint(), rebuilt.fingerprint());
    }

    /// A one-communication perturbation always changes the fingerprint
    /// (sanity: the fingerprint actually depends on the content).
    #[test]
    fn removing_a_communication_changes_the_fingerprint(seed in 0u64..1_000_000) {
        let n = 128;
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.5);
        if set.is_empty() {
            return Ok(());
        }
        let pairs: Vec<(usize, usize)> =
            set.comms().iter().skip(1).map(|c| (c.source.0, c.dest.0)).collect();
        let smaller = CommSet::from_pairs(n, &pairs);
        prop_assert_ne!(set.fingerprint(), smaller.fingerprint());
    }
}

#[test]
fn birthday_sweep_finds_no_full_width_collisions() {
    // ~4k distinct generated sets on trees up to 1024 leaves: with 64-bit
    // fingerprints the collision expectation is ~2^-41; any hit here
    // means the mixing is broken, not that we got unlucky.
    let mut by_fp: HashMap<u64, CommSet> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(0xB1127);
    let mut distinct = 0usize;
    for n_exp in [4usize, 6, 8, 10] {
        let n = 1 << n_exp;
        for _ in 0..1024 {
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.4);
            match by_fp.get(&set.fingerprint()) {
                Some(prev) => assert_eq!(
                    prev, &set,
                    "64-bit fingerprint collision between distinct sets"
                ),
                None => {
                    by_fp.insert(set.fingerprint(), set);
                    distinct += 1;
                }
            }
        }
    }
    assert!(distinct > 3000, "sweep generated too few distinct sets: {distinct}");
}

#[test]
fn truncated_fingerprints_collide_but_never_cross_schedules() {
    // Force collisions by truncating cache fingerprints to 4 bits, then
    // stream distinct sets through the cache: every returned schedule
    // must match a fresh route of its own request, and the collision
    // counter must show the fallback actually fired.
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xC0111DE);
    let sets: Vec<CommSet> =
        (0..64).map(|_| cst::workloads::well_nested_with_density(&mut rng, n, 0.5)).collect();

    let mut ctx = EngineCtx::new();
    ctx.enable_cache(256);
    ctx.set_cache_fp_bits(4); // 16 possible keys for 64 distinct sets
    let mut fresh_ctx = EngineCtx::new();
    for (i, set) in sets.iter().enumerate() {
        let out = ctx.route_cached(&Csa, &topo, set).unwrap();
        let fresh = fresh_ctx.route(&Csa, &topo, set).unwrap();
        assert_eq!(
            serde_json::to_string(&out.schedule).unwrap(),
            serde_json::to_string(&fresh.schedule).unwrap(),
            "request {i}: collision must never serve another set's schedule"
        );
        ctx.recycle(out);
        fresh_ctx.recycle(fresh);
    }
    let stats = ctx.cache_stats().unwrap();
    assert!(stats.collisions > 0, "4-bit fingerprints must collide: {stats:?}");
    assert_eq!(stats.hits, 0, "all 64 sets are distinct; nothing may hit");
    assert!(stats.entries <= 16, "one resident entry per truncated key");
}

#[test]
fn general_and_well_nested_fingerprints_are_domain_separated() {
    // A GeneralCommSet and a CommSet built from the *same* pair bytes
    // must never fingerprint equally: the layered route memo and the
    // schedule cache share no keyspace, so a general request can never
    // masquerade as a well-nested one (or vice versa). The two hashes
    // differ only by domain tag — this is the regression that guards it.
    use cst::core::GeneralCommSet;
    let mut rng = StdRng::seed_from_u64(0xD0 ^ 0x5E);
    for n_exp in [3usize, 5, 7, 9] {
        let n = 1 << n_exp;
        for _ in 0..256 {
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.5);
            let pairs: Vec<(usize, usize)> =
                set.comms().iter().map(|c| (c.source.0, c.dest.0)).collect();
            let gset = GeneralCommSet::new(n, &pairs).unwrap();
            assert_ne!(
                set.fingerprint(),
                gset.fingerprint(),
                "identical pair content must hash apart across set kinds (n={n})"
            );
        }
    }
}
