//! Seeded stress for the threaded parallel driver, audited statically.
//!
//! The bench host has a single core, so `schedule_parallel`'s adaptive
//! entry point normally runs the decomposition inline and the cross-thread
//! channel path goes unexercised. `schedule_parallel_threaded` forces real
//! worker threads; every outcome is then fed through the `cst-check`
//! analyzer, whose double-stamp pass (`CST070`) is aimed precisely at the
//! race class a parallel writer could introduce — two threads claiming one
//! switch in the same round.

use cst::check::{analyze, CheckOptions};
use cst::core::CstTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn threaded_outcomes_survive_static_analysis() {
    for n in [8usize, 16, 32] {
        let topo = CstTopology::with_leaves(n);
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed * 31 + n as u64);
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
            for threads in [2usize, 4] {
                let out = cst::padr::schedule_parallel_threaded(&topo, &set, threads)
                    .unwrap_or_else(|e| panic!("n={n} seed={seed} threads={threads}: {e}"));
                let report = analyze(&topo, &set, &out.schedule, &CheckOptions::strict());
                assert!(
                    report.is_clean(),
                    "threaded CSA flagged (n={n}, seed={seed}, threads={threads}):\n{}",
                    report.render_text()
                );
            }
        }
    }
}

#[test]
fn threaded_and_serial_schedules_agree() {
    // Beyond "no diagnostics": the threaded driver must produce the same
    // rounds as the serial CSA, so a race that happens to stay legal is
    // still caught as a divergence.
    let n = 32;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed + 7000);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.8);
        let serial = cst::padr::schedule(&topo, &set).unwrap();
        let threaded = cst::padr::schedule_parallel_threaded(&topo, &set, 4).unwrap();
        assert_eq!(serial.schedule, threaded.schedule, "seed={seed}");
    }
}
