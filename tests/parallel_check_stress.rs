//! Seeded stress for the threaded parallel driver, audited statically.
//!
//! The bench host has a single core, so the adaptive "csa-parallel"
//! router normally runs the decomposition inline and the cross-thread
//! channel path goes unexercised. The "csa-threaded" router forces real
//! worker threads; every outcome is then fed through the `cst-check`
//! analyzer, whose double-stamp pass (`CST070`) is aimed precisely at the
//! race class a parallel writer could introduce — two threads claiming one
//! switch in the same round. Everything dispatches through the engine
//! (one warm `EngineCtx` reused across all seeds — the stress doubles as
//! a scratch-reuse soak).

use cst::check::{analyze, analyze_with_faults, CheckOptions};
use cst::core::CstTopology;
use cst::engine::{CsaThreaded, EngineCtx, Router};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn threaded_outcomes_survive_static_analysis() {
    let mut ctx = EngineCtx::new();
    for n in [8usize, 16, 32] {
        let topo = CstTopology::with_leaves(n);
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed * 31 + n as u64);
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
            for threads in [2usize, 4] {
                let router = CsaThreaded { threads };
                let out = ctx
                    .route(&router, &topo, &set)
                    .unwrap_or_else(|e| panic!("n={n} seed={seed} threads={threads}: {e}"));
                let report = analyze(&topo, &set, &out.schedule, &CheckOptions::strict());
                assert!(
                    report.is_clean(),
                    "threaded CSA flagged (n={n}, seed={seed}, threads={threads}):\n{}",
                    report.render_text()
                );
                ctx.recycle(out);
            }
        }
    }
}

#[test]
fn threaded_and_serial_schedules_agree() {
    // Beyond "no diagnostics": the threaded driver must produce the same
    // rounds as the serial CSA, so a race that happens to stay legal is
    // still caught as a divergence.
    let n = 32;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    let threaded4 = CsaThreaded { threads: 4 };
    assert_eq!(threaded4.name(), "csa-threaded");
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed + 7000);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.8);
        let serial = ctx.route_named("csa", &topo, &set).unwrap();
        let threaded = ctx.route(&threaded4, &topo, &set).unwrap();
        assert_eq!(serial.schedule, threaded.schedule, "seed={seed}");
        ctx.recycle(serial);
        ctx.recycle(threaded);
    }
}

#[test]
fn threaded_outcomes_survive_fault_masks() {
    // The same race-hunting soak, but with every case additionally run
    // under a seeded fault mask: worker threads schedule the survivor
    // subset, the engine remaps ids and splits half-duplex rounds, and
    // the analyzer's fault pass audits the result. The fault-free and
    // masked runs share one warm context, so survivor-set scheduling also
    // soaks scratch reuse across differently-sized sets.
    let mut ctx = EngineCtx::new();
    for n in [8usize, 16, 32] {
        let topo = CstTopology::with_leaves(n);
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed * 131 + n as u64);
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
            let mask = cst::faults::sample_mask(&mut rng, &topo, 0.08);
            for threads in [2usize, 4] {
                let router = CsaThreaded { threads };
                let out = ctx
                    .route_masked(&router, &topo, &set, &mask)
                    .unwrap_or_else(|e| panic!("n={n} seed={seed} threads={threads}: {e}"));
                let report = out.degradation.as_ref().expect("masked route reports");
                assert_eq!(
                    report.routed + report.dropped,
                    set.len(),
                    "n={n} seed={seed} threads={threads}: conservation violated"
                );
                let dropped: Vec<usize> = report.drops.iter().map(|d| d.comm).collect();
                let audit = analyze_with_faults(
                    &topo,
                    &set,
                    &out.schedule,
                    &CheckOptions::lenient(),
                    &mask,
                    &dropped,
                );
                assert!(
                    audit.is_clean(),
                    "masked threaded CSA flagged (n={n}, seed={seed}, threads={threads}):\n{}",
                    audit.render_text()
                );
                // Serial CSA must agree with the threaded driver under the
                // same mask — drop partition and rounds alike.
                let serial = ctx.route_named_masked("csa", &topo, &set, &mask).unwrap();
                assert_eq!(serial.schedule, out.schedule, "n={n} seed={seed}");
                ctx.recycle(serial);
                ctx.recycle(out);
            }
        }
    }
}
