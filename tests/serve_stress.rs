//! End-to-end stress suite for the cst-serve daemon (docs/SERVE.md).
//!
//! The contract under test: a pool of concurrent clients hammering one
//! shared server must observe **exactly** the behavior of a fresh
//! single-caller [`EngineCtx`] — every response payload carries the
//! serde-byte-identical schedule, every audited schedule is analyzer-
//! and reference-model-clean, and the final [`ServeStats`] satisfy the
//! conservation invariants
//! (`hits + misses + coalesced_waits == requests - coalesced`,
//! `computations == cache.misses` on error-free runs, shard roll-up
//! equals the shard sum, collisions are counted but never served).
//!
//! The thundering-herd tests pin the single-flight layer's headline
//! property: N connections concurrently demanding one fingerprint cost
//! **exactly one** engine computation, and a failing leader degrades to
//! per-caller typed errors, never a hang.
//!
//! The truncated-fingerprint test reuses the engine cache's `fp_bits`
//! knob through [`ServeConfig::cache_fp_bits`]: with 4-bit fingerprints
//! collisions are guaranteed by pigeonhole, and byte-identity then
//! proves the sharded cache's full-equality fallback reroutes rather
//! than serves them.

use cst::check::{analyze, CheckOptions};
use cst::comm::CommSet;
use cst::core::{CstTopology, FaultMask, NodeId};
use cst::engine::EngineCtx;
use cst::serve::wire::decode_payload;
use cst::serve::{ClientError, ErrorCode, ServeClient, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const CLIENTS: usize = 4;
const REQUESTS: usize = 256; // per client
const PES: usize = 64;
const WORKING: usize = 8;
const ROUTERS: [&str; 3] = ["csa", "greedy", "general"];

fn working_sets() -> Vec<CommSet> {
    let mut rng = StdRng::seed_from_u64(0x5E57E55);
    (0..WORKING).map(|_| cst::workloads::well_nested_with_density(&mut rng, PES, 0.5)).collect()
}

fn stress_mask(topo: &CstTopology) -> FaultMask {
    let mut mask = FaultMask::empty(topo);
    assert!(mask.kill_switch(NodeId(8)));
    assert!(mask.degrade_edge(NodeId(2)));
    mask
}

/// The deterministic request plan: rotate routers and working-set
/// members per (client, i); every 5th request is masked.
fn op_for(client: usize, i: usize) -> (usize, usize, bool) {
    let router_idx = (client + i) % ROUTERS.len();
    let set_idx = (client * 3 + i * 7) % WORKING;
    let masked = i % 5 == 4;
    (router_idx, set_idx, masked)
}

/// Fresh single-caller reference for one (router, set, mask) key, and
/// the audit gates that every served payload must clear.
fn verify_payload(
    topo: &CstTopology,
    router: &str,
    set: &CommSet,
    mask: Option<&FaultMask>,
    payload: &[u8],
) {
    let mut ctx = EngineCtx::new();
    let fresh = match mask {
        Some(m) => {
            let rb = cst::engine::find(router).expect("registry router");
            ctx.route_masked(rb.as_ref(), topo, set, m).expect("fresh masked route")
        }
        None => ctx.route_named(router, topo, set).expect("fresh route"),
    };
    let (summary, schedule_json) = decode_payload(payload).expect("payload decodes");
    let expected_json = serde_json::to_string(&fresh.schedule).expect("serde");
    assert_eq!(
        schedule_json,
        expected_json.as_bytes(),
        "{router} response schedule must be serde-byte-identical to a fresh EngineCtx"
    );
    assert_eq!(summary.router, router);
    assert_eq!(summary.rounds as usize, fresh.rounds);
    assert_eq!(summary.power_total_units, fresh.power.total_units);
    assert_eq!(summary.power_max_units, fresh.power.max_units);
    assert_eq!(summary.degradation.is_some(), fresh.degradation.is_some());
    if let (Some(ds), Some(dr)) = (&summary.degradation, &fresh.degradation) {
        assert_eq!(ds.dropped as usize, dr.dropped);
        assert_eq!(ds.extra_rounds as usize, dr.extra_rounds);
    }

    // Audit gates on the (byte-identical) schedule: the reference
    // model's conformance pass, and the static analyzer for fault-free
    // schedules (strict for the paper's CSA, lenient otherwise).
    if mask.is_none() {
        let conform = cst::model::conform_schedule(set, &fresh.schedule, &[]);
        assert!(
            !conform.has_errors(),
            "{router}: model conformance findings:\n{}",
            conform.render_text()
        );
        let options =
            if router == "csa" { CheckOptions::strict() } else { CheckOptions::lenient() };
        let report = analyze(topo, set, &fresh.schedule, &options);
        assert!(!report.has_errors(), "{router}: analyzer findings:\n{}", report.render_text());
    }
    ctx.recycle(fresh);
}

#[test]
fn concurrent_soak_is_byte_identical_to_a_fresh_engine() {
    let topo = CstTopology::with_leaves(PES);
    let sets = working_sets();
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServeConfig { workers: CLIENTS, cache_capacity: 128, shard_bits: 2, ..Default::default() },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");

    // N clients, each replaying its deterministic slice of the plan.
    type Recorded = Vec<((usize, usize, bool), bool, Vec<u8>)>;
    let recorded: Vec<Recorded> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let sets = &sets;
                let topo = &topo;
                scope.spawn(move || -> Recorded {
                    let mask = stress_mask(topo);
                    let mut client = ServeClient::connect_tcp(addr).expect("connect");
                    let mut out = Vec::with_capacity(REQUESTS);
                    for i in 0..REQUESTS {
                        let (router_idx, set_idx, masked) = op_for(c, i);
                        let reply = client
                            .route(
                                ROUTERS[router_idx],
                                &sets[set_idx],
                                if masked { Some(&mask) } else { None },
                            )
                            .expect("route");
                        out.push(((router_idx, set_idx, masked), reply.cached, reply.payload));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Concurrent determinism: all responses for the same key carry the
    // same bytes; then each unique key is verified against a fresh
    // single-caller engine and the audit gates.
    let mut by_key: HashMap<(usize, usize, bool), Vec<u8>> = HashMap::new();
    let mut total = 0usize;
    for (key, _cached, payload) in recorded.into_iter().flatten() {
        total += 1;
        match by_key.get(&key) {
            Some(first) => assert_eq!(
                first, &payload,
                "concurrent responses for one request key must be byte-identical"
            ),
            None => {
                by_key.insert(key, payload);
            }
        }
    }
    assert_eq!(total, CLIENTS * REQUESTS);
    let mask = stress_mask(&topo);
    for ((router_idx, set_idx, masked), payload) in &by_key {
        let mask = if *masked { Some(&mask) } else { None };
        verify_payload(&topo, ROUTERS[*router_idx], &sets[*set_idx], mask, payload);
    }

    // Conservation invariants on the final snapshot.
    let s = server.stats();
    assert_eq!(s.connections, CLIENTS as u64);
    assert_eq!(s.frames, (CLIENTS * REQUESTS) as u64);
    assert_eq!(s.requests, (CLIENTS * REQUESTS) as u64);
    assert_eq!(s.responses, s.requests);
    assert_eq!(s.errors, 0);
    assert_eq!(s.coalesced, 0);
    assert_eq!(
        s.cache.hits + s.cache.misses + s.coalesced_waits,
        s.requests - s.coalesced,
        "every admitted request probes the shared cache exactly once or parks on a flight"
    );
    assert_eq!(s.cache.collisions, 0, "64-bit fingerprints never collide on this plan");
    assert!(s.cache.hits > s.cache.misses, "the soak is dominated by cache hits: {s:?}");
    assert_eq!(s.computations, s.cache.misses, "every locked miss routes exactly once");
    assert!(s.singleflight_leaders <= s.computations);
    assert!(s.cache.tier_hits <= s.cache.hits, "tier hits are a subset of hits");
    assert_eq!(s.cache, shard_sum(&s.shards), "roll-up must equal the field-wise shard sum");
    server.shutdown();
}

/// Field-wise sum of per-shard counters, for the roll-up invariant.
fn shard_sum(shards: &[cst::engine::CacheStats]) -> cst::engine::CacheStats {
    let mut sum = cst::engine::CacheStats::default();
    for sh in shards {
        sum.hits += sh.hits;
        sum.misses += sh.misses;
        sum.evictions += sh.evictions;
        sum.collisions += sh.collisions;
        sum.entries += sh.entries;
        sum.capacity += sh.capacity;
        sum.tier_hits += sh.tier_hits;
    }
    sum
}

#[test]
fn truncated_fingerprint_collisions_are_counted_but_never_served() {
    let topo = CstTopology::with_leaves(PES);
    let sets = working_sets();
    // 4-bit fingerprints: 16 distinct (router, set) keys into 16 fp
    // values collide with near-certainty; the equality fallback must
    // reroute every one of them.
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            cache_capacity: 64,
            shard_bits: 2,
            cache_fp_bits: 4,
            ..Default::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect_tcp(server.tcp_addr().expect("tcp addr")).expect("connect");

    let mut requests = 0u64;
    for _pass in 0..3 {
        for router in ["csa", "greedy"] {
            for set in &sets {
                let reply = client.route(router, set, None).expect("route");
                requests += 1;
                verify_payload(&topo, router, set, None, &reply.payload);
            }
        }
    }

    let s = server.stats();
    assert_eq!(s.requests, requests);
    assert_eq!(s.errors, 0);
    assert_eq!(s.cache.hits + s.cache.misses, s.requests);
    assert!(
        s.cache.collisions > 0,
        "4-bit fingerprints must collide across 16 distinct keys: {:?}",
        s.cache
    );
    // Truncated fps have empty high bits, so every entry lands in the
    // masked shard 0 — the other shards stay untouched.
    for sh in &s.shards[1..] {
        assert_eq!((sh.hits, sh.misses, sh.entries), (0, 0, 0), "truncation confines to shard 0");
    }
    server.shutdown();
}

#[test]
fn batch_requests_coalesce_identical_items() {
    let sets = working_sets();
    let topo = CstTopology::with_leaves(PES);
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = ServeClient::connect_tcp(server.tcp_addr().expect("tcp addr")).expect("connect");

    let batch =
        vec![sets[0].clone(), sets[1].clone(), sets[0].clone(), sets[2].clone(), sets[1].clone()];
    let items = client.batch("csa", &batch).expect("batch");
    assert_eq!(items.len(), 5);
    let replies: Vec<_> = items.into_iter().map(|r| r.expect("batch item")).collect();
    // Items 2 and 4 duplicate items 0 and 1: same payload, served as
    // cached copies without a second probe or route.
    assert_eq!(replies[2].payload, replies[0].payload);
    assert_eq!(replies[4].payload, replies[1].payload);
    assert!(replies[2].cached && replies[4].cached);
    assert!(!replies[0].cached && !replies[1].cached && !replies[3].cached);
    for (set, reply) in [&sets[0], &sets[1], &sets[0], &sets[2], &sets[1]]
        .into_iter()
        .zip(&replies)
    {
        verify_payload(&topo, "csa", set, None, &reply.payload);
    }

    let s = server.stats();
    assert_eq!(s.requests, 5);
    assert_eq!(s.coalesced, 2);
    assert_eq!(s.responses, 5);
    assert_eq!(s.errors, 0);
    assert_eq!(s.cache.hits + s.cache.misses, s.requests - s.coalesced);
    assert_eq!(s.computations, 3, "three unique items, three routes");
    server.shutdown();
}

#[test]
fn masked_batch_items_route_and_coalesce_per_full_key() {
    let sets = working_sets();
    let topo = CstTopology::with_leaves(PES);
    let mask = stress_mask(&topo);
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = ServeClient::connect_tcp(server.tcp_addr().expect("tcp addr")).expect("connect");

    // One set under three guises: unmasked, masked, and a masked
    // duplicate. Only the exact (set, mask) duplicate coalesces.
    let items = vec![
        (sets[0].clone(), None),
        (sets[0].clone(), Some(mask.clone())),
        (sets[0].clone(), Some(mask.clone())),
    ];
    let replies: Vec<_> = client
        .batch_masked("csa", &items)
        .expect("masked batch")
        .into_iter()
        .map(|r| r.expect("batch item"))
        .collect();
    assert_eq!(replies.len(), 3);
    assert_ne!(
        replies[0].payload, replies[1].payload,
        "masked and unmasked routes of one set must differ"
    );
    assert_eq!(replies[2].payload, replies[1].payload);
    assert!(replies[2].cached, "the exact duplicate is served as a cached copy");
    verify_payload(&topo, "csa", &sets[0], None, &replies[0].payload);
    verify_payload(&topo, "csa", &sets[0], Some(&mask), &replies[1].payload);

    let s = server.stats();
    assert_eq!(s.requests, 3);
    assert_eq!(s.coalesced, 1);
    assert_eq!(s.computations, 2, "two distinct full keys, two routes");
    assert_eq!(s.errors, 0);
    server.shutdown();
}

#[test]
fn unknown_router_is_a_typed_error_not_a_dead_connection() {
    let sets = working_sets();
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = ServeClient::connect_tcp(server.tcp_addr().expect("tcp addr")).expect("connect");

    match client.route("no-such-router", &sets[0], None) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownRouter),
        other => panic!("expected a typed UnknownRouter error, got {other:?}"),
    }
    // The connection survives the error; the next request is served.
    let reply = client.route("csa", &sets[0], None).expect("route after error");
    assert!(!reply.payload.is_empty());

    let s = server.stats();
    assert_eq!(s.errors, 1);
    // The failed item was admitted and probed (a counted miss) before
    // the registry lookup failed, so conservation still holds.
    assert_eq!(s.requests, 2);
    assert_eq!(s.cache.hits + s.cache.misses, s.requests);
    server.shutdown();
}

#[test]
fn thundering_herd_costs_exactly_one_computation() {
    const HERD: usize = 8;
    let topo = CstTopology::with_leaves(PES);
    let sets = working_sets();
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServeConfig { workers: HERD, ..Default::default() },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");

    // All clients connect first, then release together and demand the
    // same (router, set) key. However the arrivals interleave — parked
    // on the leader's flight, served by the hit tier, or landing a
    // locked hit after publish — the engine must route exactly once.
    let barrier = std::sync::Barrier::new(HERD);
    let payloads: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..HERD)
            .map(|_| {
                let barrier = &barrier;
                let set = &sets[0];
                scope.spawn(move || {
                    let mut client = ServeClient::connect_tcp(addr).expect("connect");
                    barrier.wait();
                    client.route("csa", set, None).expect("herd route").payload
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("herd client")).collect()
    });
    for p in &payloads[1..] {
        assert_eq!(p, &payloads[0], "herd responses must be byte-identical");
    }
    verify_payload(&topo, "csa", &sets[0], None, &payloads[0]);

    let s = server.stats();
    assert_eq!(s.requests, HERD as u64);
    assert_eq!(s.responses, HERD as u64);
    assert_eq!(s.errors, 0);
    assert_eq!(s.computations, 1, "one concurrently-demanded key, one route: {s:?}");
    assert_eq!(s.singleflight_leaders, 1);
    assert_eq!(s.cache.misses, 1, "only the leader's locked probe misses");
    assert_eq!(
        s.cache.hits + s.coalesced_waits,
        (HERD - 1) as u64,
        "every non-leader is served from memory: {s:?}"
    );
    server.shutdown();
}

#[test]
fn mixed_herd_and_unique_soak_conserves_every_counter() {
    const HERD_CLIENTS: usize = 6;
    const OPS: usize = 40; // per client
    let sets = working_sets();
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServeConfig { workers: HERD_CLIENTS, cache_capacity: 256, ..Default::default() },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");

    // Seeded mixed plan: every third op hammers one shared hot key (the
    // herd), the rest walk per-client slices of the working set (the
    // unique tail). Barrier-released so the hot key is genuinely
    // contended at the start.
    let barrier = std::sync::Barrier::new(HERD_CLIENTS);
    let recorded: Vec<Vec<(usize, Vec<u8>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..HERD_CLIENTS)
            .map(|c| {
                let barrier = &barrier;
                let sets = &sets;
                scope.spawn(move || {
                    let mut client = ServeClient::connect_tcp(addr).expect("connect");
                    barrier.wait();
                    let mut out = Vec::with_capacity(OPS);
                    for i in 0..OPS {
                        let set_idx = if i % 3 == 0 { 0 } else { (c * 5 + i * 11) % WORKING };
                        let reply = client.route("csa", &sets[set_idx], None).expect("route");
                        out.push((set_idx, reply.payload));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("soak client")).collect()
    });
    let mut by_key: HashMap<usize, Vec<u8>> = HashMap::new();
    for (set_idx, payload) in recorded.into_iter().flatten() {
        match by_key.get(&set_idx) {
            Some(first) => assert_eq!(first, &payload, "one key, one byte sequence"),
            None => {
                by_key.insert(set_idx, payload);
            }
        }
    }

    let s = server.stats();
    assert_eq!(s.requests, (HERD_CLIENTS * OPS) as u64);
    assert_eq!(s.responses, s.requests);
    assert_eq!(s.errors, 0);
    assert_eq!(
        s.cache.hits + s.cache.misses + s.coalesced_waits,
        s.requests - s.coalesced,
        "probe-or-park conservation: {s:?}"
    );
    assert_eq!(s.computations, s.cache.misses, "every locked miss routes exactly once");
    assert!(s.singleflight_leaders <= s.computations);
    assert!(
        s.computations <= by_key.len() as u64 + s.cache.evictions,
        "computations are bounded by unique keys plus evicted re-routes: {s:?}"
    );
    assert!(s.cache.tier_hits <= s.cache.hits);
    assert_eq!(s.cache, shard_sum(&s.shards));
    server.shutdown();
}

#[test]
fn failing_leader_degrades_to_typed_errors_never_a_hang() {
    const HERD: usize = 8;
    let sets = working_sets();
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServeConfig { workers: HERD, ..Default::default() },
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");

    // A herd on a key whose route fails (unknown router): the first
    // joiner leads, fails, and drops its lease; waiters must wake into
    // the solo path and observe their own typed error — no hang, no
    // poisoned flight, server fully alive afterwards.
    let barrier = std::sync::Barrier::new(HERD);
    std::thread::scope(|scope| {
        for _ in 0..HERD {
            let barrier = &barrier;
            let set = &sets[0];
            scope.spawn(move || {
                let mut client = ServeClient::connect_tcp(addr).expect("connect");
                barrier.wait();
                match client.route("no-such-router", set, None) {
                    Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownRouter),
                    other => panic!("expected a typed UnknownRouter error, got {other:?}"),
                }
            });
        }
    });

    let s = server.stats();
    assert_eq!(s.requests, HERD as u64);
    assert_eq!(s.errors, HERD as u64);
    assert_eq!(s.computations, 0, "the registry rejects before any route");
    assert_eq!(s.singleflight_leaders, 0);
    assert_eq!(
        s.cache.hits + s.cache.misses + s.coalesced_waits,
        s.requests,
        "failed-flight recovery still conserves probes: {s:?}"
    );

    // The same fingerprint must be routable once the failure cause is
    // gone — the failed flights left no residue.
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let reply = client.route("csa", &sets[0], None).expect("route after herd failure");
    assert!(!reply.payload.is_empty());
    server.shutdown();
}

#[test]
fn unix_socket_serves_and_resets() {
    let sets = working_sets();
    let topo = CstTopology::with_leaves(PES);
    let path = "target/serve_stress_unix.sock";
    let server = Server::bind_unix(path, ServeConfig::default()).expect("bind unix");
    let mut client = ServeClient::connect_unix(path).expect("connect unix");

    let first = client.route("csa", &sets[3], None).expect("route");
    assert!(!first.cached);
    verify_payload(&topo, "csa", &sets[3], None, &first.payload);
    let second = client.route("csa", &sets[3], None).expect("route again");
    assert!(second.cached, "second identical request must be a cache hit");
    assert_eq!(second.payload, first.payload);

    client.reset().expect("reset");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.resets, 1);
    assert_eq!(stats.requests, 0, "reset zeroes the route counters");
    assert_eq!(stats.cache.entries, 0, "reset drops every cache entry");
    let third = client.route("csa", &sets[3], None).expect("route after reset");
    assert!(!third.cached, "the cache is cold again after reset");
    assert_eq!(third.payload, first.payload);
    server.shutdown();
    assert!(!std::path::Path::new(path).exists(), "shutdown removes the socket file");
}
