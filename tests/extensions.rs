//! Integration tests for the extension layers: universal scheduling
//! (layering + mirroring), round merging, SRGA routing and the
//! computational algorithms — everything past the paper's core.

use cst::comm::CommSet;
use cst::core::CstTopology;
use cst::engine::{EngineCtx, RouteExtra};
use cst::srga::{Comm2d, Coord, SrgaGrid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Random arbitrary sets (any orientation, crossings) always schedule and
/// verify under the universal front end.
#[test]
fn universal_scheduler_handles_random_arbitrary_sets() {
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(11);
    let mut ctx = EngineCtx::new();
    for _ in 0..25 {
        // random matching over a random subset of PEs, random directions
        let mut pes: Vec<usize> = (0..n).collect();
        pes.shuffle(&mut rng);
        let k = rng.gen_range(1..=n / 4);
        let pairs: Vec<(usize, usize)> = (0..k)
            .map(|i| {
                let (a, b) = (pes[2 * i], pes[2 * i + 1]);
                if rng.gen_bool(0.5) {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        let set = CommSet::from_pairs(n, &pairs);
        let out =
            ctx.route_named("universal", &topo, &set).expect("universal schedules anything");
        out.schedule.verify(&topo, &set).expect("and it verifies");
        let ids: std::collections::BTreeSet<usize> =
            out.schedule.scheduled_ids().map(|c| c.0).collect();
        assert_eq!(ids.len(), set.len());
        ctx.recycle(out);
    }
}

/// Round merging never increases the round count and always verifies.
#[test]
fn merging_is_sound_and_never_worse() {
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(21);
    let mut ctx = EngineCtx::new();
    for _ in 0..20 {
        // build a mixed well-nested set: right-oriented random half on the
        // left side, mirrored version on the right side
        let m = rng.gen_range(1..=8);
        let right = cst::workloads::well_nested_set(&mut rng, n / 2, m);
        let mut pairs: Vec<(usize, usize)> =
            right.comms().iter().map(|c| (c.source.0, c.dest.0)).collect();
        pairs.extend(right.comms().iter().map(|c| (n - 1 - c.source.0, n - 1 - c.dest.0)));
        let set = CommSet::from_pairs(n, &pairs);

        let sequential = ctx.route_named("general", &topo, &set).unwrap();
        let merged = ctx.route_named("general-merged", &topo, &set).unwrap();
        assert!(merged.rounds <= sequential.rounds);
        merged.schedule.verify(&topo, &set).unwrap();
        // mirror-symmetric halves interleave perfectly
        let &RouteExtra::General { right_rounds, left_rounds } = &sequential.extra else {
            panic!("general router carries half-rounds extras");
        };
        assert_eq!(merged.rounds, right_rounds.max(left_rounds));
        ctx.recycle(sequential);
        ctx.recycle(merged);
    }
}

/// SRGA random permutation campaign: every batch routes, respects the
/// one-role-per-PE-per-phase rule (enforced internally, re-verified per
/// 1D schedule), and completes all communications.
#[test]
fn srga_random_permutations_route_completely() {
    let grid = SrgaGrid::square(8);
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let mut perm: Vec<usize> = (0..64).collect();
        perm.shuffle(&mut rng);
        let out = cst::srga::permutation(&grid, &perm).unwrap();
        let moved = perm.iter().enumerate().filter(|&(i, &d)| i != d).count();
        let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
        assert_eq!(scheduled, moved);
        assert!(out.total_rounds() >= 1);
    }
}

/// SRGA rectangular grids work end to end.
#[test]
fn srga_rectangular_grid() {
    let grid = SrgaGrid::new(4, 16).unwrap();
    let comms: Vec<Comm2d> = (0..4)
        .map(|r| Comm2d::new(Coord::at(r, r), Coord::at(3 - r, 15 - r)))
        .collect();
    let out = cst::srga::route(&grid, &comms).unwrap();
    let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
    assert_eq!(scheduled, 4);
}

/// Algorithms compose: sorted prefix sums of random data match the
/// sequential computation.
#[test]
fn apps_compose_sort_then_prefix() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut data: Vec<i64> = (0..64).map(|_| rng.gen_range(-100..100)).collect();
    let sorted = cst::apps::odd_even_sort(data.clone()).unwrap();
    data.sort_unstable();
    assert_eq!(sorted.values, data);
    let prefix = cst::apps::prefix_sums(sorted.values).unwrap();
    let mut expect = data.clone();
    for i in 1..expect.len() {
        expect[i] += expect[i - 1];
    }
    assert_eq!(prefix.values, expect);
}

/// Fault campaign at integration scope: nothing silently misroutes.
#[test]
fn fault_campaign_never_verifies_wrong_output() {
    let topo = CstTopology::with_leaves(32);
    let mut rng = StdRng::seed_from_u64(51);
    let set = cst::workloads::well_nested_set(&mut rng, 32, 10);
    let (during, by_verifier, masked) = cst::sim::campaign(&topo, &set);
    // Every injection lands in one of the three sound buckets; the
    // classifier itself re-verifies schedules, so reaching here means no
    // wrong output was ever accepted.
    assert_eq!(during + by_verifier + masked, topo.num_switches() * 5 * 2);
    assert!(during > 0);
}

/// Layered scheduling on the comb: spanning comm and teeth in 2 rounds.
#[test]
fn layers_on_comb() {
    let topo = CstTopology::with_leaves(64);
    let set = cst::workloads::comb(64, 10);
    let out = cst::engine::route_once("layered", &topo, &set).unwrap();
    let RouteExtra::Layered { num_layers } = out.extra else {
        panic!("layered router carries layer-count extras");
    };
    assert_eq!(num_layers, 1, "a comb is well-nested: one layer");
    assert_eq!(out.rounds, 2);
    out.schedule.verify(&topo, &set).unwrap();
}
