//! Allocation gate for the engine's headline guarantee: once an
//! [`EngineCtx`] is warm, a serial-CSA `route()` performs **zero** heap
//! allocations. The vendored counting allocator is installed as this test
//! binary's global allocator; counters are per-thread, so the measurement
//! sees exactly what the routing call itself does.
//!
//! Dispatch is direct (`ctx.route(&Csa, ..)`): name lookup through the
//! registry builds boxed routers and is deliberately outside the
//! guarantee — hot loops hold a router value, as the benches do.

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

use cst::core::CstTopology;
use cst::engine::{Csa, EngineCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn warm_serial_csa_route_allocates_zero_bytes() {
    let n = 1024;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
    let mut ctx = EngineCtx::new();

    // Cold call: sizes every scratch buffer (phase-1 counters, round
    // sweeps, the pooled schedule and meter).
    let (cold, out) = alloc_counter::measure(|| ctx.route(&Csa, &topo, &set).unwrap());
    assert!(cold.bytes_allocated > 0, "cold call must size the scratch");
    let expected = out.schedule.clone();
    ctx.recycle(out);

    // Second call: the pool now holds a right-sized schedule and meter;
    // this settles any remaining monotonic growth.
    let (_, out) = alloc_counter::measure(|| ctx.route(&Csa, &topo, &set).unwrap());
    ctx.recycle(out);

    // Warm call: the guarantee under test.
    let (warm, out) = alloc_counter::measure(|| ctx.route(&Csa, &topo, &set).unwrap());
    assert_eq!(out.schedule, expected, "warm route must still be correct");
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "warm serial-CSA route() must not touch the heap: {warm:?}"
    );
    ctx.recycle(out);

    // For BENCH notes: cold-vs-warm footprint of this n=1024 request.
    println!(
        "alloc gate n={n}: cold {} allocations / {} bytes, warm {} / {}",
        cold.allocations, cold.bytes_allocated, warm.allocations, warm.bytes_allocated
    );
}

#[test]
fn warm_cache_hit_allocates_zero_bytes() {
    // The streaming guarantee: a schedule-cache hit never touches the
    // scheduler, and once the pool holds right-sized shells it never
    // touches the heap either — fingerprint, lookup, copy-out, report
    // clone are all allocation-free.
    let n = 1024;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
    let mut ctx = EngineCtx::new();
    ctx.enable_cache(16);

    // Cold call: a miss — routes, sizes the scratch, inserts the entry.
    let out = ctx.route_cached(&Csa, &topo, &set).unwrap();
    let expected = out.schedule.clone();
    ctx.recycle(out);

    // First hit: copies the schedule out through pooled shells, growing
    // them to this request's shape.
    let out = ctx.route_cached(&Csa, &topo, &set).unwrap();
    ctx.recycle(out);

    // Warm hit: the guarantee under test.
    let (warm, out) = alloc_counter::measure(|| ctx.route_cached(&Csa, &topo, &set).unwrap());
    assert_eq!(out.schedule, expected, "cache hit must return the cached schedule");
    assert!(
        matches!(out.extra, cst::engine::RouteExtra::Cached { .. }),
        "third identical request must be served from the cache"
    );
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "warm cache hit must not touch the heap: {warm:?}"
    );
    ctx.recycle(out);
    let stats = ctx.cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (2, 1));
}

#[test]
fn warm_compiled_replay_allocates_zero_bytes() {
    // The compiled-replay guarantee: once a schedule is lowered into a
    // `CompiledProgram` and the `ReplayScratch` shells are sized, every
    // further replay — state reset, delta application, flat delivery
    // walks, meter/schedule clone_from — is allocation-free. (Payload
    // clones are refcount bumps on `Bytes`, not heap traffic.)
    use cst::sim::{default_payloads, CompiledProgram, ReplayScratch};
    let n = 1024;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
    let mut ctx = EngineCtx::new();
    let out = ctx.route(&Csa, &topo, &set).unwrap();

    let prog = CompiledProgram::compile(&topo, &set, &out.schedule).unwrap();
    let payloads = default_payloads(&set);
    let mut scratch = ReplayScratch::new();

    // Two sizing passes: the first grows the scratch shells, the second
    // settles the recycled meter/schedule capacities.
    for _ in 0..2 {
        let sim = prog.replay_with(&mut scratch, &payloads).unwrap();
        scratch.recycle(sim);
    }

    let (warm, sim) =
        alloc_counter::measure(|| prog.replay_with(&mut scratch, &payloads).unwrap());
    assert_eq!(sim.schedule, out.schedule, "warm replay must still be correct");
    assert_eq!(sim.deliveries.len(), set.len());
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "warm compiled replay must not touch the heap: {warm:?}"
    );
    scratch.recycle(sim);
    ctx.recycle(out);
}

#[test]
fn warm_context_stays_allocation_free_on_smaller_requests() {
    // Buffers grow monotonically: after serving a large request, a warm
    // context must serve any smaller shape without heap traffic either.
    let big = CstTopology::with_leaves(1024);
    let small = CstTopology::with_leaves(64);
    let mut rng = StdRng::seed_from_u64(0xA110D);
    let big_set = cst::workloads::well_nested_with_density(&mut rng, 1024, 0.7);
    let small_set = cst::workloads::well_nested_with_density(&mut rng, 64, 0.7);
    let mut ctx = EngineCtx::new();

    for _ in 0..2 {
        let out = ctx.route(&Csa, &big, &big_set).unwrap();
        ctx.recycle(out);
        let out = ctx.route(&Csa, &small, &small_set).unwrap();
        ctx.recycle(out);
    }

    let (warm, out) = alloc_counter::measure(|| ctx.route(&Csa, &small, &small_set).unwrap());
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "re-targeting a warm context to a smaller tree must not allocate: {warm:?}"
    );
    ctx.recycle(out);
}

#[test]
fn trace_instrumentation_is_zero_cost_when_disabled() {
    // The protocol-trace emitter hooks (cst-model conformance) thread an
    // `Option<&mut ProtocolTrace>` through the scheduler's round loop;
    // on the plain path that option is `None` and must cost nothing —
    // the streaming/e13 zero-allocation guarantee may not regress just
    // because tracing exists. A traced run in between must not poison
    // the warm path either.
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0x7AACE);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
    let mut scratch = cst::padr::CsaScratch::new();
    let mut pool = cst::comm::SchedulePool::new();
    let mut trace = cst::core::ProtocolTrace::new();

    // Warm the scratch through the traced entry point (sizes the trace
    // and, with pruning forced off, the widest sweep buffers), then
    // settle the pool with two plain runs.
    let traced = scratch.schedule_traced(&topo, &set, &mut pool, &mut trace).unwrap();
    let expected_rounds = traced.rounds();
    pool.put_meter(traced.meter);
    pool.put_schedule(traced.schedule);
    for _ in 0..2 {
        let out = scratch.schedule(&topo, &set, &mut pool).unwrap();
        pool.put_meter(out.meter);
        pool.put_schedule(out.schedule);
    }

    let (warm, out) =
        alloc_counter::measure(|| scratch.schedule(&topo, &set, &mut pool).unwrap());
    assert_eq!(out.rounds(), expected_rounds, "tracing must not change results");
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "disabled trace emitter must not touch the heap: {warm:?}"
    );
    assert_eq!(trace.rounds.len(), expected_rounds, "traced run recorded every round");
}

#[test]
fn warm_general_route_hit_allocates_zero_bytes() {
    // The layered front-end's streaming guarantee: repeating the same
    // arbitrary (non-well-nested) request against a warm context is
    // memo hit + per-layer cache hits + pooled composite assembly +
    // pooled metering — no decomposition recompute, no heap traffic.
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0x6E6E);
    let gset = cst::workloads::random_bipartite(&mut rng, n, 48);
    let mut ctx = EngineCtx::new();
    ctx.enable_cache(64);

    // Cold call: decomposes, routes every layer, sizes the scratch.
    let out = ctx.route_general_cached(&Csa, &topo, &gset).unwrap();
    let expected = out.schedule.clone();
    let layers = out.num_layers;
    ctx.recycle_general(out);

    // Two settle calls: per-layer cache copies grow the pooled shells
    // to their final shapes.
    for _ in 0..2 {
        let out = ctx.route_general_cached(&Csa, &topo, &gset).unwrap();
        ctx.recycle_general(out);
    }

    // Warm call: the guarantee under test.
    let (warm, out) =
        alloc_counter::measure(|| ctx.route_general_cached(&Csa, &topo, &gset).unwrap());
    assert_eq!(out.schedule, expected, "warm layered route must still be correct");
    assert!(out.memo_hit, "warm call must reuse the memoized decomposition");
    assert_eq!(out.cached_layers, layers, "every layer must be served from the cache");
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "warm layered route must not touch the heap: {warm:?}"
    );
    ctx.recycle_general(out);
}

#[test]
fn warm_serve_worker_cached_request_allocates_zero_bytes() {
    // The daemon's streaming guarantee (docs/SERVE.md): a worker serving
    // a repeated cached unmasked Route frame is pure scratch reuse —
    // borrowed-slice decode into the pooled set, shared-cache probe, one
    // `Arc` payload clone, response bytes into the caller's buffer. Once
    // warm, none of that touches the heap.
    use cst::serve::wire::encode_route_request;
    use cst::serve::{ServeConfig, ServeShared, WorkerCore};

    let n = 1024;
    let mut rng = StdRng::seed_from_u64(0x5E44E);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
    let shared = std::sync::Arc::new(ServeShared::new(ServeConfig::default()));
    let mut core = WorkerCore::new(shared);
    let mut req = Vec::new();
    encode_route_request(&mut req, "csa", &set, None);
    let mut out = Vec::new();

    // Cold frame: routes, serializes the payload, publishes it to the
    // shared cache. Settle frame: sizes the remaining scratch.
    core.handle_frame(&req, &mut out);
    let expected = out.clone();
    core.handle_frame(&req, &mut out);
    assert_eq!(out[0], cst::serve::wire::RESP_ROUTE);
    assert_eq!(out[1], 1, "second identical frame must be served cached");

    // Warm frame: the guarantee under test.
    let (warm, ()) = alloc_counter::measure(|| core.handle_frame(&req, &mut out));
    assert_eq!(
        (warm.allocations, warm.bytes_allocated),
        (0, 0),
        "a warm worker serving a cached request must not touch the heap: {warm:?}"
    );
    // Identical bytes to the cold response, modulo the cached flag.
    assert_eq!(out[0], cst::serve::wire::RESP_ROUTE);
    assert_eq!(out[1], 1);
    assert_eq!(out[2..], expected[2..], "cached payload bytes match the cold route");
}
