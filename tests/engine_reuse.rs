//! Scratch-reuse soundness for the engine: one [`EngineCtx`] serving
//! 100+ mixed requests — every canonical router, several tree sizes,
//! several seeds, interleaved — must produce schedules byte-identical
//! (serde) to fresh-context runs, and every outcome must come out clean
//! under the `cst-check` static analyzer. A stale counter, an
//! under-cleared pool buffer, or a scratch that survives re-targeting to
//! a different topology would all surface here as a diff or a diagnostic.

use cst::check::{analyze, CheckOptions};
use cst::core::CstTopology;
use cst::engine::{route_once, EngineCtx, CANONICAL};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strictness per router family: the CSA drivers promise every analyzer
/// invariant (right-oriented configs, width-optimal rounds, outermost
/// selection, the Theorem-8 transition bound); the front ends and
/// baselines promise legality, not optimality.
fn options_for(router: &str) -> CheckOptions {
    match router {
        "csa" | "csa-parallel" | "csa-threaded" => CheckOptions::strict(),
        _ => CheckOptions::lenient(),
    }
}

#[test]
fn one_context_across_mixed_requests_matches_fresh_runs() {
    let mut ctx = EngineCtx::new();
    let mut requests = 0usize;
    // Deliberately interleave sizes so the scratch re-targets between
    // topologies mid-stream instead of growing once and staying put.
    for seed in 0..4u64 {
        for n in [8usize, 64, 16, 128] {
            let topo = CstTopology::with_leaves(n);
            let mut rng = StdRng::seed_from_u64(seed * 131 + n as u64);
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
            for name in CANONICAL {
                let warm = ctx
                    .route_named(name, &topo, &set)
                    .unwrap_or_else(|e| panic!("{name} warm (n={n}, seed={seed}): {e}"));
                let fresh = route_once(name, &topo, &set)
                    .unwrap_or_else(|e| panic!("{name} fresh (n={n}, seed={seed}): {e}"));
                assert_eq!(
                    serde_json::to_string(&warm.schedule).unwrap().into_bytes(),
                    serde_json::to_string(&fresh.schedule).unwrap().into_bytes(),
                    "{name} (n={n}, seed={seed}): warm-context schedule drifted from fresh"
                );
                let report = analyze(&topo, &set, &warm.schedule, &options_for(name));
                assert!(
                    report.is_clean(),
                    "{name} (n={n}, seed={seed}) flagged by cst-check:\n{}",
                    report.render_text()
                );
                ctx.recycle(warm);
                requests += 1;
            }
        }
    }
    assert!(requests >= 100, "the soak must cover 100+ requests, got {requests}");
}
