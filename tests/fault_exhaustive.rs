//! Exhaustive single-fault enumeration on small trees (n <= 16).
//!
//! For every single dead switch, every single dead directed link, and
//! every single degraded (half-duplex) edge, the masked router's
//! routed/dropped partition is cross-checked against a brute-force
//! reachability oracle built from [`Circuit::between`] — a path
//! construction independent of `FaultMask::blocking_fault` — and every
//! surviving schedule is audited by `cst-check`'s fault pass.

use cst::check::{analyze_with_faults, CheckOptions};
use cst::comm::{examples, CommSet};
use cst::core::{CstTopology, Circuit, DirectedLink, FaultMask, NodeId};
use cst::engine::EngineCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Brute-force oracle: a communication survives iff no switch its circuit
/// configures is dead and no directed link it occupies is dead. Scans the
/// mask's fault lists linearly instead of using the bitset queries.
fn oracle_blocked(topo: &CstTopology, mask: &FaultMask, set: &CommSet, comm: usize) -> bool {
    let c = set.comms()[comm];
    let circuit = Circuit::between(topo, c.source, c.dest);
    circuit
        .settings
        .iter()
        .any(|(sw, _)| mask.dead_switches().contains(sw))
        || circuit
            .links
            .iter()
            .any(|l| mask.dead_links().contains(l))
}

/// The workload suite per size: canonical shapes plus seeded random
/// well-nested sets, all right-oriented.
fn workloads(n: usize) -> Vec<CommSet> {
    let mut sets = vec![examples::full_nest(n), examples::sibling_pairs(n)];
    if n == 16 {
        sets.push(examples::paper_figure_2());
    }
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
        if !set.is_empty() {
            sets.push(set);
        }
    }
    sets
}

/// Route `set` under `mask`, check the drop partition against the oracle,
/// and audit the surviving schedule. Returns the number of drops.
fn route_and_check(
    ctx: &mut EngineCtx,
    topo: &CstTopology,
    set: &CommSet,
    mask: &FaultMask,
    router: &str,
    what: &str,
) -> usize {
    let out = ctx.route_named_masked(router, topo, set, mask).unwrap();
    let report = out.degradation.as_ref().expect("masked route reports");
    assert_eq!(
        report.routed + report.dropped,
        set.len(),
        "{router} under {what}: conservation violated"
    );

    let dropped: Vec<usize> = report.drops.iter().map(|d| d.comm).collect();
    for id in 0..set.len() {
        assert_eq!(
            oracle_blocked(topo, mask, set, id),
            dropped.contains(&id),
            "{router} under {what}: comm {id} disagrees with the circuit oracle"
        );
    }

    let audit = analyze_with_faults(
        topo,
        set,
        &out.schedule,
        &CheckOptions::lenient(),
        mask,
        &dropped,
    );
    assert!(
        audit.is_clean(),
        "{router} under {what}: fault audit found {:?}",
        audit.diagnostics
    );

    let drops = report.dropped;
    ctx.recycle(out);
    drops
}

#[test]
fn every_single_switch_fault_partitions_correctly() {
    let mut ctx = EngineCtx::new();
    for n in [4usize, 8, 16] {
        let topo = CstTopology::with_leaves(n);
        for set in workloads(n) {
            for sw in 1..topo.num_leaves() {
                let mut mask = FaultMask::empty(&topo);
                assert!(mask.kill_switch(NodeId(sw)));
                for router in ["csa", "greedy"] {
                    route_and_check(
                        &mut ctx,
                        &topo,
                        &set,
                        &mask,
                        router,
                        &format!("dead switch {sw} (n={n})"),
                    );
                }
            }
        }
    }
}

#[test]
fn every_single_link_fault_partitions_correctly() {
    let mut ctx = EngineCtx::new();
    for n in [4usize, 8, 16] {
        let topo = CstTopology::with_leaves(n);
        for set in workloads(n) {
            for child in 2..topo.node_table_len() {
                for link in [
                    DirectedLink::up_from(NodeId(child)),
                    DirectedLink::down_to(NodeId(child)),
                ] {
                    let mut mask = FaultMask::empty(&topo);
                    assert!(mask.kill_link(link));
                    route_and_check(
                        &mut ctx,
                        &topo,
                        &set,
                        &mask,
                        "csa",
                        &format!("dead link {link:?} (n={n})"),
                    );
                }
            }
        }
    }
}

#[test]
fn every_single_degraded_edge_reroutes_without_dropping() {
    let mut ctx = EngineCtx::new();
    for n in [4usize, 8, 16] {
        let topo = CstTopology::with_leaves(n);
        for set in workloads(n) {
            for child in 2..topo.node_table_len() {
                let mut mask = FaultMask::empty(&topo);
                assert!(mask.degrade_edge(NodeId(child)));
                let out = ctx.route_named_masked("csa", &topo, &set, &mask).unwrap();
                let report = out.degradation.as_ref().unwrap();
                // Half-duplex is a capacity fault, never a reachability
                // fault: nothing may be dropped.
                assert_eq!(report.dropped, 0, "degraded edge {child} dropped comms");
                assert_eq!(report.routed, set.len());
                assert_eq!(out.rounds, out.schedule.num_rounds());
                let audit = analyze_with_faults(
                    &topo,
                    &set,
                    &out.schedule,
                    &CheckOptions::lenient(),
                    &mask,
                    &[],
                );
                assert!(
                    audit.is_clean(),
                    "degraded edge {child} (n={n}): {:?}",
                    audit.diagnostics
                );
                ctx.recycle(out);
            }
        }
    }
}

/// A dead switch is strictly stronger than any one of its dead links:
/// killing switch `s` drops a superset of what killing any single link
/// adjacent to `s` drops.
#[test]
fn switch_death_dominates_adjacent_link_death() {
    let mut ctx = EngineCtx::new();
    let n = 16;
    let topo = CstTopology::with_leaves(n);
    let set = examples::paper_figure_2();
    for sw in 1..topo.num_leaves() {
        let mut switch_mask = FaultMask::empty(&topo);
        switch_mask.kill_switch(NodeId(sw));
        let switch_drops: Vec<usize> = {
            let out = ctx
                .route_named_masked("csa", &topo, &set, &switch_mask)
                .unwrap();
            let drops = out
                .degradation
                .as_ref()
                .unwrap()
                .drops
                .iter()
                .map(|d| d.comm)
                .collect();
            ctx.recycle(out);
            drops
        };
        // Adjacent links: above the switch (child = sw) and to each child.
        let adjacent = [
            DirectedLink::up_from(NodeId(sw)),
            DirectedLink::down_to(NodeId(sw)),
            DirectedLink::up_from(NodeId(2 * sw)),
            DirectedLink::down_to(NodeId(2 * sw)),
            DirectedLink::up_from(NodeId(2 * sw + 1)),
            DirectedLink::down_to(NodeId(2 * sw + 1)),
        ];
        for link in adjacent {
            let mut link_mask = FaultMask::empty(&topo);
            link_mask.kill_link(link);
            let out = ctx
                .route_named_masked("csa", &topo, &set, &link_mask)
                .unwrap();
            for d in &out.degradation.as_ref().unwrap().drops {
                assert!(
                    switch_drops.contains(&d.comm),
                    "link {link:?} dropped comm {} that dead switch {sw} kept",
                    d.comm
                );
            }
            ctx.recycle(out);
        }
    }
}
