//! Boundary conditions across the whole stack: minimal trees, maximal
//! density, degenerate sets, and scale smoke tests.

use cst::comm::{width_on_topology, CommSet};
use cst::core::{CstTopology, LeafId, NodeId};
use cst::engine::{route_once, EngineCtx};

#[test]
fn minimal_tree_two_leaves() {
    let topo = CstTopology::with_leaves(2);
    assert_eq!(topo.num_switches(), 1);
    assert_eq!(topo.height(), 1);
    let set = CommSet::from_pairs(2, &[(0, 1)]);
    let out = route_once("csa", &topo, &set).unwrap();
    assert_eq!(out.rounds, 1);
    assert_eq!(out.power.total_units, 1); // one l->r at the only switch
    out.schedule.verify(&topo, &set).unwrap();
    // the same on every scheduler
    let roy = route_once("roy", &topo, &set).unwrap();
    assert_eq!(roy.schedule.num_rounds(), 1);
    let sim = cst::sim::simulate(&topo, &set, None).unwrap();
    assert_eq!(sim.cycles, 1 + 2); // height + 1*(height+1)
}

#[test]
fn minimal_left_oriented() {
    let topo = CstTopology::with_leaves(2);
    let set = CommSet::from_pairs(2, &[(1, 0)]);
    let out = route_once("general", &topo, &set).unwrap();
    assert_eq!(out.rounds, 1);
    out.schedule.verify(&topo, &set).unwrap();
}

#[test]
fn maximal_density_full_pairing() {
    // every PE an endpoint: n/2 communications
    let mut ctx = EngineCtx::new();
    for n in [8usize, 64, 512] {
        let topo = CstTopology::with_leaves(n);
        let set = cst::comm::examples::full_nest(n);
        assert_eq!(set.len(), n / 2);
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        assert_eq!(out.rounds, n / 2);
        assert!(out.power.max_port_transitions <= cst::padr::CSA_PORT_TRANSITION_BOUND);
        ctx.recycle(out);
    }
}

#[test]
fn width_one_at_scale() {
    // 32768 leaves, 16384 sibling pairs: one round, instantly
    let n = 32768;
    let topo = CstTopology::with_leaves(n);
    let set = cst::comm::examples::sibling_pairs(n);
    let out = route_once("csa", &topo, &set).unwrap();
    assert_eq!(out.rounds, 1);
    assert_eq!(out.power.total_units as usize, n / 2);
    assert_eq!(out.power.max_units, 1);
}

#[test]
fn single_communication_every_span() {
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for d in 1..n {
        let set = CommSet::from_pairs(n, &[(0, d)]);
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        assert_eq!(out.rounds, 1, "span {d}");
        out.schedule.verify(&topo, &set).unwrap();
        ctx.recycle(out);
    }
}

#[test]
fn adjacent_pairs_at_every_position() {
    let n = 32;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for i in 0..n - 1 {
        let set = CommSet::from_pairs(n, &[(i, i + 1)]);
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        assert_eq!(out.rounds, 1, "position {i}");
        assert_eq!(width_on_topology(&topo, &set), 1);
        ctx.recycle(out);
    }
}

#[test]
fn leaf_id_and_node_id_boundaries() {
    let topo = CstTopology::with_leaves(16);
    assert!(topo.contains(NodeId(1)));
    assert!(topo.contains(NodeId(31)));
    assert!(!topo.contains(NodeId(0)));
    assert!(!topo.contains(NodeId(32)));
    assert_eq!(topo.node_leaf(NodeId(31)), Some(LeafId(15)));
    assert_eq!(topo.node_leaf(NodeId(15)), None); // last internal switch
}

#[test]
fn errors_are_reported_not_panicked() {
    let topo = CstTopology::with_leaves(8);
    // out-of-range
    assert!(CommSet::new(8, vec![cst::comm::Communication::of(0, 9)]).is_err());
    // crossing
    let crossing = CommSet::from_pairs(8, &[(0, 4), (2, 6)]);
    assert!(route_once("csa", &topo, &crossing).is_err());
    // left-oriented through the strict entry point
    let left = CommSet::from_pairs(8, &[(5, 2)]);
    assert!(route_once("csa", &topo, &left).is_err());
    // but fine through the universal one
    assert!(route_once("universal", &topo, &left).is_ok());
    // size mismatch panics are confined to debug assertions; the public
    // constructors reject instead
    assert!(CstTopology::new(24).is_err());
}

#[test]
fn deep_tree_long_single_path() {
    // 65536 leaves: one full-span communication crosses 2*16-1 switches
    let n = 1 << 16;
    let topo = CstTopology::with_leaves(n);
    let set = CommSet::from_pairs(n, &[(0, n - 1)]);
    let out = route_once("csa", &topo, &set).unwrap();
    assert_eq!(out.rounds, 1);
    // 15 switches up, the root, 15 down: 2h - 1 switches
    assert_eq!(out.power.total_units, 2 * 16 - 1);
    let sim = cst::sim::simulate(&topo, &set, None).unwrap();
    assert_eq!(sim.deliveries[0].hops, 2 * 16 - 1);
}

#[test]
fn power_of_two_leaf_counts_only() {
    for bad in [0usize, 1, 3, 5, 6, 7, 9, 100] {
        assert!(CstTopology::new(bad).is_err(), "{bad} accepted");
    }
    for good in [2usize, 4, 8, 1024] {
        assert!(CstTopology::new(good).is_ok());
    }
}

#[test]
fn session_on_empty_batches() {
    let topo = CstTopology::with_leaves(8);
    let mut session = cst::padr::PadrSession::new(&topo);
    let (out, report) = session.run_batch(&CommSet::empty(8)).unwrap();
    assert_eq!(out.rounds(), 0);
    assert_eq!(report.units_spent, 0);
    assert_eq!(session.power().total_units, 0);
}
