//! Frame-codec suite for the serve wire protocol (docs/SERVE.md).
//!
//! Round-trips every request/response/error variant, rejects truncated
//! and oversized frames with typed errors (never a panic), pins one
//! canonical Route frame byte-for-byte, and drives the server's
//! [`WorkerCore`] with hostile bytes to prove malformed input always
//! comes back as a typed error frame.

use cst::comm::CommSet;
use cst::core::{CstTopology, DirectedLink, FaultMask, NodeId};
use cst::engine::CacheStats;
use cst::serve::wire::{
    decode_payload, decode_request, decode_response, encode_batch_masked_request,
    encode_batch_request, encode_batch_response, encode_error_response, encode_payload,
    encode_request, encode_reset_request, encode_route_request, encode_route_response,
    encode_stats_request, encode_stats_response, read_frame, write_frame, DegradationSummary,
    FrameError, DEFAULT_MAX_FRAME, STATS_MINOR,
};
use cst::serve::{ErrorCode, ErrorFrame, Request, Response, ServeConfig, ServeShared, ServeStats, WorkerCore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn sample_set() -> CommSet {
    CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)])
}

/// A mask valid on the 8-leaf topology of [`sample_set`] — the decoder
/// rebuilds masks against the request set's own topology, so the ids
/// must be in range there.
fn sample_mask() -> FaultMask {
    let topo = CstTopology::with_leaves(8);
    let mut mask = FaultMask::empty(&topo);
    assert!(mask.kill_switch(NodeId(4)));
    assert!(mask.kill_link(DirectedLink { child: NodeId(3), up: true }));
    assert!(mask.degrade_edge(NodeId(2)));
    mask
}

fn sample_error() -> ErrorFrame {
    ErrorFrame { code: ErrorCode::InvalidRequest, message: "leaf 9 out of range".to_string() }
}

#[test]
fn requests_round_trip() {
    let mut buf = Vec::new();
    let originals = vec![
        Request::Route { router: "csa".into(), set: sample_set(), mask: None },
        Request::Route { router: "greedy".into(), set: sample_set(), mask: Some(sample_mask()) },
        Request::Batch {
            router: "general".into(),
            items: vec![
                (sample_set(), Some(sample_mask())),
                (CommSet::from_pairs(4, &[(0, 3)]), None),
            ],
        },
        Request::Stats,
        Request::Reset,
    ];
    for req in originals {
        encode_request(&mut buf, &req);
        let decoded = decode_request(&buf).expect("round trip decodes");
        // Masks are compared through the fingerprint the cache itself
        // keys on — the codec identity the protocol actually relies on.
        match (&req, &decoded) {
            (
                Request::Route { router: r1, set: s1, mask: m1 },
                Request::Route { router: r2, set: s2, mask: m2 },
            ) => {
                assert_eq!(r1, r2);
                assert_eq!(s1, s2);
                assert_eq!(
                    m1.as_ref().map(FaultMask::fingerprint),
                    m2.as_ref().map(FaultMask::fingerprint)
                );
            }
            (
                Request::Batch { router: r1, items: x1 },
                Request::Batch { router: r2, items: x2 },
            ) => {
                assert_eq!(r1, r2);
                assert_eq!(x1.len(), x2.len());
                for ((s1, m1), (s2, m2)) in x1.iter().zip(x2) {
                    assert_eq!(s1, s2);
                    assert_eq!(
                        m1.as_ref().map(FaultMask::fingerprint),
                        m2.as_ref().map(FaultMask::fingerprint)
                    );
                }
            }
            (Request::Stats, Request::Stats) | (Request::Reset, Request::Reset) => {}
            other => panic!("request changed shape across the wire: {other:?}"),
        }
    }
}

fn sample_stats() -> ServeStats {
    ServeStats {
        connections: 3,
        frames: 120,
        requests: 100,
        responses: 98,
        errors: 2,
        coalesced: 7,
        resets: 1,
        workers: 4,
        computations: 13,
        singleflight_leaders: 11,
        coalesced_waits: 9,
        cache: CacheStats {
            hits: 80,
            misses: 13,
            evictions: 5,
            collisions: 1,
            entries: 8,
            capacity: 64,
            tier_hits: 60,
        },
        shards: vec![
            CacheStats {
                hits: 50,
                misses: 7,
                evictions: 3,
                collisions: 1,
                entries: 5,
                capacity: 32,
                tier_hits: 40,
            },
            CacheStats {
                hits: 30,
                misses: 6,
                evictions: 2,
                collisions: 0,
                entries: 3,
                capacity: 32,
                tier_hits: 20,
            },
        ],
    }
}

/// Byte length of the minor-1 extension appended to a Stats body: the
/// minor tag, four u64 counters, and one u64 tier-hit count per shard.
fn stats_extension_len(stats: &ServeStats) -> usize {
    1 + 4 * 8 + stats.shards.len() * 8
}

#[test]
fn responses_round_trip() {
    let mut buf = Vec::new();
    let payload: Arc<[u8]> = Arc::from(&b"payload-bytes"[..]);

    encode_route_response(&mut buf, true, &payload);
    match decode_response(&buf).expect("route response decodes") {
        Response::Route(reply) => {
            assert!(reply.cached);
            assert_eq!(reply.payload, payload.as_ref());
        }
        other => panic!("expected Route, got {other:?}"),
    }

    let items = vec![Ok((false, Arc::clone(&payload))), Err(sample_error())];
    encode_batch_response(&mut buf, &items);
    match decode_response(&buf).expect("batch response decodes") {
        Response::Batch(decoded) => {
            assert_eq!(decoded.len(), 2);
            let first = decoded[0].as_ref().expect("first item ok");
            assert!(!first.cached);
            assert_eq!(first.payload, payload.as_ref());
            assert_eq!(decoded[1].as_ref().expect_err("second item err"), &sample_error());
        }
        other => panic!("expected Batch, got {other:?}"),
    }

    encode_stats_response(&mut buf, &sample_stats());
    match decode_response(&buf).expect("stats response decodes") {
        Response::Stats(stats) => assert_eq!(stats, sample_stats()),
        other => panic!("expected Stats, got {other:?}"),
    }

    crate_reset_round_trip(&mut buf);

    encode_error_response(&mut buf, &sample_error());
    match decode_response(&buf).expect("error response decodes") {
        Response::Error(e) => assert_eq!(e, sample_error()),
        other => panic!("expected Error, got {other:?}"),
    }
}

fn crate_reset_round_trip(buf: &mut Vec<u8>) {
    cst::serve::wire::encode_reset_response(buf);
    assert!(matches!(decode_response(buf), Ok(Response::Reset)));
}

#[test]
fn payloads_round_trip_with_and_without_degradation() {
    let mut buf = Vec::new();
    let schedule_json = br#"{"rounds":[{"comms":[0,1]}]}"#;
    encode_payload(&mut buf, "csa", 3, 42, 7, 9, None, schedule_json);
    let (summary, json) = decode_payload(&buf).expect("payload decodes");
    assert_eq!(summary.router, "csa");
    assert_eq!(summary.rounds, 3);
    assert_eq!(summary.power_total_units, 42);
    assert_eq!(summary.power_max_units, 7);
    assert_eq!(summary.max_port_transitions, 9);
    assert!(summary.degradation.is_none());
    assert_eq!(json, schedule_json);

    let degradation = DegradationSummary {
        total: 5,
        routed: 3,
        rerouted: 1,
        dropped: 2,
        extra_rounds: 1,
        dropped_ids: vec![1, 4],
    };
    encode_payload(&mut buf, "greedy", 4, 50, 8, 12, Some(&degradation), schedule_json);
    let (summary, json) = decode_payload(&buf).expect("degraded payload decodes");
    assert_eq!(summary.degradation, Some(degradation));
    assert_eq!(json, schedule_json);
}

#[test]
fn golden_route_request_bytes() {
    // Byte-pin of the canonical frame body: Route, router "csa",
    // CommSet{4 leaves, (0,3),(1,2)}, no mask. Little-endian throughout;
    // strings and pair lists carry u32 length prefixes (docs/SERVE.md).
    let mut buf = Vec::new();
    let set = CommSet::from_pairs(4, &[(0, 3), (1, 2)]);
    encode_route_request(&mut buf, "csa", &set, None);
    #[rustfmt::skip]
    let golden: Vec<u8> = vec![
        0x01,                                           // kind = Route
        0x03, 0x00, 0x00, 0x00, b'c', b's', b'a',       // router
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // num_leaves = 4
        0x02, 0x00, 0x00, 0x00,                         // 2 pairs
        0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, // (0, 3)
        0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, // (1, 2)
        0x00,                                           // no mask
    ];
    assert_eq!(buf, golden, "the wire format is a frozen contract; bump docs/SERVE.md to change it");
}

#[test]
fn golden_batch_request_bytes() {
    // Byte-pin of the canonical Batch frame body with per-item mask
    // tags: router "csa", item 0 = CommSet{4 leaves, (0,3)} unmasked,
    // item 1 = the same set under a mask killing switch 1.
    let mut buf = Vec::new();
    let set = CommSet::from_pairs(4, &[(0, 3)]);
    let topo = CstTopology::with_leaves(4);
    let mut mask = FaultMask::empty(&topo);
    assert!(mask.kill_switch(NodeId(1)));
    encode_batch_masked_request(&mut buf, "csa", &[(set.clone(), None), (set, Some(mask))]);
    #[rustfmt::skip]
    let golden: Vec<u8> = vec![
        0x02,                                           // kind = Batch
        0x03, 0x00, 0x00, 0x00, b'c', b's', b'a',       // router
        0x02, 0x00, 0x00, 0x00,                         // 2 items
        // item 0: the set, unmasked
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // num_leaves = 4
        0x01, 0x00, 0x00, 0x00,                         // 1 pair
        0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, // (0, 3)
        0x00,                                           // mask tag = none
        // item 1: the same set, masked
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // num_leaves = 4
        0x01, 0x00, 0x00, 0x00,                         // 1 pair
        0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, // (0, 3)
        0x01,                                           // mask tag = present
        0x01, 0x00, 0x00, 0x00,                         // 1 dead switch
        0x01, 0x00, 0x00, 0x00,                         //   node 1
        0x00, 0x00, 0x00, 0x00,                         // 0 dead links
        0x00, 0x00, 0x00, 0x00,                         // 0 degraded edges
    ];
    assert_eq!(buf, golden, "the wire format is a frozen contract; bump docs/SERVE.md to change it");
}

#[test]
fn masked_batch_requests_round_trip() {
    let mut buf = Vec::new();
    let items =
        vec![(sample_set(), None), (sample_set(), Some(sample_mask())), (sample_set(), None)];
    encode_batch_masked_request(&mut buf, "greedy", &items);
    match decode_request(&buf).expect("masked batch decodes") {
        Request::Batch { router, items: decoded } => {
            assert_eq!(router, "greedy");
            assert_eq!(decoded.len(), items.len());
            for ((s1, m1), (s2, m2)) in items.iter().zip(&decoded) {
                assert_eq!(s1, s2);
                assert_eq!(
                    m1.as_ref().map(FaultMask::fingerprint),
                    m2.as_ref().map(FaultMask::fingerprint)
                );
            }
        }
        other => panic!("expected Batch, got {other:?}"),
    }
}

#[test]
fn hostile_batch_mask_tags_are_typed_errors() {
    // A mask tag outside {0, 1} on any item must be a typed decode
    // error, and the serving core must answer it with an error frame.
    let mut buf = Vec::new();
    encode_batch_masked_request(&mut buf, "csa", &[(sample_set(), None)]);
    let tag_pos = buf.len() - 1;
    assert_eq!(buf[tag_pos], 0);
    buf[tag_pos] = 2;
    assert!(decode_request(&buf).is_err(), "mask tag 2 must not decode");

    let shared = Arc::new(ServeShared::new(ServeConfig::default()));
    let mut core = WorkerCore::new(shared);
    let mut out = Vec::new();
    core.handle_frame(&buf, &mut out);
    match decode_response(&out) {
        Ok(Response::Error(e)) => assert!(!e.message.is_empty()),
        other => panic!("expected a typed error frame, got {other:?}"),
    }
}

#[test]
fn every_truncated_prefix_is_a_typed_error_never_a_panic() {
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    let mut buf = Vec::new();
    encode_route_request(&mut buf, "csa", &sample_set(), Some(&sample_mask()));
    bodies.push(buf.clone());
    encode_batch_request(&mut buf, "csa", &[sample_set(), sample_set()]);
    bodies.push(buf.clone());
    encode_batch_masked_request(&mut buf, "csa", &[(sample_set(), Some(sample_mask()))]);
    bodies.push(buf.clone());
    encode_stats_request(&mut buf);
    bodies.push(buf.clone());
    for body in &bodies {
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "strict prefix of length {cut} must fail to decode"
            );
        }
        assert!(decode_request(body).is_ok());
    }

    let payload: Arc<[u8]> = Arc::from(&b"xyz"[..]);
    let mut resp_bodies: Vec<Vec<u8>> = Vec::new();
    encode_route_response(&mut buf, false, &payload);
    resp_bodies.push(buf.clone());
    encode_batch_response(&mut buf, &[Ok((true, payload)), Err(sample_error())]);
    resp_bodies.push(buf.clone());
    encode_error_response(&mut buf, &sample_error());
    resp_bodies.push(buf.clone());
    for body in &resp_bodies {
        for cut in 0..body.len() {
            assert!(decode_response(&body[..cut]).is_err());
        }
        assert!(decode_response(body).is_ok());
    }

    // Stats is the one versioned frame: exactly one strict prefix — the
    // cut at the legacy (minor-0) boundary — is a *valid* frame by
    // design. Every other prefix must still fail.
    let stats = sample_stats();
    encode_stats_response(&mut buf, &stats);
    let legacy_len = buf.len() - stats_extension_len(&stats);
    for cut in 0..buf.len() {
        if cut == legacy_len {
            assert!(
                decode_response(&buf[..cut]).is_ok(),
                "the legacy-boundary prefix is a valid minor-0 frame"
            );
        } else {
            assert!(
                decode_response(&buf[..cut]).is_err(),
                "stats prefix of length {cut} must fail to decode"
            );
        }
    }
    assert!(decode_response(&buf).is_ok());
}

#[test]
fn legacy_minor0_stats_frames_decode_with_new_counters_zeroed() {
    // A minor-0 peer stops writing at the legacy boundary. Decoding its
    // frame must succeed and leave every extension field at zero.
    let stats = sample_stats();
    let mut buf = Vec::new();
    encode_stats_response(&mut buf, &stats);
    buf.truncate(buf.len() - stats_extension_len(&stats));
    match decode_response(&buf).expect("legacy stats frame decodes") {
        Response::Stats(decoded) => {
            let mut expected = stats.clone();
            expected.computations = 0;
            expected.singleflight_leaders = 0;
            expected.coalesced_waits = 0;
            expected.cache.tier_hits = 0;
            for s in &mut expected.shards {
                s.tier_hits = 0;
            }
            assert_eq!(decoded, expected);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
}

#[test]
fn explicit_zero_stats_minor_tag_is_malformed() {
    // Minor 0 is expressed by *absence* (the legacy boundary); a frame
    // that writes a 0 tag byte is lying about its version.
    let stats = sample_stats();
    let mut buf = Vec::new();
    encode_stats_response(&mut buf, &stats);
    let legacy_len = buf.len() - stats_extension_len(&stats);
    assert_eq!(buf[legacy_len], STATS_MINOR);
    buf[legacy_len] = 0;
    assert!(decode_response(&buf).is_err());
}

#[test]
fn future_stats_minors_decode_their_known_prefix() {
    // A newer peer bumps the minor tag and appends fields we do not
    // know. The decoder must read the minor-1 fields it understands and
    // skip the rest.
    let stats = sample_stats();
    let mut buf = Vec::new();
    encode_stats_response(&mut buf, &stats);
    let legacy_len = buf.len() - stats_extension_len(&stats);
    buf[legacy_len] = STATS_MINOR + 1;
    buf.extend_from_slice(&0xdead_beef_u64.to_le_bytes()); // hypothetical minor-2 field
    match decode_response(&buf).expect("future-minor stats frame decodes") {
        Response::Stats(decoded) => assert_eq!(decoded, stats),
        other => panic!("expected Stats, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut buf = Vec::new();
    encode_reset_request(&mut buf);
    buf.push(0xAB);
    assert!(decode_request(&buf).is_err(), "a valid body plus trailing bytes must not decode");
}

#[test]
fn oversized_and_truncated_frames_are_typed_io_errors() {
    // A header claiming more than the cap is refused before any
    // allocation — including the hostile u32::MAX length.
    for claimed in [1025u32, u32::MAX] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&claimed.to_le_bytes());
        let mut body = Vec::new();
        match read_frame(&mut wire.as_slice(), &mut body, 1024) {
            Err(FrameError::Oversize { len, max }) => {
                assert_eq!(len, claimed as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    // A frame cut off mid-body surfaces as UnexpectedEof, not a hang or
    // a panic.
    let mut wire = Vec::new();
    write_frame(&mut wire, b"hello world").expect("write");
    wire.truncate(wire.len() - 3);
    let mut body = Vec::new();
    match read_frame(&mut wire.as_slice(), &mut body, DEFAULT_MAX_FRAME) {
        Err(FrameError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected io error, got {other:?}"),
    }

    // Clean EOF at a frame boundary reads as `Ok(false)`.
    let mut empty: &[u8] = &[];
    assert!(!read_frame(&mut empty, &mut body, DEFAULT_MAX_FRAME).expect("clean eof"));

    // And an intact frame round-trips through the stream form.
    let mut wire = Vec::new();
    write_frame(&mut wire, b"hello world").expect("write");
    assert!(read_frame(&mut wire.as_slice(), &mut body, DEFAULT_MAX_FRAME).expect("read"));
    assert_eq!(body, b"hello world");
}

#[test]
fn worker_core_answers_hostile_bytes_with_typed_error_frames() {
    let shared = Arc::new(ServeShared::new(ServeConfig::default()));
    let mut core = WorkerCore::new(shared);
    let mut out = Vec::new();
    let hostile: Vec<Vec<u8>> = vec![
        vec![],                                  // empty body
        vec![0x7F],                              // unknown request kind
        vec![0x01, 0xFF, 0xFF, 0xFF, 0xFF],      // router length = u32::MAX
        vec![0x01, 0x03, 0x00, 0x00, 0x00],      // router bytes missing
        {
            // Valid route request for a set that fails validation
            // (self-communication 2 -> 2).
            let mut buf = Vec::new();
            buf.push(0x01);
            buf.extend_from_slice(&3u32.to_le_bytes());
            buf.extend_from_slice(b"csa");
            buf.extend_from_slice(&8u64.to_le_bytes());
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.push(0);
            buf
        },
    ];
    for (i, body) in hostile.iter().enumerate() {
        core.handle_frame(body, &mut out);
        match decode_response(&out) {
            Ok(Response::Error(e)) => {
                assert!(!e.message.is_empty(), "case {i}: error frames carry a message")
            }
            other => panic!("case {i}: expected a typed error frame, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Seeded random well-nested sets round-trip through the Route
    /// request encoding at every size.
    #[test]
    fn random_route_requests_round_trip(seed in 0u64..1_000_000, n_exp in 2u32..=8) {
        let n = 1usize << n_exp;
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
        let mut buf = Vec::new();
        encode_route_request(&mut buf, "csa-parallel", &set, None);
        match decode_request(&buf) {
            Ok(Request::Route { router, set: decoded, mask: None }) => {
                prop_assert_eq!(router, "csa-parallel");
                prop_assert_eq!(decoded, set);
            }
            other => prop_assert!(false, "unexpected decode: {:?}", other),
        }
    }

    /// Arbitrary byte soup never panics the request decoder; it decodes
    /// or it returns a typed `WireError`.
    #[test]
    fn decoders_never_panic_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255u8, 256),
        len in 0usize..=256,
    ) {
        let soup = &bytes[..len];
        let _ = decode_request(soup);
        let _ = decode_response(soup);
        let _ = decode_payload(soup);
    }
}
