//! Exhaustive validation on *every* well-nested pattern over a small
//! tree: no sampling, no seeds — the full space.
//!
//! 1. **Exact optimality**: CSA rounds == the conflict graph's true
//!    chromatic number (computed by brute force) == the width. This is
//!    stronger than checking `rounds == width`: it certifies the width
//!    bound itself is tight on every instance.
//! 2. **Implementation agreement**: the serial driver, the parallel
//!    driver, the RTL machine and the event-driven simulator produce
//!    identical schedules on every instance.

use cst::comm::{from_paren_string, width_on_topology, CommSet};
use cst::core::{Circuit, CstTopology};

/// Enumerate every pattern of '(', ')', '.' of length `n` that parses as
/// a balanced, non-empty set.
fn all_patterns(n: usize) -> Vec<CommSet> {
    let mut out = Vec::new();
    let symbols = ['(', ')', '.'];
    let mut pattern = vec!['.'; n];
    fn rec(
        pattern: &mut Vec<char>,
        pos: usize,
        depth: usize,
        symbols: &[char; 3],
        out: &mut Vec<CommSet>,
    ) {
        let n = pattern.len();
        if pos == n {
            if depth == 0 {
                let s: String = pattern.iter().collect();
                if let Ok(set) = from_paren_string(&s) {
                    if !set.is_empty() {
                        out.push(set);
                    }
                }
            }
            return;
        }
        for &ch in symbols {
            match ch {
                '(' if depth < n - pos - 1 => {
                    pattern[pos] = '(';
                    rec(pattern, pos + 1, depth + 1, symbols, out);
                }
                ')' if depth > 0 => {
                    pattern[pos] = ')';
                    rec(pattern, pos + 1, depth - 1, symbols, out);
                }
                '.' => {
                    pattern[pos] = '.';
                    rec(pattern, pos + 1, depth, symbols, out);
                }
                _ => {}
            }
            pattern[pos] = '.';
        }
    }
    rec(&mut pattern, 0, 0, &symbols, &mut out);
    out
}

/// Exact chromatic number of the conflict graph (comms sharing a
/// directed link conflict) by branch-and-bound over k = 1..M.
fn chromatic_number(topo: &CstTopology, set: &CommSet) -> usize {
    let m = set.len();
    let circuits: Vec<Circuit> = set
        .comms()
        .iter()
        .map(|c| Circuit::between(topo, c.source, c.dest))
        .collect();
    let mut conflict = vec![vec![false; m]; m];
    for i in 0..m {
        let links: std::collections::HashSet<_> = circuits[i].links.iter().collect();
        for j in i + 1..m {
            if circuits[j].links.iter().any(|l| links.contains(l)) {
                conflict[i][j] = true;
                conflict[j][i] = true;
            }
        }
    }
    fn colorable(
        conflict: &[Vec<bool>],
        colors: &mut Vec<usize>,
        v: usize,
        k: usize,
    ) -> bool {
        if v == conflict.len() {
            return true;
        }
        for c in 0..k {
            if (0..v).all(|u| !conflict[v][u] || colors[u] != c) {
                colors[v] = c;
                if colorable(conflict, colors, v + 1, k) {
                    return true;
                }
            }
        }
        false
    }
    for k in 1..=m {
        let mut colors = vec![usize::MAX; m];
        if colorable(&conflict, &mut colors, 0, k) {
            return k;
        }
    }
    m
}

#[test]
fn exhaustive_8_leaves_optimality_and_agreement() {
    let topo = CstTopology::with_leaves(8);
    let sets = all_patterns(8);
    let mut ctx = cst::engine::EngineCtx::new();
    let threaded4 = cst::engine::CsaParallel { threads: 4 };
    assert!(sets.len() > 300, "expected a substantial space, got {}", sets.len());
    let mut max_width_seen = 0;
    for set in &sets {
        let w = width_on_topology(&topo, set) as usize;
        max_width_seen = max_width_seen.max(w);

        // exact optimality
        let chi = chromatic_number(&topo, set);
        assert_eq!(chi, w, "width is the exact chromatic number: {set:?}");

        // serial CSA
        let serial = ctx.route_named("csa", &topo, set).unwrap();
        assert_eq!(serial.rounds, w, "CSA meets the exact optimum: {set:?}");
        serial.schedule.verify(&topo, set).unwrap();

        // parallel driver agrees
        let parallel = ctx.route(&threaded4, &topo, set).unwrap();
        assert_eq!(parallel.schedule, serial.schedule, "parallel drift: {set:?}");
        ctx.recycle(parallel);

        // RTL machine agrees
        let mut rtl = cst::sim::RtlMachine::new(&topo, set);
        let rtl_schedule = rtl.run_to_completion(set).unwrap();
        assert_eq!(rtl_schedule, serial.schedule, "rtl drift: {set:?}");

        // event-driven simulator agrees and delivers everything
        let sim = cst::sim::simulate(&topo, set, None).unwrap();
        assert_eq!(sim.schedule, serial.schedule, "sim drift: {set:?}");
        assert_eq!(sim.deliveries.len(), set.len());
        ctx.recycle(serial);
    }
    assert_eq!(max_width_seen, 4, "the space includes full-width instances");
    println!("validated {} sets exhaustively", sets.len());
}

#[test]
fn exhaustive_width_equals_chromatic_on_10_leaf_sample() {
    // 10-leaf space is large; check the full-pairing subspace (no dots):
    // every balanced parenthesization of 10 positions (Catalan(5) = 42).
    let topo = CstTopology::with_leaves(16);
    let mut count = 0;
    fn gen(cur: &mut String, open: usize, close: usize, n: usize, out: &mut Vec<String>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        if open < n / 2 {
            cur.push('(');
            gen(cur, open + 1, close, n, out);
            cur.pop();
        }
        if close < open {
            cur.push(')');
            gen(cur, open, close + 1, n, out);
            cur.pop();
        }
    }
    let mut patterns = Vec::new();
    gen(&mut String::new(), 0, 0, 10, &mut patterns);
    assert_eq!(patterns.len(), 42);
    let mut ctx = cst::engine::EngineCtx::new();
    for p in patterns {
        let padded = format!("{p}......");
        let set = from_paren_string(&padded).unwrap();
        let w = width_on_topology(&topo, &set) as usize;
        assert_eq!(chromatic_number(&topo, &set), w);
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        assert_eq!(out.rounds, w);
        ctx.recycle(out);
        count += 1;
    }
    assert_eq!(count, 42);
}
