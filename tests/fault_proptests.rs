//! Property-based tests for the fault-injection subsystem (`cst-faults`).
//!
//! Strategy: random well-nested sets (the same Dyck-word construction as
//! `tests/proptests.rs`) paired with random seeded [`FaultMask`]s, then
//! the degradation invariants the workspace promises:
//!
//! * conservation — every communication is either routed or dropped;
//! * honesty — dropped comms really are blocked by the mask, routed
//!   comms really are not, and no emitted round ever drives masked
//!   hardware (audited by `cst-check`'s fault pass);
//! * transparency — an empty mask produces byte-identical schedules to
//!   the fault-free path for every registry router.

use cst::check::{analyze_with_faults, CheckOptions};
use cst::comm::{from_paren_string, CommSet};
use cst::core::{CstTopology, FaultMask};
use cst::engine::{EngineCtx, CANONICAL};
use cst::faults::sample_mask;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random balanced-paren pattern over `n` positions (shared construction
/// with `tests/proptests.rs`): a vector of moves with the stack
/// discipline enforced inline, so every sample is a valid word.
fn paren_pattern(n: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..3, n).prop_map(move |choices| {
        let mut out = String::with_capacity(n);
        let mut depth = 0usize;
        for (i, c) in choices.into_iter().enumerate() {
            let left_after = n - i - 1;
            if depth > left_after {
                out.push(')');
                depth -= 1;
            } else {
                match c {
                    0 if depth < left_after => {
                        out.push('(');
                        depth += 1;
                    }
                    1 if depth > 0 => {
                        out.push(')');
                        depth -= 1;
                    }
                    _ => out.push('.'),
                }
            }
        }
        out
    })
}

fn valid_set(pattern: &str) -> Option<CommSet> {
    from_paren_string(pattern).ok().filter(|s| !s.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and honesty under random masks, for a spread of
    /// routers: `routed + dropped == |set|`, the drop partition agrees
    /// with the exact per-communication reachability oracle, the
    /// surviving schedule covers exactly the non-dropped ids, and the
    /// full `cst-check` fault audit finds nothing.
    #[test]
    fn masked_routing_is_conservative_and_clean(
        pattern in paren_pattern(32),
        seed in 0u64..u64::MAX,
        rate in 0.0f64..0.25,
    ) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mask = sample_mask(&mut StdRng::seed_from_u64(seed), &topo, rate);
        let mut ctx = EngineCtx::new();
        for name in ["csa", "greedy", "roy", "sequential"] {
            let out = ctx.route_named_masked(name, &topo, &set, &mask).unwrap();
            let report = out.degradation.as_ref().expect("masked route reports");
            prop_assert_eq!(report.total, set.len(), "{}", name);
            prop_assert_eq!(
                report.routed + report.dropped, set.len(),
                "{} leaks communications", name
            );

            // Drop honesty against the exact oracle.
            let dropped: Vec<usize> = report.drops.iter().map(|d| d.comm).collect();
            for (id, c) in set.iter() {
                let blocked = mask.blocking_fault(&topo, c.source, c.dest).is_some();
                prop_assert_eq!(
                    blocked, dropped.contains(&id.0),
                    "{}: comm {} oracle/partition disagreement", name, id.0
                );
            }

            // Exact coverage: scheduled ids == survivors, each once.
            let mut ids: Vec<usize> =
                out.schedule.scheduled_ids().map(|c| c.0).collect();
            ids.sort_unstable();
            let expect: Vec<usize> =
                (0..set.len()).filter(|i| !dropped.contains(i)).collect();
            prop_assert_eq!(ids, expect, "{} coverage drift", name);

            // And the analyzer's fault pass agrees end to end (no masked
            // hardware used, no half-duplex violation, no bogus drop).
            let audit = analyze_with_faults(
                &topo, &set, &out.schedule, &CheckOptions::lenient(), &mask, &dropped,
            );
            prop_assert!(
                audit.is_clean(),
                "{} failed fault audit: {:?}", name, audit.diagnostics
            );
            ctx.recycle(out);
        }
    }

    /// A saturated mask (every switch dead) drops every communication:
    /// no router may emit a single round.
    #[test]
    fn full_mask_drops_everything(pattern in paren_pattern(32), seed in 0u64..u64::MAX) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mask = sample_mask(&mut StdRng::seed_from_u64(seed), &topo, 1.0);
        let out = cst::engine::route_once_masked("csa", &topo, &set, &mask).unwrap();
        let report = out.degradation.as_ref().unwrap();
        prop_assert_eq!(report.dropped, set.len());
        prop_assert_eq!(report.routed, 0);
        prop_assert_eq!(out.rounds, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault transparency: with an empty mask, `route_masked` produces a
    /// byte-identical schedule to the plain fault-free path for every
    /// canonical registry router, and reports a clean degradation.
    #[test]
    fn empty_mask_is_byte_identical_for_every_router(pattern in paren_pattern(32)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mask = FaultMask::empty(&topo);
        let mut ctx = EngineCtx::new();
        for name in CANONICAL {
            let plain = ctx.route_named(name, &topo, &set).unwrap();
            let masked = ctx.route_named_masked(name, &topo, &set, &mask).unwrap();
            let a = serde_json::to_string(&plain.schedule).unwrap();
            let b = serde_json::to_string(&masked.schedule).unwrap();
            prop_assert_eq!(a, b, "{} schedule drifted under the empty mask", name);
            let report = masked.degradation.as_ref().unwrap();
            prop_assert!(report.is_clean(), "{} reported degradation", name);
            prop_assert_eq!(report.total, set.len());
            ctx.recycle(plain);
            ctx.recycle(masked);
        }
    }
}
