//! Cross-scheduler integration: every scheduler agrees on *what* is
//! communicated (the set), differs only in *when* (the partition), and
//! the power ordering matches the paper's story.

use cst::baseline::{greedy, roy, sequential, LevelOrder, ScanOrder};
use cst::comm::{width_on_topology, Schedule};
use cst::core::CstTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn scheduled_ids(s: &Schedule) -> BTreeSet<usize> {
    s.scheduled_ids().map(|c| c.0).collect()
}

#[test]
fn all_schedulers_cover_the_same_set() {
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
        let expect: BTreeSet<usize> = (0..set.len()).collect();

        let csa = cst::padr::schedule(&topo, &set).unwrap();
        assert_eq!(scheduled_ids(&csa.schedule), expect);

        let r = roy::schedule(&topo, &set, LevelOrder::InnermostFirst).unwrap();
        assert_eq!(scheduled_ids(&r.schedule), expect);

        for order in [
            ScanOrder::OutermostFirst,
            ScanOrder::InnermostFirst,
            ScanOrder::InputOrder,
        ] {
            let g = greedy::schedule(&topo, &set, order).unwrap();
            assert_eq!(scheduled_ids(&g.schedule), expect);
        }

        let s = sequential::schedule(&topo, &set).unwrap();
        assert_eq!(scheduled_ids(&s), expect);
    }
}

#[test]
fn round_count_ordering() {
    // CSA == width <= roy <= sequential; greedy outermost == width on all
    // tested inputs.
    let n = 512;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed + 50);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.8);
        let w = width_on_topology(&topo, &set) as usize;
        let csa = cst::padr::schedule(&topo, &set).unwrap();
        let r = roy::schedule(&topo, &set, LevelOrder::InnermostFirst).unwrap();
        let g = greedy::schedule(&topo, &set, ScanOrder::OutermostFirst).unwrap();
        let s = sequential::schedule(&topo, &set).unwrap();
        assert_eq!(csa.rounds(), w);
        assert_eq!(g.schedule.num_rounds(), w, "greedy outermost meets width");
        assert!(r.schedule.num_rounds() >= w);
        assert!(r.schedule.num_rounds() <= s.num_rounds());
    }
}

#[test]
fn power_story_holds_per_switch() {
    // The headline numbers: CSA per-switch hold cost is a small constant;
    // the Roy-style protocol's per-switch write-through cost tracks the
    // width.
    let n = 512;
    let topo = CstTopology::with_leaves(n);
    for w in [8usize, 64] {
        let mut rng = StdRng::seed_from_u64(w as u64);
        let set = cst::workloads::with_width(&mut rng, n, w, 0.5);
        let csa = cst::padr::schedule(&topo, &set).unwrap();
        assert!(csa.power.max_units <= 9, "w={w}: csa max {}", csa.power.max_units);
        let r = roy::schedule(&topo, &set, LevelOrder::InnermostFirst).unwrap();
        let rep = r.schedule.meter_power(&topo).report(&topo);
        assert!(
            rep.max_writethrough_units as usize >= w,
            "w={w}: roy wt max {}",
            rep.max_writethrough_units
        );
    }
}

#[test]
fn csa_equals_greedy_outermost_partition() {
    // The CSA is the distributed realization of outermost-first greedy;
    // their round partitions must coincide.
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed + 200);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
        if set.is_empty() {
            continue;
        }
        let csa = cst::padr::schedule(&topo, &set).unwrap();
        let g = greedy::schedule(&topo, &set, ScanOrder::OutermostFirst).unwrap();
        assert_eq!(csa.schedule.num_rounds(), g.schedule.num_rounds(), "seed {seed}");
        for (a, b) in csa.schedule.rounds.iter().zip(&g.schedule.rounds) {
            assert_eq!(a.comms, b.comms, "seed {seed}");
        }
    }
}
