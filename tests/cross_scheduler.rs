//! Cross-scheduler integration: every scheduler agrees on *what* is
//! communicated (the set), differs only in *when* (the partition), and
//! the power ordering matches the paper's story. All schedulers are
//! reached through the engine registry — the same dispatch surface the
//! CLI and benches use.

use cst::comm::{width_on_topology, Schedule};
use cst::core::{Circuit, CstTopology, MergedRound};
use cst::engine::{CsaParallel, EngineCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn scheduled_ids(s: &Schedule) -> BTreeSet<usize> {
    s.scheduled_ids().map(|c| c.0).collect()
}

#[test]
fn all_schedulers_cover_the_same_set() {
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
        let expect: BTreeSet<usize> = (0..set.len()).collect();

        for name in
            ["csa", "roy", "greedy", "greedy-innermost", "greedy-input", "sequential"]
        {
            let out = ctx.route_named(name, &topo, &set).unwrap();
            assert_eq!(scheduled_ids(&out.schedule), expect, "{name} seed={seed}");
            ctx.recycle(out);
        }
    }
}

#[test]
fn round_count_ordering() {
    // CSA == width <= roy <= sequential; greedy outermost == width on all
    // tested inputs.
    let n = 512;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed + 50);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.8);
        let w = width_on_topology(&topo, &set) as usize;
        let mut rounds = |name: &str| {
            let out = ctx.route_named(name, &topo, &set).unwrap();
            let r = out.rounds;
            ctx.recycle(out);
            r
        };
        assert_eq!(rounds("csa"), w);
        assert_eq!(rounds("greedy"), w, "greedy outermost meets width");
        let roy = rounds("roy");
        assert!(roy >= w);
        assert!(roy <= rounds("sequential"));
    }
}

#[test]
fn power_story_holds_per_switch() {
    // The headline numbers: CSA per-switch hold cost is a small constant;
    // the Roy-style protocol's per-switch write-through cost tracks the
    // width.
    let n = 512;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for w in [8usize, 64] {
        let mut rng = StdRng::seed_from_u64(w as u64);
        let set = cst::workloads::with_width(&mut rng, n, w, 0.5);
        let csa = ctx.route_named("csa", &topo, &set).unwrap();
        assert!(csa.power.max_units <= 9, "w={w}: csa max {}", csa.power.max_units);
        ctx.recycle(csa);
        let roy = ctx.route_named("roy", &topo, &set).unwrap();
        assert!(
            roy.power.max_writethrough_units as usize >= w,
            "w={w}: roy wt max {}",
            roy.power.max_writethrough_units
        );
        ctx.recycle(roy);
    }
}

#[test]
fn schedule_json_format_is_pinned() {
    // The on-disk format predates the flat-arena round representation and
    // must never drift: switch configurations serialize as a JSON map from
    // decimal heap index to configuration, keys ascending.
    let topo = CstTopology::with_leaves(4);
    let set = cst::comm::CommSet::from_pairs(4, &[(0, 3), (1, 2)]);
    let csa = cst::engine::route_once("csa", &topo, &set).unwrap();
    let json = serde_json::to_string(&csa.schedule).unwrap();
    // Round 1 holds the outer comm (0,3): root (node 1) turns it around
    // (l_i drives r_o), switch 2 forwards up (l_i drives p_o), switch 3
    // forwards down (p_i drives r_o). Pin the exact fragment.
    assert!(
        json.contains(
            r#""configs":{"1":{"driver":[null,"Left",null]},"2":{"driver":[null,null,"Left"]},"3":{"driver":[null,"Parent",null]}}"#
        ),
        "on-disk round format drifted: {json}"
    );
    // Round-trip must be lossless.
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back, csa.schedule);
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

#[test]
fn serial_parallel_and_arena_rebuilt_schedules_are_identical() {
    // The parallel CSA and the serial CSA must produce bit-identical
    // schedules, and re-merging each round's circuits through a scratch
    // MergedRound must reproduce the recorded configurations exactly —
    // the arena path loses nothing relative to per-round reconstruction.
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    let parallel8 = CsaParallel { threads: 8 };
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed + 400);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
        let serial = ctx.route_named("csa", &topo, &set).unwrap();
        let parallel = ctx.route(&parallel8, &topo, &set).unwrap();
        assert_eq!(serial.schedule, parallel.schedule, "seed {seed}");
        assert_eq!(
            serde_json::to_string(&serial.schedule).unwrap(),
            serde_json::to_string(&parallel.schedule).unwrap(),
            "seed {seed}"
        );
        // Rebuild each round from its comms through the arena-backed
        // MergedRound and compare bit-for-bit.
        let mut merged = MergedRound::new(&topo);
        for round in &serial.schedule.rounds {
            merged.clear();
            for &id in &round.comms {
                let c = set.get(id).unwrap();
                merged.add(&Circuit::between(&topo, c.source, c.dest)).unwrap();
            }
            assert_eq!(merged.take_configs(), round.configs, "seed {seed}");
        }
        ctx.recycle(serial);
        ctx.recycle(parallel);
    }
}

#[test]
fn csa_equals_greedy_outermost_partition() {
    // The CSA is the distributed realization of outermost-first greedy;
    // their round partitions must coincide.
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed + 200);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
        if set.is_empty() {
            continue;
        }
        let csa = ctx.route_named("csa", &topo, &set).unwrap();
        let g = ctx.route_named("greedy", &topo, &set).unwrap();
        assert_eq!(csa.schedule.num_rounds(), g.schedule.num_rounds(), "seed {seed}");
        for (a, b) in csa.schedule.rounds.iter().zip(&g.schedule.rounds) {
            assert_eq!(a.comms, b.comms, "seed {seed}");
        }
        ctx.recycle(csa);
        ctx.recycle(g);
    }
}
