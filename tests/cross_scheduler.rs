//! Cross-scheduler integration: every scheduler agrees on *what* is
//! communicated (the set), differs only in *when* (the partition), and
//! the power ordering matches the paper's story.

use cst::baseline::{greedy, roy, sequential, LevelOrder, ScanOrder};
use cst::comm::{width_on_topology, Schedule};
use cst::core::{Circuit, CstTopology, MergedRound};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn scheduled_ids(s: &Schedule) -> BTreeSet<usize> {
    s.scheduled_ids().map(|c| c.0).collect()
}

#[test]
fn all_schedulers_cover_the_same_set() {
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
        let expect: BTreeSet<usize> = (0..set.len()).collect();

        let csa = cst::padr::schedule(&topo, &set).unwrap();
        assert_eq!(scheduled_ids(&csa.schedule), expect);

        let r = roy::schedule(&topo, &set, LevelOrder::InnermostFirst).unwrap();
        assert_eq!(scheduled_ids(&r.schedule), expect);

        for order in [
            ScanOrder::OutermostFirst,
            ScanOrder::InnermostFirst,
            ScanOrder::InputOrder,
        ] {
            let g = greedy::schedule(&topo, &set, order).unwrap();
            assert_eq!(scheduled_ids(&g.schedule), expect);
        }

        let s = sequential::schedule(&topo, &set).unwrap();
        assert_eq!(scheduled_ids(&s), expect);
    }
}

#[test]
fn round_count_ordering() {
    // CSA == width <= roy <= sequential; greedy outermost == width on all
    // tested inputs.
    let n = 512;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed + 50);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.8);
        let w = width_on_topology(&topo, &set) as usize;
        let csa = cst::padr::schedule(&topo, &set).unwrap();
        let r = roy::schedule(&topo, &set, LevelOrder::InnermostFirst).unwrap();
        let g = greedy::schedule(&topo, &set, ScanOrder::OutermostFirst).unwrap();
        let s = sequential::schedule(&topo, &set).unwrap();
        assert_eq!(csa.rounds(), w);
        assert_eq!(g.schedule.num_rounds(), w, "greedy outermost meets width");
        assert!(r.schedule.num_rounds() >= w);
        assert!(r.schedule.num_rounds() <= s.num_rounds());
    }
}

#[test]
fn power_story_holds_per_switch() {
    // The headline numbers: CSA per-switch hold cost is a small constant;
    // the Roy-style protocol's per-switch write-through cost tracks the
    // width.
    let n = 512;
    let topo = CstTopology::with_leaves(n);
    for w in [8usize, 64] {
        let mut rng = StdRng::seed_from_u64(w as u64);
        let set = cst::workloads::with_width(&mut rng, n, w, 0.5);
        let csa = cst::padr::schedule(&topo, &set).unwrap();
        assert!(csa.power.max_units <= 9, "w={w}: csa max {}", csa.power.max_units);
        let r = roy::schedule(&topo, &set, LevelOrder::InnermostFirst).unwrap();
        let rep = r.schedule.meter_power(&topo).report(&topo);
        assert!(
            rep.max_writethrough_units as usize >= w,
            "w={w}: roy wt max {}",
            rep.max_writethrough_units
        );
    }
}

#[test]
fn schedule_json_format_is_pinned() {
    // The on-disk format predates the flat-arena round representation and
    // must never drift: switch configurations serialize as a JSON map from
    // decimal heap index to configuration, keys ascending.
    let topo = CstTopology::with_leaves(4);
    let set = cst::comm::CommSet::from_pairs(4, &[(0, 3), (1, 2)]);
    let csa = cst::padr::schedule(&topo, &set).unwrap();
    let json = serde_json::to_string(&csa.schedule).unwrap();
    // Round 1 holds the outer comm (0,3): root (node 1) turns it around
    // (l_i drives r_o), switch 2 forwards up (l_i drives p_o), switch 3
    // forwards down (p_i drives r_o). Pin the exact fragment.
    assert!(
        json.contains(
            r#""configs":{"1":{"driver":[null,"Left",null]},"2":{"driver":[null,null,"Left"]},"3":{"driver":[null,"Parent",null]}}"#
        ),
        "on-disk round format drifted: {json}"
    );
    // Round-trip must be lossless.
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back, csa.schedule);
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

#[test]
fn serial_parallel_and_arena_rebuilt_schedules_are_identical() {
    // The parallel CSA and the serial CSA must produce bit-identical
    // schedules, and re-merging each round's circuits through a scratch
    // MergedRound must reproduce the recorded configurations exactly —
    // the arena path loses nothing relative to per-round reconstruction.
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed + 400);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
        let serial = cst::padr::schedule(&topo, &set).unwrap();
        let parallel = cst::padr::schedule_parallel(&topo, &set, 8).unwrap();
        assert_eq!(serial.schedule, parallel.schedule, "seed {seed}");
        assert_eq!(
            serde_json::to_string(&serial.schedule).unwrap(),
            serde_json::to_string(&parallel.schedule).unwrap(),
            "seed {seed}"
        );
        // Rebuild each round from its comms through the arena-backed
        // MergedRound and compare bit-for-bit.
        let mut merged = MergedRound::new(&topo);
        for round in &serial.schedule.rounds {
            merged.clear();
            for &id in &round.comms {
                let c = set.get(id).unwrap();
                merged.add(&Circuit::between(&topo, c.source, c.dest)).unwrap();
            }
            assert_eq!(merged.take_configs(), round.configs, "seed {seed}");
        }
    }
}

#[test]
fn csa_equals_greedy_outermost_partition() {
    // The CSA is the distributed realization of outermost-first greedy;
    // their round partitions must coincide.
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed + 200);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.7);
        if set.is_empty() {
            continue;
        }
        let csa = cst::padr::schedule(&topo, &set).unwrap();
        let g = greedy::schedule(&topo, &set, ScanOrder::OutermostFirst).unwrap();
        assert_eq!(csa.schedule.num_rounds(), g.schedule.num_rounds(), "seed {seed}");
        for (a, b) in csa.schedule.rounds.iter().zip(&g.schedule.rounds) {
            assert_eq!(a.comms, b.comms, "seed {seed}");
        }
    }
}
