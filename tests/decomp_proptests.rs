//! End-to-end gates for the layered decomposition front-end
//! (`cst-decomp`): layer counts against a brute-force minimum-coloring
//! oracle at small sizes, the certified lower bound at production sizes,
//! and full-stack composition audits — `cst-check`'s `CST3xx` pass plus
//! reference-model conformance of every sliced layer — across every
//! registered router.

use cst::core::{CstTopology, GeneralCommSet};
use cst::decomp::{decompose, slice_layer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Exact chromatic number of the conflict graph by branch-and-bound:
/// assign pairs in order, each to an existing color it doesn't conflict
/// with or to one fresh color (symmetry breaking). Exponential — only
/// for oracle duty at `m <= 12`.
fn brute_force_min_layers(set: &GeneralCommSet) -> usize {
    fn go(set: &GeneralCommSet, colors: &mut Vec<usize>, used: usize, best: &mut usize) {
        let i = colors.len();
        if used >= *best {
            return; // can't beat the incumbent
        }
        if i == set.len() {
            *best = used;
            return;
        }
        for c in 0..=used.min(*best - 1) {
            if c < used && (0..i).any(|j| colors[j] == c && set.conflicts(i, j)) {
                continue;
            }
            colors.push(c);
            go(set, colors, used.max(c + 1), best);
            colors.pop();
        }
    }
    if set.is_empty() {
        return 0;
    }
    let mut best = set.len();
    go(set, &mut Vec::with_capacity(set.len()), 0, &mut best);
    best
}

/// A random general set: `m` pairs over `n` leaves, arbitrary topology
/// (crossings and endpoint sharing both likely).
fn random_general(rng: &mut StdRng, n: usize, m: usize) -> GeneralCommSet {
    let mut set = GeneralCommSet::empty(n);
    let mut budget = 8 * m + 16;
    while set.len() < m && budget > 0 {
        budget -= 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = set.push(a, b);
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// At oracle sizes (`m <= 12 <= EXACT_LIMIT`) the decomposition's
    /// exact-refinement stage runs, so the layer count must equal the
    /// true chromatic number of the conflict graph — and the reported
    /// bound/optimality flags must be sound against it.
    #[test]
    fn small_decompositions_match_the_coloring_oracle(
        seed in 0u64..1_000_000,
        n in 4usize..=12,
        m in 1usize..=12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = random_general(&mut rng, n, m);
        if set.is_empty() {
            return Ok(());
        }
        let d = decompose(&set);
        let oracle = brute_force_min_layers(&set);
        prop_assert_eq!(
            d.num_layers(), oracle,
            "exact-range decomposition must be a minimum coloring"
        );
        prop_assert!(d.lower_bound <= oracle, "certificate must never exceed the optimum");
        prop_assert!(d.proven_optimal, "exact refinement proves optimality in range");
    }

    /// The clique certificate is sound at any size: the witness pairs
    /// are mutually conflicting, so no layering can use fewer layers.
    #[test]
    fn certificate_witness_is_a_real_clique(
        seed in 0u64..1_000_000,
        n in 8usize..=64,
        m in 2usize..=40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = random_general(&mut rng, n.max(m / 2 + 2), m);
        let d = decompose(&set);
        prop_assert_eq!(d.witness.len(), d.lower_bound);
        for (x, &i) in d.witness.iter().enumerate() {
            for &j in &d.witness[x + 1..] {
                prop_assert!(set.conflicts(i, j), "witness pairs {i},{j} must conflict");
            }
        }
        prop_assert!(d.lower_bound <= d.num_layers() || set.is_empty());
    }
}

#[test]
fn production_size_layering_stays_within_one_of_the_bound() {
    // The n=64 acceptance gate on the `cst-tools decomp` sweep
    // instances (fresh rng per request, seed = request index, families
    // cycling): the layering lands within lower_bound + 1 on every one
    // — the window the checked-in golden report locks in. The clique
    // certificate is not tight on *all* random inputs (circle graphs
    // can need more colors than their largest clique: bipartite
    // requests 14/20/26 are optimally layered yet sit at bound + 2),
    // so this gates the seeded production sweep, while the oracle
    // proptest above pins true minimality wherever exact search runs.
    let n = 64;
    for i in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(i);
        let (name, set) = match i % 3 {
            0 => ("matching", cst::workloads::arbitrary_permutation(&mut rng, n)),
            1 => ("hotspot", cst::workloads::hotspot(&mut rng, n, 24)),
            _ => ("bipartite", cst::workloads::random_bipartite(&mut rng, n, 24)),
        };
        let d = decompose(&set);
        assert!(
            d.num_layers() <= d.lower_bound + 1,
            "request {i} {name}: {} layers vs lower bound {}",
            d.num_layers(),
            d.lower_bound
        );
    }
}

#[test]
fn composed_schedules_audit_clean_for_every_registry_router() {
    // The full-stack gate: route an arbitrary set through *every*
    // registered router's layered path; the composite must pass the
    // CST3xx composition audit and every sliced layer must pass both
    // the static analyzer and the executable reference model.
    let n = 32;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xDEC0);
    let sets = [
        cst::workloads::arbitrary_permutation(&mut rng, n),
        cst::workloads::hotspot(&mut rng, n, 10),
        cst::workloads::random_bipartite(&mut rng, n, 16),
        random_general(&mut rng, n, 20),
    ];
    for router_name in cst::engine::names() {
        let router = cst::engine::find(router_name).unwrap();
        let mut ctx = cst::engine::EngineCtx::new();
        for (k, gset) in sets.iter().enumerate() {
            let out = ctx.route_general(router.as_ref(), &topo, gset).unwrap();
            let d = ctx.decomposition_for(gset);
            let report =
                cst::check::check_decomposition(&topo, gset, d, &out.schedule, &out.layer_rounds);
            assert!(
                report.is_clean(),
                "{router_name} set {k}: composition audit:\n{}",
                report.render_text()
            );
            let opts = if router_name == "csa" {
                cst::check::CheckOptions::strict()
            } else {
                cst::check::CheckOptions::lenient()
            };
            let mut offset = 0;
            for (j, layer_set) in d.layer_sets.iter().enumerate() {
                let layer = slice_layer(&out.schedule, offset, out.layer_rounds[j], &d.layers[j]);
                offset += out.layer_rounds[j];
                let static_report = cst::check::analyze(&topo, layer_set, &layer, &opts);
                assert!(
                    !static_report.has_errors(),
                    "{router_name} set {k} layer {j}: static analysis:\n{}",
                    static_report.render_text()
                );
                let model_report = cst::model::conform_schedule(layer_set, &layer, &[]);
                assert!(
                    model_report.is_clean(),
                    "{router_name} set {k} layer {j}: model conformance:\n{}",
                    model_report.render_text()
                );
            }
            ctx.recycle_general(out);
        }
    }
}

#[test]
fn already_well_nested_sets_decompose_to_one_layer() {
    // A right-oriented well-nested set has a conflict-free graph; the
    // front-end must pass it through as a single layer whose schedule
    // matches the direct (non-layered) route byte for byte.
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0x1A1E5);
    let wn = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
    let pairs: Vec<(usize, usize)> =
        wn.comms().iter().map(|c| (c.source.0, c.dest.0)).collect();
    let gset = GeneralCommSet::new(n, &pairs).unwrap();
    let d = decompose(&gset);
    assert_eq!(d.num_layers(), 1, "well-nested input must not be split");
    assert!(d.proven_optimal);

    let mut ctx = cst::engine::EngineCtx::new();
    let layered = ctx.route_general(&cst::engine::Csa, &topo, &gset).unwrap();
    let direct = cst::engine::route_once("csa", &topo, &wn).unwrap();
    assert_eq!(
        serde_json::to_string(&layered.schedule).unwrap(),
        serde_json::to_string(&direct.schedule).unwrap(),
        "single-layer composite must equal the direct schedule"
    );
    ctx.recycle_general(layered);
}
