//! Integration tests of the paper's three theorems over randomized sweeps
//! spanning all crates: workload generation → CSA scheduling → schedule
//! verification → power accounting.

use cst::comm::width_on_topology;
use cst::core::CstTopology;
use cst::engine::{EngineCtx, RouteExtra};
use cst::padr::{verify_outcome, CSA_PORT_TRANSITION_BOUND};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 4 + 5 + 8 on random well-nested sets across sizes and
/// densities.
#[test]
fn theorems_hold_on_random_workloads() {
    let mut ctx = EngineCtx::new();
    for n in [8usize, 16, 64, 256, 1024] {
        for density in [0.1, 0.5, 1.0] {
            for seed in 0..10u64 {
                let topo = CstTopology::with_leaves(n);
                let mut rng = StdRng::seed_from_u64(seed * 31 + n as u64);
                let set = cst::workloads::well_nested_with_density(&mut rng, n, density);
                if set.is_empty() {
                    continue;
                }
                let out = ctx
                    .route_named("csa", &topo, &set)
                    .unwrap_or_else(|e| panic!("CSA failed (n={n}, seed={seed}): {e}"))
                    .into_csa()
                    .expect("csa router carries CSA extras");
                let report = verify_outcome(&topo, &set, &out)
                    .unwrap_or_else(|e| panic!("verification failed (n={n}, seed={seed}): {e}"));
                assert_eq!(report.rounds as u32, report.width);
                assert!(report.max_port_transitions <= CSA_PORT_TRANSITION_BOUND);
            }
        }
    }
}

/// Theorem 8's constant is independent of the width: the observed maximum
/// per-switch transitions at w = 4 equals the maximum at w = 128.
#[test]
fn csa_cost_is_width_independent() {
    let n = 1024;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    let mut maxima = Vec::new();
    for w in [4usize, 16, 64, 128] {
        let mut worst = 0;
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let set = cst::workloads::with_width(&mut rng, n, w, 0.5);
            let out = ctx.route_named("csa", &topo, &set).unwrap();
            worst = worst.max(out.power.max_port_transitions);
            ctx.recycle(out);
        }
        maxima.push(worst);
    }
    // The observed maxima fluctuate with workload shape (3..=7 here) but
    // stay under the constant bound across a 32x width range — that
    // boundedness, not literal equality, is Theorem 8's claim.
    let hi = *maxima.iter().max().unwrap();
    assert!(
        hi <= CSA_PORT_TRANSITION_BOUND,
        "per-switch transitions exceeded the constant bound: {maxima:?}"
    );
    // And explicitly: no linear-in-w growth (w spans 4..128 = 32x).
    let lo = *maxima.iter().min().unwrap();
    assert!(
        hi < lo.max(1) * 8,
        "transitions look width-dependent: {maxima:?}"
    );
}

/// Theorem 5 on the workload families with special structure.
#[test]
fn rounds_equal_width_on_structured_families() {
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let cases: Vec<cst::comm::CommSet> = vec![
        cst::comm::examples::full_nest(n),
        cst::comm::examples::sibling_pairs(n),
        cst::workloads::segmented_bus(n, 16),
        cst::workloads::hierarchical_bus(n, 5),
        cst::workloads::staircase(n, n / 16),
    ];
    let mut ctx = EngineCtx::new();
    for set in cases {
        let w = width_on_topology(&topo, &set);
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        assert_eq!(out.rounds as u32, w);
        out.schedule.verify(&topo, &set).unwrap();
        ctx.recycle(out);
    }
}

/// The paper's scale claim: the constants do not move even at large N.
#[test]
fn large_instance_smoke() {
    let n = 8192;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(77);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.9);
    let out = cst::engine::route_once("csa", &topo, &set)
        .unwrap()
        .into_csa()
        .expect("csa router carries CSA extras");
    let report = verify_outcome(&topo, &set, &out).unwrap();
    assert!(report.max_port_transitions <= CSA_PORT_TRANSITION_BOUND);
    assert_eq!(out.metrics.words_stored_per_switch, 5);
}

/// Mixed-orientation sets via decomposition (paper §2.1).
#[test]
fn mixed_orientation_general_scheduling() {
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    let mut ctx = EngineCtx::new();
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed + 1000);
        // Build a mixed set: a right-oriented random set on the left half
        // positions and the mirror image on the right half.
        let right = cst::workloads::well_nested_set(&mut rng, n / 2, 10);
        let mut pairs: Vec<(usize, usize)> = right
            .comms()
            .iter()
            .map(|c| (c.source.0, c.dest.0))
            .collect();
        // mirrored (left-oriented) copies in the upper half
        pairs.extend(
            right
                .comms()
                .iter()
                .map(|c| (n - 1 - c.source.0, n - 1 - c.dest.0)),
        );
        let set = cst::comm::CommSet::from_pairs(n, &pairs);
        let out = ctx.route_named("general", &topo, &set).unwrap();
        out.schedule.verify(&topo, &set).unwrap();
        let &RouteExtra::General { right_rounds, left_rounds } = &out.extra else {
            panic!("general router carries half-rounds extras");
        };
        assert_eq!(out.rounds, right_rounds + left_rounds);
        ctx.recycle(out);
    }
}
