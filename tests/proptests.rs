//! Property-based tests (proptest) over the whole pipeline.
//!
//! Strategy: random Dyck words + random leaf placements generated *inside*
//! proptest (so shrinking works on the raw structure), then every invariant
//! the workspace promises.

use cst::comm::{from_paren_string, width_on_topology, CommSet};
use cst::core::CstTopology;
use proptest::prelude::*;

/// Generate a random balanced-paren pattern over `n` positions with up to
/// `n/2` pairs, as a proptest strategy that shrinks nicely.
fn paren_pattern(n: usize) -> impl Strategy<Value = String> {
    // A vector of "moves": push an open if possible, else dot; close if
    // stack non-empty. Encoded as u8 choices to keep shrinking simple.
    proptest::collection::vec(0u8..3, n).prop_map(move |choices| {
        // Single pass with the stack discipline enforced inline.
        // Invariant before position i: depth <= positions left (n - i),
        // so the word can always be completed; forced closes maintain it.
        let mut out = String::with_capacity(n);
        let mut depth = 0usize;
        for (i, c) in choices.into_iter().enumerate() {
            let left_after = n - i - 1;
            if depth > left_after {
                // must close now to stay completable
                out.push(')');
                depth -= 1;
            } else {
                match c {
                    0 if depth < left_after => {
                        out.push('(');
                        depth += 1;
                    }
                    1 if depth > 0 => {
                        out.push(')');
                        depth -= 1;
                    }
                    _ => out.push('.'),
                }
            }
        }
        debug_assert_eq!(depth, 0, "construction closes everything");
        out
    })
}

fn valid_set(pattern: &str) -> Option<CommSet> {
    from_paren_string(pattern).ok().filter(|s| !s.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated pattern round-trips and schedules correctly
    /// (Theorem 4), in exactly width rounds (Theorem 5), within the
    /// constant power bound (Theorem 8).
    #[test]
    fn csa_theorems(pattern in paren_pattern(64)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(64);
        let out = cst::engine::route_once("csa", &topo, &set)
            .expect("CSA must succeed")
            .into_csa()
            .expect("csa router carries CSA extras");
        let report = cst::padr::verify_outcome(&topo, &set, &out).expect("theorems");
        prop_assert_eq!(report.rounds as u32, report.width);
        prop_assert!(report.max_port_transitions <= cst::padr::CSA_PORT_TRANSITION_BOUND);
    }

    /// The Roy baseline and greedy schedulers always produce valid
    /// schedules, never beat the width lower bound, and the CSA never
    /// exceeds any of them in rounds.
    #[test]
    fn baselines_are_valid_and_bounded(pattern in paren_pattern(64)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(64);
        let w = width_on_topology(&topo, &set);
        let mut ctx = cst::engine::EngineCtx::new();
        for name in ["roy", "greedy", "greedy-input"] {
            let out = ctx.route_named(name, &topo, &set).unwrap();
            out.schedule.verify(&topo, &set).unwrap();
            prop_assert!(out.rounds as u32 >= w, "{}", name);
            ctx.recycle(out);
        }
        let csa = ctx.route_named("csa", &topo, &set).unwrap();
        prop_assert!(csa.rounds as u32 == w);
    }

    /// Simulator and host scheduler agree exactly: same rounds, same
    /// configurations, same power profile, all payloads delivered.
    #[test]
    fn simulator_matches_host(pattern in paren_pattern(32)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let host = cst::engine::route_once("csa", &topo, &set).unwrap();
        let sim = cst::sim::simulate(&topo, &set, None).unwrap();
        prop_assert_eq!(sim.schedule.num_rounds(), host.schedule.num_rounds());
        for (a, b) in sim.schedule.rounds.iter().zip(&host.schedule.rounds) {
            prop_assert_eq!(&a.comms, &b.comms);
            prop_assert_eq!(&a.configs, &b.configs);
        }
        prop_assert_eq!(sim.deliveries.len(), set.len());
    }

    /// Mirroring is an involution preserving well-nestedness and width.
    #[test]
    fn mirroring_involution(pattern in paren_pattern(64)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(64);
        let m = set.mirrored();
        prop_assert!(m.is_well_nested());
        prop_assert_eq!(m.mirrored(), set.clone());
        prop_assert_eq!(width_on_topology(&topo, &m), width_on_topology(&topo, &set));
    }

    /// Width is bounded above by nesting depth and below by 1 for
    /// non-empty sets; the CSA's schedule length matches the link bound,
    /// never the (possibly larger) depth.
    #[test]
    fn width_depth_relation(pattern in paren_pattern(64)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(64);
        let w = width_on_topology(&topo, &set);
        prop_assert!(w >= 1);
        prop_assert!(w <= set.max_nesting_depth());
    }
}
