//! Integration tests of the streaming front-end: the schedule cache
//! (keying, LRU eviction, stats) and the batch fan-out, asserting that a
//! cached outcome is byte-identical (serde) to a freshly scheduled one.

use cst::comm::CommSet;
use cst::core::{CstTopology, FaultMask, NodeId};
use cst::engine::{Csa, EngineCtx, RouteExtra};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serde bytes of a schedule — the strongest equality the workspace has.
fn bytes(s: &cst::comm::Schedule) -> String {
    serde_json::to_string(s).unwrap()
}

#[test]
fn cached_schedule_is_serde_identical_to_fresh() {
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0x57EA);
    for trial in 0..10 {
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
        let mut cached_ctx = EngineCtx::new();
        let miss = cached_ctx.route_cached(&Csa, &topo, &set).unwrap();
        let hit = cached_ctx.route_cached(&Csa, &topo, &set).unwrap();
        let mut fresh_ctx = EngineCtx::new();
        let fresh = fresh_ctx.route(&Csa, &topo, &set).unwrap();
        assert_eq!(bytes(&hit.schedule), bytes(&fresh.schedule), "trial {trial}");
        assert_eq!(bytes(&miss.schedule), bytes(&fresh.schedule), "trial {trial}");
        assert_eq!(hit.power, fresh.power, "trial {trial}");
        assert_eq!(hit.rounds, fresh.rounds, "trial {trial}");
        assert!(matches!(hit.extra, RouteExtra::Cached { .. }), "trial {trial}");
    }
}

#[test]
fn mask_flip_between_identical_requests_is_never_stale() {
    // Satellite regression: `route_masked_cached` must key on the mask —
    // flipping a mask on and off between identical requests must flip the
    // served schedule with it.
    let topo = CstTopology::with_leaves(32);
    let set = CommSet::from_pairs(32, &[(0, 15), (1, 14), (2, 13), (16, 31)]);
    let mut mask = FaultMask::empty(&topo);
    assert!(mask.kill_switch(NodeId(8)));

    let mut ctx = EngineCtx::new();
    let plain = ctx.route_cached(&Csa, &topo, &set).unwrap();
    for flip in 0..4 {
        let masked = ctx.route_masked_cached(&Csa, &topo, &set, &mask).unwrap();
        let replain = ctx.route_cached(&Csa, &topo, &set).unwrap();
        assert_ne!(
            bytes(&masked.schedule),
            bytes(&replain.schedule),
            "flip {flip}: masked and plain schedules must differ"
        );
        assert_eq!(bytes(&replain.schedule), bytes(&plain.schedule), "flip {flip}");
        assert!(
            masked.degradation.as_ref().unwrap().dropped > 0,
            "flip {flip}: the dead switch drops communications"
        );
        if flip > 0 {
            assert!(matches!(masked.extra, RouteExtra::Cached { .. }), "flip {flip}");
            assert!(matches!(replain.extra, RouteExtra::Cached { .. }), "flip {flip}");
        }
    }
    // Two distinct entries: one per (set, mask) key.
    let stats = ctx.cache_stats().unwrap();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.collisions, 0);
}

#[test]
fn different_masks_are_distinct_entries() {
    let topo = CstTopology::with_leaves(32);
    let set = CommSet::from_pairs(32, &[(0, 15), (1, 14), (16, 31)]);
    let mut m1 = FaultMask::empty(&topo);
    assert!(m1.kill_switch(NodeId(8)));
    let mut m2 = FaultMask::empty(&topo);
    assert!(m2.degrade_edge(NodeId(2)));

    let mut ctx = EngineCtx::new();
    let a1 = ctx.route_masked_cached(&Csa, &topo, &set, &m1).unwrap();
    let a2 = ctx.route_masked_cached(&Csa, &topo, &set, &m2).unwrap();
    let b1 = ctx.route_masked_cached(&Csa, &topo, &set, &m1).unwrap();
    let b2 = ctx.route_masked_cached(&Csa, &topo, &set, &m2).unwrap();
    assert_eq!(bytes(&a1.schedule), bytes(&b1.schedule));
    assert_eq!(bytes(&a2.schedule), bytes(&b2.schedule));
    assert_eq!(b1.degradation, a1.degradation);
    assert_eq!(b2.degradation, a2.degradation);
    assert_eq!(ctx.cache_stats().unwrap().entries, 2);
}

#[test]
fn batch_fans_out_in_input_order() {
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let uniques: Vec<CommSet> =
        (0..4).map(|_| cst::workloads::well_nested_with_density(&mut rng, n, 0.5)).collect();
    // Interleave duplicates: [0, 1, 0, 2, 1, 3, 0].
    let order = [0usize, 1, 0, 2, 1, 3, 0];
    let sets: Vec<CommSet> = order.iter().map(|&i| uniques[i].clone()).collect();

    let mut ctx = EngineCtx::new();
    let outs = ctx.route_batch(&Csa, &topo, &sets).unwrap();
    assert_eq!(outs.len(), order.len());

    // Each outcome matches a fresh route of its own input — order held.
    let mut fresh_ctx = EngineCtx::new();
    for (pos, (&u, out)) in order.iter().zip(&outs).enumerate() {
        let fresh = fresh_ctx.route(&Csa, &topo, &uniques[u]).unwrap();
        assert_eq!(bytes(&out.schedule), bytes(&fresh.schedule), "position {pos}");
        assert_eq!(out.power, fresh.power, "position {pos}");
    }
    // The scheduler ran once per unique set.
    assert_eq!(ctx.cache_stats().unwrap().misses, 4);
    // First occurrences routed, repeats fanned out as cached copies.
    let mut seen = std::collections::HashSet::new();
    for (&u, out) in order.iter().zip(&outs) {
        if seen.insert(u) {
            assert!(!matches!(out.extra, RouteExtra::Cached { .. }));
        } else {
            assert!(matches!(out.extra, RouteExtra::Cached { .. }));
        }
    }
}

#[test]
fn eviction_stats_track_a_tiny_cache() {
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xE71C);
    let sets: Vec<CommSet> =
        (0..4).map(|_| cst::workloads::well_nested_with_density(&mut rng, n, 0.5)).collect();

    let mut ctx = EngineCtx::new();
    ctx.enable_cache(2);
    // Fill: A, B resident. C evicts A (LRU). A again evicts B.
    for s in [&sets[0], &sets[1], &sets[2], &sets[0]] {
        let out = ctx.route_cached(&Csa, &topo, s).unwrap();
        ctx.recycle(out);
    }
    let stats = ctx.cache_stats().unwrap();
    assert_eq!(stats.misses, 4, "every request was a miss");
    assert_eq!(stats.evictions, 2, "capacity-2 cache evicted twice");
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.capacity, 2);
    // C is still resident (A evicted B, not C): hits.
    let out = ctx.route_cached(&Csa, &topo, &sets[2]).unwrap();
    assert!(matches!(out.extra, RouteExtra::Cached { .. }));
    ctx.recycle(out);
}
