//! Differential conformance: every trace emitter and every registry
//! router against the independent reference model (`cst-model`).
//!
//! The model re-derives the switch protocol from the paper with identity
//! lists and linear search — no shared code with `cst-padr` beyond the
//! neutral trace vocabulary — so agreement here means the implementation
//! and an independent reading of Definitions 1–2 / Lemmas 1–3 coincide,
//! on exhaustively-enumerated small sets and on random large ones.

use cst::comm::{from_paren_string, CommSet};
use cst::core::{CstTopology, ProtocolTrace};
use cst::engine::EngineCtx;
use cst::faults::sample_mask;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random balanced-paren pattern over `n` positions (shared construction
/// with `tests/proptests.rs`): a vector of moves with the stack
/// discipline enforced inline, so every sample is a valid word.
fn paren_pattern(n: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..3, n).prop_map(move |choices| {
        let mut out = String::with_capacity(n);
        let mut depth = 0usize;
        for (i, c) in choices.into_iter().enumerate() {
            let left_after = n - i - 1;
            if depth > left_after {
                out.push(')');
                depth -= 1;
            } else {
                match c {
                    0 if depth < left_after => {
                        out.push('(');
                        depth += 1;
                    }
                    1 if depth > 0 => {
                        out.push(')');
                        depth -= 1;
                    }
                    _ => out.push('.'),
                }
            }
        }
        out
    })
}

fn valid_set(pattern: &str) -> Option<CommSet> {
    from_paren_string(pattern).ok().filter(|s| !s.is_empty())
}

/// The exhaustive gate: every right-oriented well-nested set on 2, 4 and
/// 8 leaves (Motzkin enumeration — 2 + 9 + 323 sets), every reachable
/// protocol state, cross-checked transition-for-transition against
/// `switch_logic::step`.
#[test]
fn exhaustive_small_n_has_zero_divergences() {
    let report = cst::model::explore_all(8);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.sets, 334, "Motzkin counts changed?");
}

/// The three trace emitters on the paper's running example: host CSA,
/// event-driven simulator, RTL machine. One round-trip each.
#[test]
fn all_emitters_conform_on_the_paper_example() {
    let topo = CstTopology::with_leaves(8);
    let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]);
    let mut trace = ProtocolTrace::new();

    let mut scratch = cst::padr::CsaScratch::new();
    let mut pool = cst::comm::SchedulePool::new();
    scratch.schedule_traced(&topo, &set, &mut pool, &mut trace).unwrap();
    let report = cst::model::conform_trace(&set, &trace);
    assert!(report.is_clean(), "csa: {}", report.render_text());
    assert_eq!(trace.rounds.len(), 3, "Theorem 5: width-3 set takes 3 rounds");

    cst::sim::simulate_traced(&topo, &set, None, &mut trace).unwrap();
    let report = cst::model::conform_trace(&set, &trace);
    assert!(report.is_clean(), "sim: {}", report.render_text());

    cst::sim::RtlMachine::new(&topo, &set).run_to_completion_traced(&set, &mut trace).unwrap();
    let report = cst::model::conform_trace(&set, &trace);
    assert!(report.is_clean(), "rtl: {}", report.render_text());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Differential: a random routable set, scheduled by the host CSA
    /// with tracing on and executed on the simulator with tracing on —
    /// both wire records replay cleanly through the model.
    #[test]
    fn random_sets_trace_conformant(pattern in paren_pattern(32)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mut trace = ProtocolTrace::new();

        let mut scratch = cst::padr::CsaScratch::new();
        let mut pool = cst::comm::SchedulePool::new();
        scratch.schedule_traced(&topo, &set, &mut pool, &mut trace).unwrap();
        let report = cst::model::conform_trace(&set, &trace);
        prop_assert!(report.is_clean(), "csa: {}", report.render_text());

        cst::sim::simulate_traced(&topo, &set, None, &mut trace).unwrap();
        let report = cst::model::conform_trace(&set, &trace);
        prop_assert!(report.is_clean(), "sim: {}", report.render_text());
    }

    /// Every router in the registry — baselines and greedy variants
    /// included — produces a schedule the model's independent circuit
    /// computation accepts: each communication exactly once, no two
    /// circuits of a round sharing a directed link.
    #[test]
    fn every_registry_router_schedule_conforms(pattern in paren_pattern(32)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mut ctx = EngineCtx::new();
        for router in cst::engine::registry() {
            let out = ctx.route(router.as_ref(), &topo, &set).unwrap();
            let report = cst::model::conform_schedule(&set, &out.schedule, &[]);
            prop_assert!(
                report.is_clean(),
                "router {}: {}", router.name(), report.render_text()
            );
            ctx.recycle(out);
        }
    }

    /// Degradation-aware routing under a random fault mask: the surviving
    /// schedule conforms once the reported drops are allowed for, and the
    /// drop list is exactly the complement of the scheduled ids.
    #[test]
    fn masked_routing_conforms_with_drop_allowance(
        pattern in paren_pattern(32),
        seed in 0u64..u64::MAX,
        rate in 0.0f64..0.25,
    ) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mask = sample_mask(&mut StdRng::seed_from_u64(seed), &topo, rate);
        let mut ctx = EngineCtx::new();
        for name in ["csa", "greedy", "roy"] {
            let out = ctx.route_named_masked(name, &topo, &set, &mask).unwrap();
            let dropped: Vec<usize> = out
                .degradation
                .as_ref()
                .expect("masked route reports degradation")
                .drops
                .iter()
                .map(|d| d.comm)
                .collect();
            let report = cst::model::conform_schedule(&set, &out.schedule, &dropped);
            prop_assert!(
                report.is_clean(),
                "router {name}: {}", report.render_text()
            );
            ctx.recycle(out);
        }
    }
}
