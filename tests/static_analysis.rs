//! Clean-schedule guarantee: every schedule the workspace's generators
//! and schedulers produce must sail through the static analyzer with zero
//! diagnostics at the contract level the scheduler actually promises —
//! the acceptance criterion complementing the mutation harness (which
//! proves corrupted schedules do NOT pass).

use cst::check::{analyze, CheckOptions};
use cst::comm::examples;
use cst::core::CstTopology;
use cst::engine::{route_once, EngineCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn csa_outcomes_are_strictly_clean() {
    let mut ctx = EngineCtx::new();
    for n in [8usize, 32, 128] {
        let topo = CstTopology::with_leaves(n);
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.6);
            let out = ctx.route_named("csa", &topo, &set).unwrap();
            let report = analyze(&topo, &set, &out.schedule, &CheckOptions::strict());
            assert!(
                report.is_clean(),
                "CSA schedule flagged (n={n}, seed={seed}):\n{}",
                report.render_text()
            );
            ctx.recycle(out);
        }
    }
}

#[test]
fn csa_phase1_counters_are_clean() {
    let topo = CstTopology::with_leaves(64);
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let set = cst::workloads::well_nested_with_density(&mut rng, 64, 0.7);
        let p1 = cst::padr::phase1::run(&topo, &set).unwrap();
        cst::padr::verify_phase1(&topo, &set, &p1).unwrap();
    }
}

#[test]
fn paper_figures_are_strictly_clean() {
    for (n, set) in [
        (16, examples::paper_figure_2()),
        (16, examples::paper_figure_3b()),
        (32, examples::full_nest(32)),
        (32, examples::sibling_pairs(32)),
    ] {
        let topo = CstTopology::with_leaves(n);
        let out = route_once("csa", &topo, &set).unwrap();
        let report = analyze(&topo, &set, &out.schedule, &CheckOptions::strict());
        assert!(report.is_clean(), "{}", report.render_text());
    }
}

#[test]
fn greedy_outermost_meets_its_weaker_contract() {
    // Greedy promises correctness and width-many rounds, but neither the
    // per-switch selection order nor the O(1) transition budget.
    let options = CheckOptions {
        require_right_oriented: true,
        optimal_rounds: true,
        selection_order: false,
        transition_bound: None,
    };
    let topo = CstTopology::with_leaves(64);
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed + 200);
        let set = cst::workloads::well_nested_with_density(&mut rng, 64, 0.6);
        let out = route_once("greedy", &topo, &set).unwrap();
        let report = analyze(&topo, &set, &out.schedule, &options);
        assert!(report.is_clean(), "greedy (seed={seed}):\n{}", report.render_text());
    }
}

#[test]
fn roy_baseline_is_correct_under_lenient_analysis() {
    // Roy's ID scheduler promises only Theorem 4 correctness (more rounds,
    // no power bound): lenient analysis must find no errors.
    let topo = CstTopology::with_leaves(64);
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed + 300);
        let set = cst::workloads::well_nested_with_density(&mut rng, 64, 0.6);
        let out = route_once("roy", &topo, &set).unwrap();
        let report = analyze(&topo, &set, &out.schedule, &CheckOptions::lenient());
        assert!(!report.has_errors(), "roy (seed={seed}):\n{}", report.render_text());
    }
}

#[test]
fn merged_mixed_orientation_schedules_are_correct() {
    // The "general-merged" router interleaves the two orientation halves;
    // correctness is re-checked at link granularity by the analyzer.
    let topo = CstTopology::with_leaves(16);
    let set = cst::comm::CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (15, 8), (14, 9)]);
    let merged = route_once("general-merged", &topo, &set).unwrap();
    let report = analyze(&topo, &set, &merged.schedule, &CheckOptions::lenient());
    assert!(!report.has_errors(), "{}", report.render_text());
}
