//! Incremental-vs-scratch equivalence: an [`IncrementalCsa`] session fed
//! random mutation chains must produce, after every delta, a schedule
//! byte-identical (serde) to routing the mutated set from scratch — and
//! that schedule must pass the static analyzer. Proptest drives the
//! chains; a threaded-router case checks the session agrees with the
//! parallel driver too.

use cst::check::{analyze, CheckOptions};
use cst::comm::{CommSet, Schedule, SchedulePool};
use cst::core::CstTopology;
use cst::engine::EngineCtx;
use cst::padr::{CsaScratch, IncrementalCsa};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bytes(s: &Schedule) -> String {
    serde_json::to_string(s).unwrap()
}

/// Route `set` from scratch with a fresh serial CSA.
fn scratch_route(topo: &CstTopology, set: &CommSet) -> Schedule {
    let (mut csa, mut pool) = (CsaScratch::new(), SchedulePool::new());
    csa.schedule(topo, set, &mut pool).unwrap().schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 1–8 random deltas: after each, the incremental route matches the
    /// from-scratch route byte-for-byte and the analyzer finds nothing.
    #[test]
    fn incremental_matches_scratch_under_mutation_chains(
        seed in 0u64..1_000_000,
        steps in 1usize..=8,
    ) {
        let n = 128;
        let topo = CstTopology::with_leaves(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.4);
        let mut session = IncrementalCsa::new(&topo, &set).unwrap();
        let mut pool = SchedulePool::new();
        for step in 0..steps {
            let changes = cst::workloads::random_changes(&mut rng, session.set(), 1);
            let out = session.route_delta(&topo, &changes, &mut pool).unwrap();
            let fresh = scratch_route(&topo, &session.set().clone());
            prop_assert_eq!(
                bytes(&out.schedule), bytes(&fresh),
                "seed {} step {}: incremental != scratch", seed, step
            );
            let report = analyze(&topo, session.set(), &out.schedule, &CheckOptions::strict());
            prop_assert!(
                report.is_clean(),
                "seed {} step {}: analyzer findings:\n{}", seed, step, report.render_text()
            );
            pool.put_schedule(out.schedule);
            pool.put_meter(out.meter);
        }
    }

    /// Larger deltas in one batch (up to 8 changes per `route_delta`).
    #[test]
    fn batched_deltas_match_scratch(seed in 0u64..1_000_000, k in 2usize..=8) {
        let n = 256;
        let topo = CstTopology::with_leaves(n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD317A);
        let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.5);
        let mut session = IncrementalCsa::new(&topo, &set).unwrap();
        let mut pool = SchedulePool::new();
        let changes = cst::workloads::random_changes(&mut rng, session.set(), k);
        let out = session.route_delta(&topo, &changes, &mut pool).unwrap();
        let fresh = scratch_route(&topo, &session.set().clone());
        prop_assert_eq!(bytes(&out.schedule), bytes(&fresh), "seed {}", seed);
    }
}

#[test]
fn incremental_agrees_with_the_threaded_router() {
    // The threaded CSA driver is schedule-identical to the serial one; an
    // incremental session evolving the same set must agree with it after
    // every delta — streaming clients may mix the two freely.
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0x7472EAD);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.5);
    let mut session = IncrementalCsa::new(&topo, &set).unwrap();
    let mut pool = SchedulePool::new();
    let mut ctx = EngineCtx::new();
    for step in 0..6 {
        let changes = cst::workloads::random_changes(&mut rng, session.set(), 2);
        let inc = session.route_delta(&topo, &changes, &mut pool).unwrap();
        let threaded = ctx.route_named("csa-threaded", &topo, &session.set().clone()).unwrap();
        assert_eq!(
            bytes(&inc.schedule),
            bytes(&threaded.schedule),
            "step {step}: incremental != csa-threaded"
        );
        ctx.recycle(threaded);
        pool.put_schedule(inc.schedule);
        pool.put_meter(inc.meter);
    }
}

#[test]
fn cached_and_incremental_paths_agree() {
    // Close the loop between the two streaming features: routing the
    // evolved set through the schedule cache (miss, then hit) returns the
    // same bytes the incremental session produced.
    let n = 128;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.5);
    let mut session = IncrementalCsa::new(&topo, &set).unwrap();
    let mut pool = SchedulePool::new();
    let mut ctx = EngineCtx::new();
    for step in 0..4 {
        let changes = cst::workloads::random_changes(&mut rng, session.set(), 2);
        let inc = session.route_delta(&topo, &changes, &mut pool).unwrap();
        let evolved = session.set().clone();
        let miss = ctx.route_cached(&cst::engine::Csa, &topo, &evolved).unwrap();
        let hit = ctx.route_cached(&cst::engine::Csa, &topo, &evolved).unwrap();
        assert_eq!(bytes(&inc.schedule), bytes(&miss.schedule), "step {step}");
        assert_eq!(bytes(&inc.schedule), bytes(&hit.schedule), "step {step}");
        pool.put_schedule(inc.schedule);
        pool.put_meter(inc.meter);
    }
}

#[test]
fn traced_deltas_conform_to_the_reference_model() {
    // PR satellite: `route_delta` used to be the one scheduling path with
    // no ProtocolTrace emission. Every delta's trace must now replay
    // cleanly on the independent reference model (CST2xx family), and
    // tracing must not change the schedule.
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let mut rng = StdRng::seed_from_u64(0x7EACE);
    let set = cst::workloads::well_nested_with_density(&mut rng, n, 0.4);
    let mut session = IncrementalCsa::new(&topo, &set).unwrap();
    let mut pool = SchedulePool::new();
    let mut trace = cst::core::ProtocolTrace::new();

    // The session's full route traces too.
    let full = session.route_traced(&topo, &mut pool, &mut trace).unwrap();
    let report = cst::model::conform_trace(session.set(), &trace);
    assert!(report.is_clean(), "full route trace:\n{}", report.render_text());
    pool.put_schedule(full.schedule);
    pool.put_meter(full.meter);

    for step in 0..6 {
        let changes = cst::workloads::random_changes(&mut rng, session.set(), 2);
        let out = session.route_delta_traced(&topo, &changes, &mut pool, &mut trace).unwrap();
        let report = cst::model::conform_trace(session.set(), &trace);
        assert!(
            report.is_clean(),
            "step {step}: delta trace fails conformance:\n{}",
            report.render_text()
        );
        let fresh = scratch_route(&topo, &session.set().clone());
        assert_eq!(bytes(&out.schedule), bytes(&fresh), "step {step}: tracing changed bytes");
        pool.put_schedule(out.schedule);
        pool.put_meter(out.meter);
    }
}
