//! Differential tests for compiled schedule replay: a verified schedule
//! lowered into a [`CompiledProgram`] and replayed must produce a
//! [`SimOutcome`] *identical in every field* — schedule, cycles,
//! per-round timings, deliveries (payloads, hops), power meter — to the
//! event-driven interpreter (`simulate_schedule`), across random
//! well-nested sets, custom payload variants, and fault-degraded
//! schedules. The replayed schedule must also pass the same `cst-check`
//! audit as the routed one.

use bytes::Bytes;
use cst::check::{analyze, analyze_with_faults, CheckOptions};
use cst::comm::{from_paren_string, CommSet};
use cst::core::CstTopology;
use cst::engine::EngineCtx;
use cst::faults::sample_mask;
use cst::sim::{default_payloads, simulate_schedule, CompiledProgram, ReplayScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random balanced-paren pattern over `n` positions (shared construction
/// with `tests/proptests.rs`).
fn paren_pattern(n: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..3, n).prop_map(move |choices| {
        let mut out = String::with_capacity(n);
        let mut depth = 0usize;
        for (i, c) in choices.into_iter().enumerate() {
            let left_after = n - i - 1;
            if depth > left_after {
                out.push(')');
                depth -= 1;
            } else {
                match c {
                    0 if depth < left_after => {
                        out.push('(');
                        depth += 1;
                    }
                    1 if depth > 0 => {
                        out.push(')');
                        depth -= 1;
                    }
                    _ => out.push('.'),
                }
            }
        }
        out
    })
}

fn valid_set(pattern: &str) -> Option<CommSet> {
    from_paren_string(pattern).ok().filter(|s| !s.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled replay is byte-identical to the interpreter for every
    /// scheduler family, and the replayed schedule passes the analyzer.
    #[test]
    fn replay_matches_interpreter_across_routers(pattern in paren_pattern(32)) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mut ctx = EngineCtx::new();
        let mut scratch = ReplayScratch::new();
        for name in ["csa", "greedy", "roy"] {
            let out = ctx.route_named(name, &topo, &set).unwrap();
            let reference = simulate_schedule(&topo, &set, &out.schedule, None).unwrap();
            let prog = CompiledProgram::compile(&topo, &set, &out.schedule).unwrap();
            let payloads = default_payloads(&set);
            let replayed = prog.replay_with(&mut scratch, &payloads).unwrap();
            prop_assert_eq!(&replayed, &reference, "{} replay drifted", name);
            // The delta streams are exactly the hold-semantics power
            // units the routed outcome was charged for (Theorem 8's
            // size bound on the compiled form).
            prop_assert_eq!(prog.num_instrs() as u64, out.power.total_units, "{}", name);
            // And the replayed schedule is the verified schedule: same
            // analyzer verdict as the routed artifact.
            let audit = analyze(&topo, &set, &replayed.schedule, &CheckOptions::lenient());
            prop_assert!(audit.is_clean(), "{} replayed schedule failed audit", name);
            scratch.recycle(replayed);
            ctx.recycle(out);
        }
    }

    /// Custom payload variants flow through both paths untouched.
    #[test]
    fn payload_variants_are_identical(pattern in paren_pattern(32), tag in 0u64..1000) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mut ctx = EngineCtx::new();
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        let payloads: Vec<Bytes> = (0..set.len())
            .map(|i| Bytes::from(format!("blob-{tag}-{i}")))
            .collect();
        let reference =
            simulate_schedule(&topo, &set, &out.schedule, Some(payloads.clone())).unwrap();
        let prog = CompiledProgram::compile(&topo, &set, &out.schedule).unwrap();
        let replayed = prog.replay(Some(payloads)).unwrap();
        prop_assert_eq!(&replayed, &reference);
        ctx.recycle(out);
    }

    /// Degraded schedules (dead switches/links, half-duplex split rounds)
    /// compile and replay identically to the interpreter, and the replay
    /// passes the fault audit exactly like the routed schedule.
    #[test]
    fn masked_replay_matches_interpreter(
        pattern in paren_pattern(32),
        seed in 0u64..u64::MAX,
        rate in 0.0f64..0.25,
    ) {
        let Some(set) = valid_set(&pattern) else { return Ok(()); };
        let topo = CstTopology::with_leaves(32);
        let mask = sample_mask(&mut StdRng::seed_from_u64(seed), &topo, rate);
        let mut ctx = EngineCtx::new();
        let mut scratch = ReplayScratch::new();
        for name in ["csa", "greedy"] {
            let out = ctx.route_named_masked(name, &topo, &set, &mask).unwrap();
            let report = out.degradation.as_ref().expect("masked route reports");
            let reference = simulate_schedule(&topo, &set, &out.schedule, None).unwrap();
            let prog = CompiledProgram::compile(&topo, &set, &out.schedule).unwrap();
            let payloads = default_payloads(&set);
            let replayed = prog.replay_with(&mut scratch, &payloads).unwrap();
            prop_assert_eq!(&replayed, &reference, "{} masked replay drifted", name);
            prop_assert_eq!(
                replayed.deliveries.len(), report.routed,
                "{} delivered a dropped communication", name
            );
            let dropped: Vec<usize> = report.drops.iter().map(|d| d.comm).collect();
            let audit = analyze_with_faults(
                &topo, &set, &replayed.schedule, &CheckOptions::lenient(), &mask, &dropped,
            );
            prop_assert!(audit.is_clean(), "{} masked replay failed fault audit", name);
            scratch.recycle(replayed);
            ctx.recycle(out);
        }
    }
}

/// The engine's compiled route entry agrees with the interpreter on the
/// paper's running example, warm and cold.
#[test]
fn engine_route_compiled_matches_interpreter() {
    let topo = CstTopology::with_leaves(16);
    let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 15)]);
    let mut ctx = EngineCtx::new();
    ctx.enable_cache(8);
    for _ in 0..3 {
        let (out, sim) = ctx.route_compiled(&cst::engine::Csa, &topo, &set).unwrap();
        let reference = simulate_schedule(&topo, &set, &out.schedule, None).unwrap();
        assert_eq!(sim, reference);
        ctx.recycle(out);
        ctx.recycle_sim(sim);
    }
}
