//! End-to-end simulator integration: timing model, payload integrity,
//! trace serialization, energy accounting.

use bytes::Bytes;
use cst::core::CstTopology;
use cst::sim::{simulate, EnergyModel, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn payload_integrity_random_workloads() {
    for seed in 0..10u64 {
        let n = 128;
        let topo = CstTopology::with_leaves(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let set = cst::workloads::well_nested_set(&mut rng, n, 30);
        let payloads: Vec<Bytes> = (0..set.len())
            .map(|i| Bytes::from(format!("msg-{seed}-{i}")))
            .collect();
        let sim = simulate(&topo, &set, Some(payloads.clone())).unwrap();
        assert_eq!(sim.deliveries.len(), set.len());
        for d in &sim.deliveries {
            // find the communication whose dest this is
            let (id, comm) = set.iter().find(|(_, c)| c.dest == d.dest).unwrap();
            assert_eq!(d.source, comm.source);
            assert_eq!(d.payload, payloads[id.0]);
            assert!(d.hops <= 2 * topo.height() as usize + 1);
        }
    }
}

#[test]
fn makespan_scales_with_width_not_size() {
    // Two workloads of the same width on different tree sizes: cycles
    // differ only through the height factor.
    let w = 8usize;
    let mut cycles = Vec::new();
    for n in [64usize, 256] {
        let topo = CstTopology::with_leaves(n);
        let mut rng = StdRng::seed_from_u64(3);
        let set = cst::workloads::with_width(&mut rng, n, w, 0.0);
        let sim = simulate(&topo, &set, None).unwrap();
        let h = u64::from(topo.height());
        assert_eq!(sim.cycles, h + w as u64 * (h + 1));
        cycles.push(sim.cycles);
    }
    assert!(cycles[1] > cycles[0]);
}

#[test]
fn trace_round_trip_and_consistency() {
    let n = 64;
    let topo = CstTopology::with_leaves(n);
    let set = cst::workloads::hierarchical_bus(n, 3);
    let sim = simulate(&topo, &set, None).unwrap();
    let trace = Trace::from_sim(&topo, &set, &sim);
    assert_eq!(trace.rounds.len(), sim.schedule.num_rounds());
    let total_transfers: usize = trace.rounds.iter().map(|r| r.transfers.len()).sum();
    assert_eq!(total_transfers, set.len());
    // serialization round-trip
    let back: Trace = serde_json::from_str(&trace.to_json()).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn energy_gap_grows_with_width() {
    let n = 256;
    let topo = CstTopology::with_leaves(n);
    let model = EnergyModel::default();
    let mut ratios = Vec::new();
    for w in [2usize, 16, 64] {
        let mut rng = StdRng::seed_from_u64(w as u64);
        let set = cst::workloads::with_width(&mut rng, n, w, 0.0);
        let sim = simulate(&topo, &set, None).unwrap();
        let report = sim.meter.report(&topo);
        let hold = model.hold_energy(&report, 0, 0).total();
        let wt = model.writethrough_energy(&report, 0, 0).total();
        ratios.push(wt / hold);
    }
    assert!(
        ratios.windows(2).all(|p| p[1] > p[0]),
        "write-through/hold ratio should grow with width: {ratios:?}"
    );
}

#[test]
fn simulator_rejects_bad_inputs() {
    let topo = CstTopology::with_leaves(16);
    let crossing = cst::comm::CommSet::from_pairs(16, &[(0, 8), (4, 12)]);
    assert!(simulate(&topo, &crossing, None).is_err());
    let left = cst::comm::CommSet::from_pairs(16, &[(9, 2)]);
    assert!(simulate(&topo, &left, None).is_err());
}
