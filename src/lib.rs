//! # cst — Power-Aware Routing for Well-Nested Communications on the
//! Circuit Switched Tree
//!
//! Umbrella crate re-exporting the whole workspace. A faithful, tested
//! reproduction of El-Boghdadi's IPPS 2007 paper:
//!
//! * [`core`] (`cst-core`) — the CST substrate: topology, 3-sided
//!   switches, circuits, compatibility, the PADR power model;
//! * [`comm`] (`cst-comm`) — communication sets, well-nestedness, width;
//! * [`decomp`] (`cst-decomp`) — layered decomposition front-end: splits
//!   arbitrary communication sets into minimum-count well-nested layers
//!   with a lower-bound certificate (see `docs/DECOMP.md`);
//! * [`check`] (`cst-check`) — static schedule analyzer: typed `CST0xx`
//!   diagnostics for every invariant (see `docs/DIAGNOSTICS.md`);
//! * [`padr`] (`cst-padr`) — the paper's Configuration and Scheduling
//!   Algorithm (CSA): `w` rounds, O(1) configuration changes per switch;
//! * [`model`] (`cst-model`) — independent executable reference model of
//!   the switch protocol: exhaustive small-n state-space checking and
//!   `CST2xx` trace conformance (see `docs/MODEL.md`);
//! * [`engine`] (`cst-engine`) — the `Router` trait, the scheduler
//!   registry, and `EngineCtx` for allocation-free repeated scheduling
//!   (see `docs/ENGINE.md`);
//! * [`baseline`] (`cst-baseline`) — Roy-style ID scheduler and greedy
//!   comparators;
//! * [`sim`] (`cst-sim`) — cycle-level simulator with payload transfer
//!   and an energy model;
//! * [`workloads`] (`cst-workloads`) — seeded generators;
//! * [`analysis`] (`cst-analysis`) — the E1..E8 experiment suite.
//!
//! ## Quickstart
//!
//! ```
//! use cst::core::CstTopology;
//! use cst::comm::CommSet;
//!
//! // 8 PEs, three nested right-oriented communications (width 3).
//! let topo = CstTopology::with_leaves(8);
//! let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]);
//!
//! // Every scheduler is a named `Router`; "csa" is the paper's CSA.
//! let out = cst::engine::route_once("csa", &topo, &set).unwrap();
//! assert_eq!(out.rounds, 3);                          // Theorem 5
//! assert!(out.power.max_port_transitions <= 9);       // Theorem 8
//!
//! // Repeated scheduling: one context, zero steady-state allocation.
//! let mut ctx = cst::engine::EngineCtx::new();
//! let warm = ctx.route_named("csa", &topo, &set).unwrap();
//! assert_eq!(warm.schedule, out.schedule);
//! ctx.recycle(warm);
//! ```

pub use cst_analysis as analysis;
pub use cst_baseline as baseline;
pub use cst_check as check;
pub use cst_comm as comm;
pub use cst_core as core;
pub use cst_decomp as decomp;
pub use cst_engine as engine;
pub use cst_faults as faults;
pub use cst_model as model;
pub use cst_padr as padr;
pub use cst_serve as serve;
pub use cst_sim as sim;
pub use cst_srga as srga;
pub use cst_apps as apps;
pub use cst_bus as bus;
pub use cst_rmesh as rmesh;
pub use cst_workloads as workloads;
