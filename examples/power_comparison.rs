//! Power comparison: the paper's headline contrast, CSA (O(1) changes per
//! switch) versus the Roy-style ID scheduler (O(w) changes per switch),
//! swept over the width.
//!
//! ```text
//! cargo run --release --example power_comparison            # quick sweep
//! cargo run --release --example power_comparison -- full    # E2+E3+E6+E8
//! ```

use cst::analysis::experiments::{e2_changes, e3_total_power, e6_histogram, e8_ablation};

fn main() {
    let full = std::env::args().any(|a| a == "full");

    let e2_cfg = if full {
        e2_changes::Config::default()
    } else {
        e2_changes::Config {
            n: 256,
            widths: vec![1, 2, 4, 8, 16, 32, 64],
            seeds: (0..3).collect(),
            threads: cst::analysis::default_threads(),
        }
    };
    println!("{}", e2_changes::run(&e2_cfg).render_text());

    let e3_cfg = if full {
        e3_total_power::Config::default()
    } else {
        e3_total_power::Config {
            sizes: vec![64, 256, 1024],
            density: 0.5,
            seeds: (0..3).collect(),
            threads: cst::analysis::default_threads(),
        }
    };
    println!("{}", e3_total_power::run(&e3_cfg).render_text());

    if full {
        let e6 = e6_histogram::run(&e6_histogram::Config::default());
        println!("{}", e6.table.render_text());
        println!("csa per-switch hold units:\n{}", e6.csa_hist.render());
        println!("roy per-switch write-through units:\n{}", e6.roy_hist.render());
        println!("{}", e8_ablation::run(&e8_ablation::Config::default()).render_text());
    } else {
        println!("(run with `-- full` for the histogram and ablation experiments)");
    }
}
