//! Matrix transpose on the SRGA: the 2D architecture the CST comes from
//! (a CST per row and per column), with every 1D phase scheduled by the
//! power-aware CSA.
//!
//! ```text
//! cargo run --release --example srga_transpose
//! ```

use cst::srga::{transpose, Coord, SrgaGrid};

fn main() {
    let side = 8;
    let grid = SrgaGrid::square(side);
    println!(
        "SRGA {side}x{side}: {} PEs, {} switches across {} row + {} column CSTs",
        grid.num_pes(),
        grid.num_switches(),
        grid.rows(),
        grid.cols(),
    );

    let out = transpose(&grid).expect("transpose routes");
    println!(
        "\ntranspose: {} communications in {} waves, {} total CST rounds",
        grid.num_pes() - side,
        out.waves.len(),
        out.total_rounds()
    );
    for (i, wave) in out.waves.iter().enumerate() {
        println!(
            "  wave {i}: {:>3} comms | row phase {} rounds across {} rows | col phase {} rounds across {} cols",
            wave.comms.len(),
            wave.row_rounds,
            wave.row_phases.len(),
            wave.col_rounds,
            wave.col_phases.len(),
        );
    }
    println!(
        "\npower: {} total units (hold semantics), max {} at any single switch",
        out.total_power_units, out.max_switch_units
    );

    // Show one concrete path: (1,6) -> (6,1) via the turn PE (1,1).
    let c = Coord::at(1, 6);
    let t = Coord::at(c.col, c.row);
    println!("\nexample: {c} -> {t} travels row {} (col 6 -> col {}), then column {} (row 1 -> row {})",
        c.row, t.col, t.col, t.row);
}
