//! The segmentable bus, emulated on the CST — the paper's §1 claim
//! ("well-nested sets are a superset of the communications required by
//! the segmentable bus") executed with real values.
//!
//! ```text
//! cargo run --release --example bus_emulation
//! ```

use cst::bus::{emulate_step, round_bound, SegmentableBus};

fn main() {
    let n = 32;
    let mut bus = SegmentableBus::new(n);
    bus.segment_at(&[7, 15, 23]); // four segments of 8 PEs

    println!("segmentable bus over {n} PEs, segments: {:?}", bus.segments());

    // Each segment's writer drives its own value.
    let writes: Vec<(usize, String)> = vec![
        (3, "alpha".into()),
        (12, "beta".into()),
        (16, "gamma".into()),
        (30, "delta".into()),
    ];
    for (pe, v) in &writes {
        println!("  PE {pe:>2} writes {v:?} onto its segment");
    }

    // Reference semantics.
    let reference = bus.step(&writes).expect("no bus conflicts");

    // The same step on the CST.
    let out = emulate_step(&bus, &writes).expect("emulation succeeds");
    assert_eq!(out.reads, reference);

    println!("\nCST emulation:");
    println!(
        "  {} rounds (bound for 8-PE segments: {}), each a width-1 well-nested set",
        out.rounds,
        round_bound(8)
    );
    println!("  {} power units total (hold semantics)", out.power_units);

    println!("\nreads delivered (matching the reference bus exactly):");
    for (p, r) in out.reads.iter().enumerate() {
        if let Some(v) = r {
            print!("{v:>6}");
        } else {
            print!("{:>6}", "-");
        }
        if (p + 1) % 8 == 0 {
            println!("   <- segment {}", p / 8);
        }
    }
}
