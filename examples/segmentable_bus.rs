//! Segmentable-bus case study on the cycle-level simulator.
//!
//! The paper motivates well-nested sets as a superset of segmentable-bus
//! communications (§1). This example builds a hierarchical bus workload,
//! runs it end to end through the event-driven simulator (control waves,
//! switch configuration, payload transfer), and prints the execution
//! trace.
//!
//! ```text
//! cargo run --release --example segmentable_bus
//! ```

use bytes::Bytes;
use cst::core::CstTopology;
use cst::sim::{simulate, EnergyModel, Trace};

fn main() {
    let n = 64;
    let levels = 3;
    let topo = CstTopology::with_leaves(n);
    let set = cst::workloads::hierarchical_bus(n, levels);
    println!("hierarchical bus: {n} PEs, {levels} levels, {} communications", set.len());

    // Give every bus master a recognizable payload.
    let payloads: Vec<Bytes> = set
        .iter()
        .map(|(id, c)| Bytes::from(format!("bus-msg-{} from pe{}", id.0, c.source.0)))
        .collect();

    let sim = simulate(&topo, &set, Some(payloads)).expect("bus traffic is well-nested");
    println!(
        "simulated {} rounds in {} cycles (phase 1: {} cycles, {} per round)",
        sim.schedule.num_rounds(),
        sim.cycles,
        topo.height(),
        topo.height() + 1,
    );

    println!("\ndeliveries:");
    for d in &sim.deliveries {
        println!(
            "  pe{:>2} -> pe{:>2}  ({} switch hops): {:?}",
            d.source.0,
            d.dest.0,
            d.hops,
            String::from_utf8_lossy(&d.payload)
        );
    }

    // Energy: hold-capable PADR hardware vs per-round path establishment.
    let model = EnergyModel::default();
    let report = sim.meter.report(&topo);
    let data_hops: u64 = sim.deliveries.iter().map(|d| d.hops as u64).sum();
    let hold = model.hold_energy(&report, 0, data_hops).total();
    let wt = model.writethrough_energy(&report, 0, data_hops).total();
    println!("\nenergy (reconfig-dominated model):");
    println!("  PADR/hold      : {hold:.1}");
    println!("  write-through  : {wt:.1}");
    println!("  saving         : {:.0}%", 100.0 * (1.0 - hold / wt));

    // Full machine-readable trace.
    let trace = Trace::from_sim(&topo, &set, &sim);
    println!("\nfirst round of the JSON trace:");
    let json = serde_json_first_round(&trace);
    println!("{json}");
}

fn serde_json_first_round(trace: &Trace) -> String {
    // Render only round 0 to keep the console output readable.
    trace
        .rounds
        .first()
        .map(|r| format!("{r:#?}"))
        .unwrap_or_else(|| "<empty>".into())
}
