//! Quickstart: schedule a well-nested communication set on the CST with
//! the power-aware CSA and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cst::comm::{to_paren_string, width_on_topology, CommSet};
use cst::core::CstTopology;

fn main() {
    // A 16-PE circuit switched tree.
    let topo = CstTopology::with_leaves(16);

    // The paper's Figure-2-style workload: nested groups of right-oriented
    // communications, written as a parenthesis pattern over PE positions.
    let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (3, 4), (8, 11), (9, 10)]);
    println!("communication set : {}", to_paren_string(&set).unwrap());
    println!("communications    : {}", set.len());
    let width = width_on_topology(&topo, &set);
    println!("width w           : {width} (max communications on one directed link)");

    // Schedule with the paper's Configuration and Scheduling Algorithm,
    // dispatched through the engine registry ("csa" is the canonical name;
    // `cst::engine::names()` lists the rest). `route_once` is the one-shot
    // convenience; reuse an `EngineCtx` to amortize scratch allocations.
    let out = cst::engine::route_once("csa", &topo, &set)
        .expect("valid well-nested input")
        .into_csa()
        .expect("csa router carries CSA extras");
    println!("\nCSA schedule ({} rounds — Theorem 5 says exactly w):", out.rounds());
    for (i, round) in out.schedule.rounds.iter().enumerate() {
        let pairs: Vec<String> = round
            .comms
            .iter()
            .map(|&id| {
                let c = &set.comms()[id.0];
                format!("{}->{}", c.source.0, c.dest.0)
            })
            .collect();
        println!("  round {i}: {}", pairs.join(", "));
    }

    // Power accounting under the PADR model (1 unit per connection set,
    // holding is free).
    println!("\npower (hold semantics):");
    println!("  total units              : {}", out.power.total_units);
    println!("  max units per switch     : {}", out.power.max_units);
    println!("  max port transitions     : {} (Theorem 8: O(1))", out.power.max_port_transitions);

    // Verify Theorems 4, 5 and 8 in one call.
    let report = cst::padr::verify_outcome(&topo, &set, &out).expect("all theorems hold");
    println!("\nverified: rounds == width == {}, transitions <= {}", report.width,
        cst::padr::CSA_PORT_TRANSITION_BOUND);
}
