//! A guided walkthrough of the paper's own figures, executed on the real
//! implementation:
//!
//! * Figure 1 — communications over the CST: a two-communication round
//!   with the switch settings printed per switch;
//! * Figure 2 — a well-nested communication set and its schedule;
//! * Figure 3(b) — Definitions 1 and 2 (outermost communication, x-th
//!   left-most source / right-most destination) evaluated on the example;
//! * Figure 5 — the per-switch transition function stepping a concrete
//!   switch state through a round.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use cst::comm::{examples, to_paren_string, width_on_topology};
use cst::core::{CstTopology, NodeId};
use cst::padr::messages::DownMsg;
use cst::padr::phase1;
use cst::padr::switch_logic;

fn main() {
    figure_1();
    figure_2();
    figure_3b();
    figure_5();
}

fn figure_1() {
    println!("--- Figure 1: communications over the CST -------------------");
    let topo = CstTopology::with_leaves(8);
    let set = cst::comm::CommSet::from_pairs(8, &[(0, 3), (4, 7)]);
    let out = cst::engine::route_once("csa", &topo, &set).unwrap();
    assert_eq!(out.rounds, 1);
    let round = &out.schedule.rounds[0];
    println!("one round carries both communications; switch settings:");
    for (node, cfg) in &round.configs {
        println!("  switch {node}: {cfg}");
    }
    println!();
}

fn figure_2() {
    println!("--- Figure 2: a well-nested communication set ----------------");
    let set = examples::paper_figure_2();
    let topo = CstTopology::with_leaves(16);
    println!("pattern : {}", to_paren_string(&set).unwrap());
    println!("width   : {}", width_on_topology(&topo, &set));
    let out = cst::engine::route_once("csa", &topo, &set).unwrap();
    for (i, round) in out.schedule.rounds.iter().enumerate() {
        let pairs: Vec<String> = round
            .comms
            .iter()
            .map(|&id| {
                let c = &set.comms()[id.0];
                format!("({},{})", c.source.0, c.dest.0)
            })
            .collect();
        println!("round {i}: {}", pairs.join(" "));
    }
    println!();
}

fn figure_3b() {
    println!("--- Figure 3(b): Definitions 1 and 2 -------------------------");
    let set = examples::paper_figure_3b();
    let topo = CstTopology::with_leaves(16);
    let p1 = phase1::run(&topo, &set).unwrap();
    // The switch where the boundary-crossing communications are matched:
    let u = topo.lca(cst::core::LeafId(0), cst::core::LeafId(15));
    let st = p1.state(u);
    println!("switch u = {u} (covers leaves {:?})", topo.leaf_range(u));
    println!("  matched pairs M            : {}", st.matched);
    println!("  unmatched left sources     : {}  (these lie LEFT of the matched ones)", st.left_sources);
    println!("  unmatched right dests      : {}  (these lie RIGHT of the matched ones)", st.right_dests);
    println!(
        "  outermost matched comm = connect S_u({}) to D_u({}) per Definitions 1-2",
        st.left_sources, st.right_dests
    );
    println!();
}

fn figure_5() {
    println!("--- Figure 5: stepping the switch transition function --------");
    // A switch with 2 matched pairs, 3 outer left sources, 1 outer right
    // dest — the [null,null] branch of the pseudocode.
    let mut st = cst::padr::SwitchState {
        matched: 2,
        left_sources: 3,
        right_sources: 0,
        left_dests: 0,
        right_dests: 1,
    };
    println!("state before: {st:?}");
    let r = switch_logic::step(&mut st, DownMsg::NULL).unwrap();
    println!("[null,null] received:");
    for c in &r.connections {
        println!("  connect {c}");
    }
    println!("  to left child : {}", r.to_left);
    println!("  to right child: {}", r.to_right);
    println!("state after : {st:?}");
    let _ = NodeId::ROOT;
}
