//! PADR sessions: scheduling a stream of communication sets against one
//! persistently-configured tree, and watching where cross-batch retention
//! pays (and where it cannot).
//!
//! ```text
//! cargo run --release --example session_stream
//! ```

use cst::comm::examples;
use cst::core::CstTopology;
use cst::padr::PadrSession;

fn main() {
    let n = 64;
    let topo = CstTopology::with_leaves(n);

    println!("stream A: the same width-1 set (sibling pairs), 6 times");
    let mut session = PadrSession::new(&topo);
    let set = examples::sibling_pairs(n);
    for _ in 0..6 {
        let (_, report) = session.run_batch(&set).expect("schedules");
        println!(
            "  batch {}: {} rounds, spent {:>3} units (cold would be {:>3}, saved {:>3})",
            report.batch,
            report.rounds,
            report.units_spent,
            report.units_cold,
            report.units_saved()
        );
    }
    summary(&session);

    println!("\nstream B: the same width-32 full nest, 6 times");
    let mut session = PadrSession::new(&topo);
    let set = examples::full_nest(n);
    for _ in 0..6 {
        let (_, report) = session.run_batch(&set).expect("schedules");
        println!(
            "  batch {}: {} rounds, spent {:>4} units (cold {:>4}, saved {:>3})",
            report.batch,
            report.rounds,
            report.units_spent,
            report.units_cold,
            report.units_saved()
        );
    }
    summary(&session);

    println!("\nwhy the difference: retention only carries the configuration held at");
    println!("the batch boundary into the next batch. A one-round batch leaves the");
    println!("whole tree configured for its repeat; a 32-round batch has cycled every");
    println!("switch through its full sequence, so the repeat pays almost everything");
    println!("again. (Experiment E10 sweeps this systematically.)");
}

fn summary(session: &PadrSession<'_>) {
    let spent: u64 = session.batches().iter().map(|b| b.units_spent).sum();
    let cold = session.cold_total();
    println!(
        "  => total spent {spent} vs cold {cold} ({}% saved)",
        100 * (cold - spent) / cold.max(1)
    );
}
