//! Fault-injection campaign: corrupt every switch's stored control state
//! (the `C_S` counters of Phase 1) one field at a time and watch the
//! protocol machinery catch it.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use cst::core::{CstTopology, NodeId};
use cst::sim::{campaign, run_with_fault, Fault, FaultOutcome, StateField};

fn main() {
    let topo = CstTopology::with_leaves(32);
    let set = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        cst::workloads::well_nested_set(&mut rng, 32, 10)
    };
    println!(
        "workload: {} communications on {} PEs ({} switches)",
        set.len(),
        topo.num_leaves(),
        topo.num_switches()
    );

    // A few hand-picked injections with their outcomes explained.
    println!("\nselected injections:");
    let cases = [
        ("phantom matched pair at an idle switch", Fault {
            node: topo.lca(cst::core::LeafId(30), cst::core::LeafId(31)),
            field: StateField::Matched,
            delta: 1,
        }),
        ("lost matched pair at the root", Fault {
            node: NodeId::ROOT,
            field: StateField::Matched,
            delta: -1,
        }),
        ("inflated left-source count at the root's left child", Fault {
            node: NodeId(2),
            field: StateField::LeftSources,
            delta: 1,
        }),
    ];
    for (what, fault) in cases {
        let outcome = run_with_fault(&topo, &set, fault);
        let verdict = match &outcome {
            FaultOutcome::DetectedDuringRun(e) => format!("DETECTED during run: {e}"),
            FaultOutcome::DetectedByVerifier(e) => format!("DETECTED by verifier: {e}"),
            FaultOutcome::Masked => "masked (output still correct)".to_string(),
        };
        println!("  {what:>55}: {verdict}");
    }

    // The full campaign: every switch x every field x (+1, -1).
    let (during, by_verifier, masked) = campaign(&topo, &set);
    let total = during + by_verifier + masked;
    println!("\nfull campaign over {total} injections:");
    println!("  detected during the run : {during:>4}");
    println!("  detected by the verifier: {by_verifier:>4}");
    println!("  masked (correct output) : {masked:>4}");
    println!("\nno injection ever produced a wrong schedule that verified — the");
    println!("rank arithmetic is self-checking and the end-to-end verifier backs it up.");
}
