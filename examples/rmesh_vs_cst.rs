//! The paper's opening argument, run live: dynamic reconfiguration on the
//! R-Mesh is extremely fast but pays for it in switch reconfigurations;
//! the CST with PADR is slower by a log factor and dramatically cheaper.
//!
//! ```text
//! cargo run --release --example rmesh_vs_cst
//! ```

use cst::rmesh::RMesh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 64;
    let mut rng = StdRng::seed_from_u64(2007);
    let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let ones = bits.iter().filter(|&&b| b).count();
    println!("task: count the ones of a {n}-bit vector (answer: {ones})\n");

    // --- R-Mesh: the classic one-step staircase ------------------------
    let mut mesh = RMesh::new(n + 1, n);
    let got = cst::rmesh::count_ones(&mut mesh, &bits).expect("staircase");
    assert_eq!(got, ones);
    println!("R-Mesh ({}x{} PEs):", n + 1, n);
    println!("  steps           : {}", mesh.meter().steps());
    println!("  reconfigurations: {} (every PE on the board)", mesh.meter().total_units());

    // --- CST + PADR: tree reduction ------------------------------------
    let values: Vec<i64> = bits.iter().map(|&b| i64::from(b)).collect();
    let out = cst::apps::reduce(values, |a, b| a + b).expect("reduce");
    assert_eq!(out.values[0] as usize, ones);
    println!("\nCST + PADR ({n} PEs, {} switches):", n - 1);
    println!("  rounds          : {} (log2 n steps, width-1 each)", out.rounds);
    println!("  reconfigurations: {} power units", out.total_power);

    let ratio = mesh.meter().total_units() as f64 / out.total_power.max(1) as f64;
    println!("\nthe tradeoff: the R-Mesh answers in 1 step but spends {ratio:.1}x the");
    println!("power — exactly the gap the paper's PADR technique is built to close");
    println!("(and which grows linearly with n: see experiment E12).");
}
