//! Computational algorithms on the CST via PADR (the paper's concluding
//! remarks, implemented): prefix sums, reduction, broadcast and sorting,
//! with real values moved over scheduled circuits and results verified.
//!
//! ```text
//! cargo run --release --example prefix_sum
//! ```

use cst::apps::{broadcast, odd_even_sort, prefix_sums, reduce};

fn main() {
    let n = 64usize;

    // Prefix sums (Hillis–Steele recursive doubling).
    let input: Vec<i64> = (1..=n as i64).collect();
    let out = prefix_sums(input).expect("prefix sums run");
    println!("prefix sums over 1..={n}:");
    println!("  last prefix = {} (expect {})", out.values[n - 1], n * (n + 1) / 2);
    println!(
        "  {} steps, {} CST rounds, {} power units",
        out.steps, out.rounds, out.total_power
    );

    // Reduction then broadcast = allreduce.
    let r = reduce((1..=n as i64).collect(), |a, b| a + b).expect("reduce runs");
    println!("\nreduce(+) over 1..={n}:");
    println!("  result at PE0 = {}", r.values[0]);
    println!("  {} steps, {} rounds (log2 n = {}), {} power units",
        r.steps, r.rounds, n.trailing_zeros(), r.total_power);

    let b = broadcast(r.values).expect("broadcast runs");
    println!("\nbroadcast from PE0:");
    println!("  every PE now holds {}", b.values[n - 1]);
    println!("  {} rounds, {} power units", b.rounds, b.total_power);

    // Odd-even transposition sort.
    let shuffled: Vec<i64> = (0..n as i64).rev().collect();
    let s = odd_even_sort(shuffled).expect("sort runs");
    println!("\nodd-even transposition sort of {n} reversed keys:");
    println!("  sorted: {}", s.values.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "  {} phases, {} rounds, {} power units, max {} units at one switch",
        s.phases, s.rounds, s.total_power, s.max_switch_units
    );
    println!("  (per-switch power grows with phases here: alternating phases defeat retention — see cst-apps docs)");
}
