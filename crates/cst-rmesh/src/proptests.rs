//! Differential property tests: the union-find bus resolution checked
//! against an independent breadth-first-search reference on randomly
//! configured meshes.

#![cfg(test)]

use crate::mesh::{Partition, Port, RMesh, Write};
use proptest::prelude::*;

/// Reference bus resolution: BFS over the port graph, written with a
/// completely different traversal structure than the union-find.
fn bfs_component(
    rows: usize,
    cols: usize,
    config: &dyn Fn(usize, usize) -> Partition,
    start: (usize, usize, Port),
) -> std::collections::HashSet<(usize, usize, Port)> {
    let mut seen = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some((r, c, p)) = queue.pop_front() {
        // internal fusions
        let part = config(r, c);
        for q in Port::ALL {
            if q != p && part.fused(p, q) && seen.insert((r, c, q)) {
                queue.push_back((r, c, q));
            }
        }
        // external wire
        let neighbor = match p {
            Port::East if c + 1 < cols => Some((r, c + 1, Port::West)),
            Port::West if c > 0 => Some((r, c - 1, Port::East)),
            Port::South if r + 1 < rows => Some((r + 1, c, Port::North)),
            Port::North if r > 0 => Some((r - 1, c, Port::South)),
            _ => None,
        };
        if let Some(n) = neighbor {
            if seen.insert(n) {
                queue.push_back(n);
            }
        }
    }
    seen
}

/// A random partition for each PE.
fn partition_strategy() -> impl Strategy<Value = Partition> {
    // choose a group id in 0..4 for every port: covers all 15 partitions
    // (with redundant labelings, which is fine)
    proptest::array::uniform4(0u8..4).prop_map(|g| {
        Partition::from_groups(&[
            &Port::ALL.iter().copied().filter(|p| g[p.index()] == 0).collect::<Vec<_>>(),
            &Port::ALL.iter().copied().filter(|p| g[p.index()] == 1).collect::<Vec<_>>(),
            &Port::ALL.iter().copied().filter(|p| g[p.index()] == 2).collect::<Vec<_>>(),
            &Port::ALL.iter().copied().filter(|p| g[p.index()] == 3).collect::<Vec<_>>(),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A value written anywhere is read at exactly the ports the BFS
    /// reference says are on the same bus.
    #[test]
    fn union_find_matches_bfs(
        grid in proptest::collection::vec(partition_strategy(), 16),
        wr in 0usize..4,
        wc in 0usize..4,
        wp in 0usize..4,
    ) {
        let (rows, cols) = (4usize, 4usize);
        let config = |r: usize, c: usize| grid[r * cols + c];
        let mut mesh = RMesh::new(rows, cols);
        mesh.configure(config);
        let port = Port::ALL[wp];
        let view = mesh
            .step(&[Write { row: wr, col: wc, port, value: 1u8 }])
            .unwrap();
        let reachable = bfs_component(rows, cols, &config, (wr, wc, port));
        for r in 0..rows {
            for c in 0..cols {
                for p in Port::ALL {
                    let read = view.read(r, c, p).is_some();
                    let expect = reachable.contains(&(r, c, p));
                    prop_assert_eq!(read, expect, "mismatch at ({}, {}, {:?})", r, c, p);
                }
            }
        }
    }

    /// Bus membership is symmetric: `same_bus(a, b) == same_bus(b, a)`,
    /// and consistent with reads.
    #[test]
    fn same_bus_symmetry(
        grid in proptest::collection::vec(partition_strategy(), 16),
    ) {
        let (rows, cols) = (4usize, 4usize);
        let config = |r: usize, c: usize| grid[r * cols + c];
        let mut mesh = RMesh::new(rows, cols);
        mesh.configure(config);
        let view = mesh
            .step(&[Write { row: 0, col: 0, port: Port::East, value: 1u8 }])
            .unwrap();
        let a = (0, 0, Port::East);
        for r in 0..rows {
            for c in 0..cols {
                for p in Port::ALL {
                    let b = (r, c, p);
                    prop_assert_eq!(view.same_bus(a, b), view.same_bus(b, a));
                    prop_assert_eq!(view.same_bus(a, b), view.read(r, c, p).is_some());
                }
            }
        }
    }
}
