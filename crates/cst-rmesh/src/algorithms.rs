//! Classic constant-time R-Mesh algorithms — the "extremely fast"
//! computations of the paper's opening paragraph, implemented on the
//! reference model with their reconfiguration cost metered.

use crate::mesh::{Partition, Port, RMesh, Write};
use cst_core::CstError;

/// Broadcast a value from PE `(r, c)` to the whole mesh in **one step**
/// by fusing every PE's four ports into a single global bus.
pub fn broadcast<V: Clone>(
    mesh: &mut RMesh,
    r: usize,
    c: usize,
    value: V,
) -> Result<Vec<V>, CstError> {
    mesh.configure(|_, _| Partition::ALL_FUSED);
    let view = mesh.step(&[Write { row: r, col: c, port: Port::East, value }])?;
    let mut out = Vec::with_capacity(mesh.rows() * mesh.cols());
    for rr in 0..mesh.rows() {
        for cc in 0..mesh.cols() {
            out.push(view.read(rr, cc, Port::East).expect("global bus reaches everyone"));
        }
    }
    Ok(out)
}

/// Count the ones of `bits` in **one step** on a `(n+1) x n` R-Mesh via
/// the classic staircase: column `j` shifts the signal down one row iff
/// `bits[j]` is set, so a token injected at the north-west corner exits
/// the east edge at row `popcount(bits)`.
pub fn count_ones(mesh: &mut RMesh, bits: &[bool]) -> Result<usize, CstError> {
    let n = bits.len();
    assert!(mesh.cols() >= n && mesh.rows() > n, "need an (n+1) x n mesh");
    mesh.configure(|_, c| {
        if c < n && bits[c] {
            Partition::WS_NE
        } else {
            Partition::EW
        }
    });
    let view = mesh.step(&[Write { row: 0, col: 0, port: Port::West, value: 1u8 }])?;
    for r in 0..mesh.rows() {
        if view.read(r, n - 1, Port::East).is_some() {
            return Ok(r);
        }
    }
    Err(CstError::ProtocolViolation {
        node: cst_core::NodeId::ROOT,
        detail: "staircase token vanished".into(),
    })
}

/// Parity of `bits` in one step (plus the count read-off).
pub fn parity(mesh: &mut RMesh, bits: &[bool]) -> Result<bool, CstError> {
    Ok(count_ones(mesh, bits)? % 2 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn broadcast_reaches_all() {
        let mut mesh = RMesh::new(4, 4);
        let out = broadcast(&mut mesh, 2, 1, 99u32).unwrap();
        assert_eq!(out, vec![99; 16]);
        assert_eq!(mesh.meter().steps(), 1);
        // every PE reconfigured: the O(N) power cost of the O(1) step
        assert_eq!(mesh.meter().total_units(), 16);
    }

    #[test]
    fn counting_matches_popcount() {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let mut mesh = RMesh::new(n + 1, n);
            let got = count_ones(&mut mesh, &bits).unwrap();
            let want = bits.iter().filter(|&&b| b).count();
            assert_eq!(got, want, "bits {bits:?}");
        }
    }

    #[test]
    fn counting_extremes() {
        let n = 6;
        let mut mesh = RMesh::new(n + 1, n);
        assert_eq!(count_ones(&mut mesh, &vec![false; n]).unwrap(), 0);
        assert_eq!(count_ones(&mut mesh, &vec![true; n]).unwrap(), n);
    }

    #[test]
    fn parity_works() {
        let n = 8;
        let mut mesh = RMesh::new(n + 1, n);
        assert!(!parity(&mut mesh, &vec![false; n]).unwrap());
        let mut bits = vec![false; n];
        bits[3] = true;
        assert!(parity(&mut mesh, &bits).unwrap());
        bits[6] = true;
        assert!(!parity(&mut mesh, &bits).unwrap());
    }

    #[test]
    fn reconfiguration_cost_is_mesh_sized() {
        // One count_ones = one configure of all (n+1)*n PEs; repeating
        // with *different* bits re-pays changed columns.
        let n = 8;
        let mut mesh = RMesh::new(n + 1, n);
        count_ones(&mut mesh, &vec![true; n]).unwrap();
        let after_first = mesh.meter().total_units();
        assert_eq!(after_first, ((n + 1) * n) as u64);
        // flip all bits: every column's partition changes
        count_ones(&mut mesh, &vec![false; n]).unwrap();
        assert_eq!(mesh.meter().total_units(), 2 * after_first);
        // same bits again: free (hold semantics — charitable to the R-Mesh)
        count_ones(&mut mesh, &vec![false; n]).unwrap();
        assert_eq!(mesh.meter().total_units(), 2 * after_first);
    }
}
