//! # cst-rmesh — the reconfigurable mesh, the paper's motivating model
//!
//! The paper opens: "Models such as the reconfigurable mesh (R-Mesh) [5]
//! provide very fast solutions to many problems ... Changing the
//! interconnection between processors ... translates to increasing the
//! power requirements." This crate is that model, built as a reference
//! implementation with the same hold-semantics power accounting as the
//! CST — so the speed-versus-power tradeoff that motivates PADR can be
//! measured instead of asserted (experiment E12):
//!
//! * [`mesh`] — PEs with 4-port partitions, union-find bus resolution,
//!   one-writer-per-bus step semantics, per-PE reconfiguration metering;
//! * [`algorithms`] — the classic O(1)-step computations: global
//!   broadcast, staircase counting, parity.

pub mod algorithms;
#[cfg(test)]
mod proptests;
pub mod mesh;

pub use algorithms::{broadcast, count_ones, parity};
pub use mesh::{Partition, Port, PortMeter, RMesh, ReadView, Write};
