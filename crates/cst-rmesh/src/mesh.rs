//! The reconfigurable mesh (R-Mesh) — the paper's motivating model
//! (reference [5]): a 2D grid of PEs, each with four ports (N, S, E, W)
//! it may partition into connected groups *every step*. Port groups fuse
//! with neighboring PEs' wires into global buses; a written value is read
//! by every port on its bus within the step.
//!
//! This is exactly the "extremely fast but power-hungry" regime the
//! paper's introduction describes: solving a problem in O(1) steps
//! requires reconfiguring essentially every PE's switches at every step.
//! [`PortMeter`] charges that under the same hold semantics as the CST's
//! [`cst_core::PowerMeter`], so experiment E12 can price R-Mesh speed
//! against CST/PADR frugality in the same currency.

use cst_core::CstError;
use serde::{Deserialize, Serialize};

/// One of the four ports of an R-Mesh PE.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Port {
    North,
    South,
    East,
    West,
}

impl Port {
    /// All ports in dense-index order.
    pub const ALL: [Port; 4] = [Port::North, Port::South, Port::East, Port::West];

    /// Dense index 0..4.
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
        }
    }
}

/// A partition of the four ports into groups: `group[p]` is the group id
/// (0..4) of port `p`; ports with equal ids are internally fused. The 15
/// set partitions of 4 elements are all expressible.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Partition {
    group: [u8; 4],
}

impl Partition {
    /// All four ports separate (the quiescent configuration).
    pub const ISOLATED: Partition = Partition { group: [0, 1, 2, 3] };

    /// Horizontal through-bus: {E, W}, {N}, {S}.
    pub const EW: Partition = Partition { group: [0, 1, 2, 2] };

    /// Vertical through-bus: {N, S}, {E}, {W}.
    pub const NS: Partition = Partition { group: [0, 0, 1, 2] };

    /// Full crossover: {N, S, E, W} all fused.
    pub const ALL_FUSED: Partition = Partition { group: [0, 0, 0, 0] };

    /// The staircase-down step: {W, S}, {N, E} — a signal entering from
    /// the west leaves south (one row down); one entering from the north
    /// leaves east.
    pub const WS_NE: Partition = Partition { group: [1, 0, 1, 0] };

    /// Build from explicit groups (ids are arbitrary labels).
    pub fn from_groups(groups: &[&[Port]]) -> Partition {
        let mut group = [u8::MAX; 4];
        for (gid, ports) in groups.iter().enumerate() {
            for p in *ports {
                group[p.index()] = gid as u8;
            }
        }
        // unmentioned ports become singletons
        let mut next = groups.len() as u8;
        for g in &mut group {
            if *g == u8::MAX {
                *g = next;
                next += 1;
            }
        }
        Partition { group }
    }

    /// True if the two ports are fused.
    pub fn fused(&self, a: Port, b: Port) -> bool {
        self.group[a.index()] == self.group[b.index()]
    }
}

/// A value written onto a bus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Write<V> {
    pub row: usize,
    pub col: usize,
    pub port: Port,
    pub value: V,
}

/// Power accounting for R-Mesh port partitions under hold semantics:
/// reconfiguring a PE whose partition differs from the one it holds costs
/// one unit; keeping it is free (the most charitable model for the
/// R-Mesh — the paper's point survives even so).
#[derive(Clone, Debug)]
pub struct PortMeter {
    held: Vec<Partition>,
    /// Units per PE.
    units: Vec<u64>,
    steps: u64,
}

impl PortMeter {
    fn new(pes: usize) -> PortMeter {
        PortMeter { held: vec![Partition::ISOLATED; pes], units: vec![0; pes], steps: 0 }
    }

    /// Total units across the mesh.
    pub fn total_units(&self) -> u64 {
        self.units.iter().sum()
    }

    /// Maximum units at one PE.
    pub fn max_units(&self) -> u64 {
        self.units.iter().copied().max().unwrap_or(0)
    }

    /// Steps accounted.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// An `rows x cols` R-Mesh with per-PE configurations and a power meter.
pub struct RMesh {
    rows: usize,
    cols: usize,
    config: Vec<Partition>,
    meter: PortMeter,
}

impl RMesh {
    /// Build a mesh with all ports isolated.
    pub fn new(rows: usize, cols: usize) -> RMesh {
        assert!(rows >= 1 && cols >= 1);
        RMesh {
            rows,
            cols,
            config: vec![Partition::ISOLATED; rows * cols],
            meter: PortMeter::new(rows * cols),
        }
    }

    /// Rows of the mesh.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the mesh.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The power meter.
    pub fn meter(&self) -> &PortMeter {
        &self.meter
    }

    fn pe(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Set the whole mesh's configuration for the next step, charging the
    /// meter for every PE whose partition actually changes.
    pub fn configure<F>(&mut self, mut f: F)
    where
        F: FnMut(usize, usize) -> Partition,
    {
        self.meter.steps += 1;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let i = self.pe(r, c);
                let p = f(r, c);
                if self.meter.held[i] != p {
                    self.meter.held[i] = p;
                    self.meter.units[i] += 1;
                }
                self.config[i] = p;
            }
        }
    }

    /// Node id of `(r, c, port)` in the port graph.
    fn port_node(&self, r: usize, c: usize, port: Port) -> usize {
        self.pe(r, c) * 4 + port.index()
    }

    /// Resolve buses (connected components of the port graph) for the
    /// current configuration. Returns a component id per port node.
    fn resolve_buses(&self) -> Vec<usize> {
        let n = self.rows * self.cols * 4;
        let mut dsu: Vec<usize> = (0..n).collect();
        fn find(dsu: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while dsu[r] != r {
                r = dsu[r];
            }
            let mut cur = x;
            while dsu[cur] != r {
                let next = dsu[cur];
                dsu[cur] = r;
                cur = next;
            }
            r
        }
        let union = |dsu: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(dsu, a), find(dsu, b));
            if ra != rb {
                dsu[ra] = rb;
            }
        };
        // Internal fusions.
        for r in 0..self.rows {
            for c in 0..self.cols {
                let p = self.config[self.pe(r, c)];
                for a in Port::ALL {
                    for b in Port::ALL {
                        if a.index() < b.index() && p.fused(a, b) {
                            union(
                                &mut dsu,
                                self.port_node(r, c, a),
                                self.port_node(r, c, b),
                            );
                        }
                    }
                }
            }
        }
        // External wires: E <-> W and S <-> N between neighbors.
        for r in 0..self.rows {
            for c in 0..self.cols.saturating_sub(1) {
                union(
                    &mut dsu,
                    self.port_node(r, c, Port::East),
                    self.port_node(r, c + 1, Port::West),
                );
            }
        }
        for r in 0..self.rows.saturating_sub(1) {
            for c in 0..self.cols {
                union(
                    &mut dsu,
                    self.port_node(r, c, Port::South),
                    self.port_node(r + 1, c, Port::North),
                );
            }
        }
        (0..n).map(|x| find(&mut dsu, x)).collect()
    }

    /// Execute one step: buses form per the current configuration, the
    /// writers drive their buses, and the returned closure reads any
    /// port's bus value. Two writers on one bus is a conflict.
    pub fn step<V: Clone>(
        &self,
        writes: &[Write<V>],
    ) -> Result<ReadView<V>, CstError> {
        let comp = self.resolve_buses();
        let mut bus_value: std::collections::HashMap<usize, V> = std::collections::HashMap::new();
        for w in writes {
            let node = self.port_node(w.row, w.col, w.port);
            let root = comp[node];
            if bus_value.insert(root, w.value.clone()).is_some() {
                return Err(CstError::ProtocolViolation {
                    node: cst_core::NodeId::ROOT,
                    detail: format!("R-Mesh bus conflict at ({}, {})", w.row, w.col),
                });
            }
        }
        Ok(ReadView { comp, bus_value, cols: self.cols })
    }
}

/// The read side of one executed step.
pub struct ReadView<V> {
    comp: Vec<usize>,
    bus_value: std::collections::HashMap<usize, V>,
    cols: usize,
}

impl<V: Clone> ReadView<V> {
    /// What `(r, c, port)` reads this step.
    pub fn read(&self, r: usize, c: usize, port: Port) -> Option<V> {
        let node = (r * self.cols + c) * 4 + port.index();
        self.bus_value.get(&self.comp[node]).cloned()
    }

    /// True if the two ports ended up on the same bus.
    pub fn same_bus(&self, a: (usize, usize, Port), b: (usize, usize, Port)) -> bool {
        let na = (a.0 * self.cols + a.1) * 4 + a.2.index();
        let nb = (b.0 * self.cols + b.1) * 4 + b.2.index();
        self.comp[na] == self.comp[nb]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_express_named_shapes() {
        assert!(Partition::EW.fused(Port::East, Port::West));
        assert!(!Partition::EW.fused(Port::North, Port::South));
        assert!(Partition::NS.fused(Port::North, Port::South));
        assert!(Partition::ALL_FUSED.fused(Port::North, Port::West));
        assert!(Partition::WS_NE.fused(Port::West, Port::South));
        assert!(Partition::WS_NE.fused(Port::North, Port::East));
        assert!(!Partition::WS_NE.fused(Port::West, Port::North));
        let p = Partition::from_groups(&[&[Port::North, Port::East]]);
        assert!(p.fused(Port::North, Port::East));
        assert!(!p.fused(Port::South, Port::West));
    }

    #[test]
    fn row_bus_broadcast() {
        let mut mesh = RMesh::new(2, 8);
        mesh.configure(|_, _| Partition::EW);
        let view = mesh
            .step(&[Write { row: 0, col: 3, port: Port::East, value: 7u32 }])
            .unwrap();
        // every E/W port of row 0 reads the value; row 1 reads nothing
        for c in 0..8 {
            assert_eq!(view.read(0, c, Port::West), Some(7));
            assert_eq!(view.read(1, c, Port::West), None);
        }
    }

    #[test]
    fn isolated_ports_no_propagation() {
        let mut mesh = RMesh::new(2, 2);
        mesh.configure(|_, _| Partition::ISOLATED);
        let view = mesh
            .step(&[Write { row: 0, col: 0, port: Port::East, value: 1u8 }])
            .unwrap();
        // the external wire still joins E(0,0) and W(0,1)
        assert_eq!(view.read(0, 1, Port::West), Some(1));
        // but nothing beyond
        assert_eq!(view.read(0, 1, Port::East), None);
    }

    #[test]
    fn conflict_on_shared_bus() {
        let mut mesh = RMesh::new(1, 4);
        mesh.configure(|_, _| Partition::EW);
        let writes = vec![
            Write { row: 0, col: 0, port: Port::East, value: 1u8 },
            Write { row: 0, col: 3, port: Port::West, value: 2u8 },
        ];
        assert!(mesh.step(&writes).is_err());
    }

    #[test]
    fn staircase_routing() {
        // 3x3, middle column in WS_NE (staircase), others EW: a signal
        // entering row 0 from the far west exits one row lower east of
        // the staircase column.
        let mut mesh = RMesh::new(3, 3);
        mesh.configure(|_, c| if c == 1 { Partition::WS_NE } else { Partition::EW });
        let view = mesh
            .step(&[Write { row: 0, col: 0, port: Port::West, value: 9u8 }])
            .unwrap();
        // signal: (0,0)W ~ (0,0)E -> (0,1)W ~ (0,1)S -> (1,1)N ~ (1,1)E -> (1,2)W ~ (1,2)E
        assert_eq!(view.read(1, 2, Port::East), Some(9));
        assert_eq!(view.read(0, 2, Port::East), None);
        assert!(view.same_bus((0, 0, Port::West), (1, 2, Port::East)));
    }

    #[test]
    fn meter_charges_changes_only() {
        let mut mesh = RMesh::new(4, 4);
        mesh.configure(|_, _| Partition::EW);
        assert_eq!(mesh.meter().total_units(), 16);
        // same configuration again: free
        mesh.configure(|_, _| Partition::EW);
        assert_eq!(mesh.meter().total_units(), 16);
        // flip everything: pay again
        mesh.configure(|_, _| Partition::NS);
        assert_eq!(mesh.meter().total_units(), 32);
        assert_eq!(mesh.meter().max_units(), 2);
        assert_eq!(mesh.meter().steps(), 3);
    }
}
