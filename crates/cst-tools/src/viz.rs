//! ASCII visualization of scheduled rounds: the tree drawn level by level
//! with each switch's configuration, and the active PEs underneath.
//!
//! ```text
//! $ cst-tools viz '((.))'
//! round 0
//!                 [l>r]
//!         [l>p]           [p>r]
//!     [l>p]   .       .       [p>r]
//! PE:  S   .   .   .   .   D   .   .
//! ```

use cst_comm::{CommSet, Round};
use cst_core::{Connection, CstTopology, Side, SwitchConfig};

/// Width of one leaf cell in characters.
const CELL: usize = 8;

/// Compact label for a switch configuration, e.g. `[l>r,p>l]`.
fn config_label(cfg: &SwitchConfig) -> String {
    if cfg.is_empty() {
        return ".".to_string();
    }
    let part = |c: Connection| {
        let s = |side: Side| match side {
            Side::Left => 'l',
            Side::Right => 'r',
            Side::Parent => 'p',
        };
        format!("{}>{}", s(c.from), s(c.to))
    };
    let parts: Vec<String> = cfg.connections().map(part).collect();
    format!("[{}]", parts.join(","))
}

/// Place `text` centered at column `center` into `line`, extending it with
/// spaces as needed.
fn put_centered(line: &mut String, center: usize, text: &str) {
    let start = center.saturating_sub(text.len() / 2);
    if line.len() < start {
        line.push_str(&" ".repeat(start - line.len()));
    }
    // overwrite from `start`
    let mut chars: Vec<char> = line.chars().collect();
    if chars.len() < start + text.len() {
        chars.resize(start + text.len(), ' ');
    }
    for (i, ch) in text.chars().enumerate() {
        chars[start + i] = ch;
    }
    *line = chars.into_iter().collect();
}

/// Render one round as a multi-line diagram.
pub fn render_round(topo: &CstTopology, set: &CommSet, round: &Round) -> String {
    let mut out = String::new();
    for depth in 0..topo.height() {
        let mut line = String::new();
        for node in topo.switches_at_depth(depth) {
            let range = topo.leaf_range(node);
            let center = (range.start + range.end) * CELL / 2;
            let label = match round.configs.get(node) {
                Some(cfg) => config_label(cfg),
                None => ".".to_string(),
            };
            put_centered(&mut line, center, &label);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    // Leaf row: mark active sources/dests of this round.
    let mut roles = vec!['.'; topo.num_leaves()];
    for &id in &round.comms {
        if let Some(c) = set.get(id) {
            roles[c.source.0] = 'S';
            roles[c.dest.0] = 'D';
        }
    }
    let mut line = String::from("PE:");
    for (i, r) in roles.iter().enumerate() {
        put_centered(&mut line, i * CELL + CELL / 2, &r.to_string());
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out
}

/// Render a whole schedule.
pub fn render_schedule(
    topo: &CstTopology,
    set: &CommSet,
    schedule: &cst_comm::Schedule,
) -> String {
    let mut out = String::new();
    for (i, round) in schedule.rounds.iter().enumerate() {
        out.push_str(&format!("round {i}\n"));
        out.push_str(&render_round(topo, set, round));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let mut cfg = SwitchConfig::empty();
        cfg.set(Connection::L_TO_R).unwrap();
        assert_eq!(config_label(&cfg), "[l>r]");
        cfg.set(Connection::P_TO_L).unwrap();
        assert_eq!(config_label(&cfg), "[p>l,l>r]");
        assert_eq!(config_label(&SwitchConfig::empty()), ".");
    }

    #[test]
    fn put_centered_extends_and_overwrites() {
        let mut line = String::new();
        put_centered(&mut line, 10, "abc");
        assert_eq!(line, "         abc");
        put_centered(&mut line, 2, "XY");
        assert!(line.starts_with(" XY"));
    }

    #[test]
    fn renders_rounds_with_roles() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7)]);
        let out = cst_engine::route_once("csa", &topo, &set).unwrap();
        let viz = render_schedule(&topo, &set, &out.schedule);
        assert!(viz.contains("round 0"));
        assert!(viz.contains("[l>r]"));
        assert!(viz.contains("S"));
        assert!(viz.contains("D"));
        // three switch levels + PE row + blank per round
        assert_eq!(viz.lines().count(), 1 + 3 + 1 + 1);
    }
}
