//! `cst-tools` — command-line driver for the reproduction.
//!
//! ```text
//! cst-tools experiments [--quick]     run E1..E12, print all tables
//! cst-tools report [--quick]          print the EXPERIMENTS.md body
//! cst-tools csv <E1..E12>              print one experiment as CSV
//! cst-tools trace <n> <levels>        simulate a bus and dump the JSON trace
//! cst-tools schedule <pattern>        schedule a paren pattern, show rounds
//! cst-tools sim <pattern>             schedule a pattern, execute it on cst-sim
//! cst-tools viz <pattern>             draw the scheduled rounds as ASCII trees
//! cst-tools bundle <pattern>          schedule a paren pattern, emit a JSON bundle
//! cst-tools check <bundle.json>       statically analyze a schedule bundle
//! cst-tools inject <pattern>          route a pattern under a fault mask
//! cst-tools campaign                  run the seeded fault campaign, emit JSON
//! cst-tools stream                    replay a seeded request stream, report hit rate
//! cst-tools decomp                    route seeded arbitrary sets via layering, audit
//! cst-tools model enumerate           exhaustively cross-check the protocol at small n
//! cst-tools model conform [pattern]   replay emitter traces through the reference model
//! cst-tools serve                     run the routing daemon (TCP or Unix socket)
//! cst-tools bench-serve               seeded closed-loop load generator for the daemon
//! cst-tools list-routers              print the engine registry
//! ```
//!
//! `schedule`, `viz` and `bundle` accept `--router <name>` to dispatch
//! through any engine-registry router (default `csa`); `list-routers`
//! prints the registry (`--canonical` restricts to the ten canonical
//! routers, `--names` prints bare names for scripting).
//!
//! `check` reads a [`cst_check::ScheduleBundle`] (as emitted by `bundle`),
//! runs the static analyzer and prints the findings; `--json` switches to
//! the machine-readable report, `--lenient` drops the CSA-only passes
//! (orientation, Theorem 5 round count, Theorem 8 budget, selection
//! order). Exit status: 0 clean (warnings allowed), 1 errors found or the
//! bundle is malformed, 2 usage.
//!
//! `inject` routes a pattern under a hardware fault mask (docs/FAULTS.md):
//! `--kill-switch <n>` and `--kill-link <n^|nv>` (`^` = upward, `v` =
//! downward link above node `n`) place faults by hand, `--degrade <n>`
//! marks the edge above `n` half-duplex, and `--fault-seed <s>` with
//! `--fault-rate <p>` samples a reproducible random mask on top. The
//! degraded schedule is audited with the `CST10x` fault pass; `--json`
//! emits the machine-readable outcome. Exit status: 0 audit-clean, 1
//! audit findings or routing failure, 2 usage.
//!
//! `sim` schedules a pattern and executes the verified schedule on the
//! cst-sim interpreter, printing cycles, deliveries and power. With
//! `--compiled` (off by default) it also lowers the schedule into a
//! [`cst_sim::CompiledProgram`] and replays it, printing an
//! interpreter-vs-compiled agreement line; exit 1 if the two outcomes
//! diverge in any field.
//!
//! `campaign` runs the deterministic `cst-faults` sweep (`--seed <s>`,
//! `--quick` for the small CI grid) and prints the report JSON; the same
//! seed always prints the same bytes (soak-checked in scripts/ci.sh).
//! `--interpreted` switches the per-trial execution cross-check to the
//! event-driven interpreter and `--compiled` (the default) to lowered
//! replay — the report is byte-identical either way, which scripts/ci.sh
//! also gates.
//!
//! `stream` replays a seeded request stream through the engine's schedule
//! cache (docs/ENGINE.md §"Caching & streaming"): a working set of
//! `--working` sets on `--pes` leaves at `--density`; each of `--requests`
//! requests repeats a working-set member with probability `--repeat`,
//! otherwise mutates one with `--delta` random PE changes first. Prints a
//! throughput/hit-rate report; every count in the report is a pure
//! function of the flags (the seed included), which scripts/ci.sh gates
//! after stripping the timing fields. `--json` for the machine-readable
//! form, `--router <name>` to pick the scheduler (default `csa`).
//!
//! `decomp` exercises the layered decomposition front-end
//! (docs/DECOMP.md): a seeded sweep of `--requests` arbitrary
//! communication sets (`--workload matching|hotspot|bipartite|mixed`,
//! `--pes`, `--pairs`, `--seed`) is routed through
//! `EngineCtx::route_general_cached` with `--router` (default `csa`) per
//! layer; every composite is audited with the `CST3xx` decomposition
//! pass, each sliced layer with the static analyzer and the reference
//! model's schedule conformance. `--report` prints the machine-readable
//! JSON summary — layer counts vs. the certificate lower bound, proven-
//! optimal tallies, cache counters — with no timing fields, so identical
//! flags print identical bytes (gated in scripts/ci.sh against
//! `scripts/decomp_golden.json`). Exit 0 iff every audit is clean, 1 on
//! findings, 2 usage.
//!
//! `model` drives the executable reference model (docs/MODEL.md).
//! `model enumerate` runs the exhaustive small-`n` state-space
//! cross-check against `switch_logic` — every well-nested set up to
//! `--max-n` (default 8) plus a seeded shape-exhaustive sweep at
//! `--seeded-n` (default 16; 0 disables) with `--seeded-pairs` pairs and
//! `--placements` embeddings per shape under `--seed`. `model conform
//! '<pattern>'` schedules a pattern through all three trace emitters
//! (host CSA, event simulator, RTL machine) and replays each trace
//! through the model, then audits every registry router's schedule;
//! without a pattern it sweeps `--requests` seeded random sets
//! (`--pes`, `--density`, `--seed`). All output is a pure function of
//! the flags; exit 0 iff everything conforms, 1 on findings, 2 usage.

use cst_analysis::experiments as exp;
use cst_analysis::Table;

mod report;
mod serve_cmd;
mod viz;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    match args.first().map(String::as_str) {
        Some("experiments") => {
            for t in run_all(quick) {
                println!("{}", t.render_text());
            }
        }
        Some("report") => {
            print!("{}", report::experiments_md(&run_all(quick), quick));
        }
        Some("csv") => match args.get(1).map(String::as_str) {
            Some(id) => {
                let tables = run_all(quick);
                match tables.iter().find(|t| t.id.eq_ignore_ascii_case(id)) {
                    Some(t) => print!("{}", t.render_csv()),
                    None => {
                        eprintln!("unknown experiment id {id} (use E1..E12)");
                        std::process::exit(2);
                    }
                }
            }
            None => {
                eprintln!("usage: cst-tools csv <E1..E12>");
                std::process::exit(2);
            }
        },
        Some("trace") => {
            let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
            let levels: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
            let (topo, set, sim) = exp::e7_bus::simulate_bus(n, levels);
            let trace = cst_sim::Trace::from_sim(&topo, &set, &sim);
            println!("{}", trace.to_json());
        }
        Some("viz") => {
            let pattern = match pattern_arg(&args) {
                Some(p) => p,
                None => {
                    eprintln!("usage: cst-tools viz '((.))(..)' [--router <name>]");
                    std::process::exit(2);
                }
            };
            viz_pattern(&pattern, &router_arg(&args));
        }
        Some("schedule") => {
            let pattern = match pattern_arg(&args) {
                Some(p) => p,
                None => {
                    eprintln!("usage: cst-tools schedule '((.))(..)' [--router <name>]");
                    std::process::exit(2);
                }
            };
            schedule_pattern(&pattern, &router_arg(&args));
        }
        Some("bundle") => {
            let pattern = match pattern_arg(&args) {
                Some(p) => p,
                None => {
                    eprintln!("usage: cst-tools bundle '((.))(..)' [--router <name>]");
                    std::process::exit(2);
                }
            };
            bundle_pattern(&pattern, &router_arg(&args));
        }
        Some("list-routers") => {
            let names_only = args.iter().any(|a| a == "--names");
            let canonical = args.iter().any(|a| a == "--canonical");
            for router in cst_engine::registry() {
                if canonical && !cst_engine::CANONICAL.contains(&router.name()) {
                    continue;
                }
                if names_only {
                    println!("{}", router.name());
                } else {
                    println!("{:<18} {}", router.name(), router.description());
                }
            }
        }
        Some("check") => {
            let path = match args.iter().skip(1).find(|a| !a.starts_with("--")) {
                Some(p) => p.clone(),
                None => {
                    eprintln!("usage: cst-tools check <bundle.json> [--json] [--lenient]");
                    std::process::exit(2);
                }
            };
            let json = args.iter().any(|a| a == "--json");
            let lenient = args.iter().any(|a| a == "--lenient");
            check_bundle(&path, json, lenient);
        }
        Some("inject") => {
            let pattern = match pattern_arg(&args) {
                Some(p) => p,
                None => {
                    eprintln!(
                        "usage: cst-tools inject '((.))(..)' [--router <name>] \
                         [--kill-switch <n>]... [--kill-link <n^|nv>]... [--degrade <n>]... \
                         [--fault-seed <s> --fault-rate <p>] [--json]"
                    );
                    std::process::exit(2);
                }
            };
            inject_pattern(&pattern, &router_arg(&args), &args);
        }
        Some("sim") => {
            let pattern = match pattern_arg(&args) {
                Some(p) => p,
                None => {
                    eprintln!("usage: cst-tools sim '((.))(..)' [--router <name>] [--compiled]");
                    std::process::exit(2);
                }
            };
            sim_pattern(&pattern, &router_arg(&args), args.iter().any(|a| a == "--compiled"));
        }
        Some("campaign") => {
            let seed = flag_value(&args, "--seed").and_then(|s| s.parse().ok());
            let backend = if args.iter().any(|a| a == "--interpreted") {
                cst_faults::SimBackend::Interpreted
            } else {
                cst_faults::SimBackend::Compiled
            };
            run_fault_campaign(seed, quick, backend);
        }
        Some("stream") => {
            run_stream(&args);
        }
        Some("decomp") => {
            run_decomp_sweep(&args);
        }
        Some("model") => {
            run_model(&args);
        }
        Some("serve") => {
            serve_cmd::run_serve(&args);
        }
        Some("bench-serve") => {
            serve_cmd::run_bench_serve(&args);
        }
        _ => {
            eprintln!(
                "usage: cst-tools <experiments|report|csv|trace|schedule|sim|viz|bundle|check|inject|campaign|stream|decomp|model|serve|bench-serve|list-routers> [args] [--quick]"
            );
            std::process::exit(2);
        }
    }
}

/// Run all eight experiments; `quick` shrinks sweeps for fast iteration.
fn run_all(quick: bool) -> Vec<Table> {
    let threads = cst_analysis::default_threads();
    let e1 = if quick {
        exp::e1_rounds::Config {
            n: 128,
            widths: vec![1, 2, 4, 8, 16],
            seeds: (0..3).collect(),
            threads,
        }
    } else {
        exp::e1_rounds::Config::default()
    };
    let e2 = if quick {
        exp::e2_changes::Config {
            n: 128,
            widths: vec![1, 4, 16, 64],
            seeds: (0..3).collect(),
            threads,
        }
    } else {
        exp::e2_changes::Config::default()
    };
    let e3 = if quick {
        exp::e3_total_power::Config {
            sizes: vec![64, 256, 1024],
            density: 0.5,
            seeds: (0..3).collect(),
            threads,
        }
    } else {
        exp::e3_total_power::Config::default()
    };
    let e4 = if quick {
        exp::e4_control::Config { sizes: vec![64, 256, 1024], density: 0.5, seed: 4 }
    } else {
        exp::e4_control::Config::default()
    };
    let e5 = if quick {
        exp::e5_throughput::Config {
            sizes: vec![256, 1024],
            density: 0.5,
            repeats: 3,
            seed: 5,
        }
    } else {
        exp::e5_throughput::Config::default()
    };
    let e6 = if quick {
        exp::e6_histogram::Config { n: 256, width: 32, seed: 6, bucket_width: 4 }
    } else {
        exp::e6_histogram::Config::default()
    };
    let e7 = if quick {
        exp::e7_bus::Config { sizes: vec![64, 256], levels: vec![1, 2, 4] }
    } else {
        exp::e7_bus::Config::default()
    };
    let e8 = if quick {
        exp::e8_ablation::Config { n: 256, widths: vec![4, 16, 64], seed: 8 }
    } else {
        exp::e8_ablation::Config::default()
    };

    let mut tables = vec![
        exp::e1_rounds::run(&e1),
        exp::e2_changes::run(&e2),
        exp::e3_total_power::run(&e3),
        exp::e4_control::run(&e4),
        exp::e5_throughput::run(&e5),
    ];
    let r6 = exp::e6_histogram::run(&e6);
    tables.push(r6.table);
    tables.push(exp::e7_bus::run(&e7));
    tables.push(exp::e8_ablation::run(&e8));
    let e9 = if quick {
        exp::e9_applications::Config { grid_sides: vec![4, 8], array_sizes: vec![64] }
    } else {
        exp::e9_applications::Config::default()
    };
    tables.push(exp::e9_applications::run(&e9));
    let e10 = if quick {
        exp::e10_sessions::Config { n: 64, batches: 4, seed: 10 }
    } else {
        exp::e10_sessions::Config::default()
    };
    tables.push(exp::e10_sessions::run(&e10));
    let e11 = if quick {
        exp::e11_bus_emulation::Config { n: 64, segment_counts: vec![1, 4, 16] }
    } else {
        exp::e11_bus_emulation::Config::default()
    };
    tables.push(exp::e11_bus_emulation::run(&e11));
    let e12 = if quick {
        exp::e12_motivation::Config { sizes: vec![16, 64], inputs: 4, seed: 12 }
    } else {
        exp::e12_motivation::Config::default()
    };
    tables.push(exp::e12_motivation::run(&e12));
    tables
}

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: [&str; 20] = [
    "--workload",
    "--pairs",
    "--router",
    "--kill-switch",
    "--kill-link",
    "--degrade",
    "--fault-seed",
    "--fault-rate",
    "--seed",
    "--requests",
    "--pes",
    "--density",
    "--working",
    "--repeat",
    "--delta",
    "--cache-cap",
    "--max-n",
    "--seeded-n",
    "--seeded-pairs",
    "--placements",
];

/// First non-flag argument after the subcommand, if any.
fn pattern_arg(args: &[String]) -> Option<String> {
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            it.next(); // skip the flag's value
        } else if !a.starts_with("--") {
            return Some(a.clone());
        }
    }
    None
}

/// Value of the first occurrence of a `--flag value` pair.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Values of every occurrence of a repeatable `--flag value` pair.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

/// Value of `--router <name>`, defaulting to the serial CSA router.
fn router_arg(args: &[String]) -> String {
    args.iter()
        .position(|a| a == "--router")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "csa".to_string())
}

/// Parse a parenthesis pattern and pad it onto a power-of-two tree,
/// exiting on malformed input.
fn parse_pattern(pattern: &str) -> (cst_core::CstTopology, cst_comm::CommSet) {
    let set = match cst_comm::from_paren_string(pattern) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid pattern: {e}");
            std::process::exit(1);
        }
    };
    let n = set.num_leaves().next_power_of_two().max(2);
    let pairs: Vec<(usize, usize)> =
        set.comms().iter().map(|c| (c.source.0, c.dest.0)).collect();
    let set = cst_comm::CommSet::from_pairs(n, &pairs);
    let topo = cst_core::CstTopology::with_leaves(n);
    (topo, set)
}

/// Dispatch one pattern through the engine registry, exiting on failure.
fn route_pattern(
    pattern: &str,
    router: &str,
) -> (cst_core::CstTopology, cst_comm::CommSet, cst_engine::RouteOutcome) {
    let (topo, set) = parse_pattern(pattern);
    match cst_engine::route_once(router, &topo, &set) {
        Ok(out) => (topo, set, out),
        Err(e) => {
            eprintln!("cannot schedule: {e}");
            std::process::exit(1);
        }
    }
}

/// Build the fault mask an `inject` invocation describes: explicit
/// `--kill-switch` / `--kill-link` / `--degrade` placements over an
/// optional seeded random base (`--fault-seed` + `--fault-rate`).
fn mask_from_args(args: &[String], topo: &cst_core::CstTopology) -> cst_core::FaultMask {
    use cst_core::{DirectedLink, NodeId};
    let mut mask = match flag_value(args, "--fault-rate") {
        Some(rate_s) => {
            let rate: f64 = match rate_s.parse() {
                Ok(r) if (0.0..=1.0).contains(&r) => r,
                _ => {
                    eprintln!("--fault-rate wants a probability in [0, 1], got {rate_s}");
                    std::process::exit(2);
                }
            };
            let seed: u64 = flag_value(args, "--fault-seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            cst_faults::sample_mask(&mut rng, topo, rate)
        }
        None => cst_core::FaultMask::empty(topo),
    };
    let parse_node = |s: &str| -> usize {
        match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("expected a node id, got {s}");
                std::process::exit(2);
            }
        }
    };
    for s in flag_values(args, "--kill-switch") {
        if !mask.kill_switch(NodeId(parse_node(&s))) {
            eprintln!("--kill-switch {s}: not an internal switch (or already dead)");
            std::process::exit(2);
        }
    }
    for s in flag_values(args, "--kill-link") {
        let (node_s, up) = match s.strip_suffix('^') {
            Some(rest) => (rest, true),
            None => match s.strip_suffix('v') {
                Some(rest) => (rest, false),
                None => {
                    eprintln!("--kill-link wants <node>^ (upward) or <node>v (downward), got {s}");
                    std::process::exit(2);
                }
            },
        };
        let child = NodeId(parse_node(node_s));
        let link =
            if up { DirectedLink::up_from(child) } else { DirectedLink::down_to(child) };
        if !mask.kill_link(link) {
            eprintln!("--kill-link {s}: no such tree link (or already dead)");
            std::process::exit(2);
        }
    }
    for s in flag_values(args, "--degrade") {
        if !mask.degrade_edge(NodeId(parse_node(&s))) {
            eprintln!("--degrade {s}: no such tree edge (or already degraded)");
            std::process::exit(2);
        }
    }
    mask
}

/// Machine-readable `inject` outcome (`--json`).
#[derive(serde::Serialize)]
struct InjectOutcome {
    router: String,
    num_leaves: usize,
    comms: usize,
    faults: usize,
    rounds: usize,
    power_units: u64,
    degradation: cst_engine::DegradationReport,
    audit_clean: bool,
}

/// Route a pattern under a fault mask, audit the degraded schedule, and
/// report. Exit 0 when the fault audit is clean, 1 otherwise.
fn inject_pattern(pattern: &str, router: &str, args: &[String]) {
    let (topo, set) = parse_pattern(pattern);
    let mask = mask_from_args(args, &topo);
    let out = match cst_engine::route_once_masked(router, &topo, &set, &mask) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("cannot schedule: {e}");
            std::process::exit(1);
        }
    };
    let report = out.degradation.clone().unwrap_or_default();
    let dropped: Vec<usize> = report.drops.iter().map(|d| d.comm).collect();
    let audit = cst_check::analyze_with_faults(
        &topo,
        &set,
        &out.schedule,
        &cst_check::CheckOptions::lenient(),
        &mask,
        &dropped,
    );
    if args.iter().any(|a| a == "--json") {
        let outcome = InjectOutcome {
            router: out.router.to_string(),
            num_leaves: topo.num_leaves(),
            comms: set.len(),
            faults: mask.num_faults(),
            rounds: out.rounds,
            power_units: out.power.total_units,
            degradation: report,
            audit_clean: audit.is_clean(),
        };
        match serde_json::to_string_pretty(&outcome) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize outcome: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!(
            "{} PEs, {} communications, {} faults injected (router {})",
            topo.num_leaves(),
            set.len(),
            mask.num_faults(),
            out.router
        );
        println!(
            "routed {} ({} rerouted), dropped {}, {} rounds ({} added by half-duplex splits), {} power units",
            report.routed,
            report.rerouted,
            report.dropped,
            out.rounds,
            report.extra_rounds,
            out.power.total_units
        );
        for d in &report.drops {
            println!("  dropped c{} ({} -> {}): {}", d.comm, d.source, d.dest, d.cause);
        }
        for r in &report.reroutes {
            println!("  rerouted c{} off the degraded edge above n{}", r.comm, r.edge);
        }
        if audit.is_clean() {
            println!("fault audit: clean");
        } else {
            print!("fault audit:\n{}", audit.render_text());
        }
    }
    std::process::exit(if audit.is_clean() { 0 } else { 1 });
}

/// Schedule a pattern and execute the verified schedule on cst-sim. With
/// `compiled`, also lower it into a replay program and pin the two
/// execution paths against each other; exit 1 on divergence.
fn sim_pattern(pattern: &str, router: &str, compiled: bool) {
    let (topo, set, out) = route_pattern(pattern, router);
    let sim = match cst_sim::simulate_schedule(&topo, &set, &out.schedule, None) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };
    let power = sim.meter.report(&topo);
    println!(
        "{} PEs, {} communications, {} rounds, {} cycles, {} deliveries (router {})",
        topo.num_leaves(),
        set.len(),
        sim.schedule.num_rounds(),
        sim.cycles,
        sim.deliveries.len(),
        out.router
    );
    println!(
        "power: {} total units, max {} per switch, max {} port transitions",
        power.total_units, power.max_units, power.max_port_transitions
    );
    if compiled {
        let replayed = cst_sim::CompiledProgram::compile(&topo, &set, &out.schedule)
            .and_then(|prog| prog.replay(None));
        let replayed = match replayed {
            Ok(r) => r,
            Err(e) => {
                eprintln!("compiled replay failed: {e}");
                std::process::exit(1);
            }
        };
        if replayed == sim {
            println!(
                "compiled replay: agrees with the interpreter ({} deliveries, {} cycles, {} power units)",
                replayed.deliveries.len(),
                replayed.cycles,
                power.total_units
            );
        } else {
            eprintln!("compiled replay DIVERGES from the interpreter");
            std::process::exit(1);
        }
    }
}

/// Run the deterministic `cst-faults` campaign and print its JSON report.
fn run_fault_campaign(seed: Option<u64>, quick: bool, backend: cst_faults::SimBackend) {
    let mut cfg = if quick {
        cst_faults::CampaignConfig {
            sizes: vec![16, 32],
            rates: vec![0.0, 0.05],
            routers: vec!["csa".to_string(), "greedy".to_string()],
            trials: 4,
            ..cst_faults::CampaignConfig::default()
        }
    } else {
        cst_faults::CampaignConfig::default()
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    let report = match cst_faults::run_campaign_with(&cfg, backend) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    match serde_json::to_string_pretty(&report) {
        Ok(s) => println!("{s}"),
        Err(e) => {
            eprintln!("cannot serialize report: {e}");
            std::process::exit(1);
        }
    }
}

/// Machine-readable `stream` report (`--json`). Every field above the
/// timing pair is a pure function of the flags; scripts/ci.sh strips
/// `elapsed_ns` / `requests_per_sec` and gates the rest against a golden.
#[derive(serde::Serialize)]
struct StreamReport {
    router: String,
    requests: usize,
    pes: usize,
    working: usize,
    repeat: f64,
    delta: usize,
    seed: u64,
    cache_capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
    entries: usize,
    total_rounds: usize,
    total_power_units: u64,
    elapsed_ns: u64,
    requests_per_sec: u64,
}

/// Parse one typed flag value with a default, exiting on malformed input.
fn typed_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("{flag} cannot parse {s}");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

/// One request's row in the machine-readable `decomp` report. Every
/// field is a pure function of the flags (no timings).
#[derive(serde::Serialize)]
struct DecompRow {
    workload: &'static str,
    pairs: usize,
    layers: usize,
    lower_bound: usize,
    proven_optimal: bool,
    rounds: usize,
    power_units: u64,
    cached_layers: usize,
    audit_errors: usize,
}

/// Machine-readable `decomp` report (`--report`). Byte-stable for fixed
/// flags; scripts/ci.sh gates it against `scripts/decomp_golden.json`.
#[derive(serde::Serialize)]
struct DecompReport {
    router: String,
    workload: String,
    requests: usize,
    pes: usize,
    pairs: usize,
    seed: u64,
    clean: bool,
    proven_optimal: usize,
    total_layers: usize,
    total_lower_bound: usize,
    cache_hits: u64,
    cache_misses: u64,
    rows: Vec<DecompRow>,
}

/// Seeded sweep of arbitrary (non-well-nested) sets through the layered
/// decomposition front-end, with the full three-stage audit per request:
/// `CST3xx` composition pass, static analysis of every sliced layer, and
/// reference-model schedule conformance of every sliced layer.
fn run_decomp_sweep(args: &[String]) {
    use rand::SeedableRng;
    let requests: usize = typed_flag(args, "--requests", 9);
    let pes: usize = typed_flag(args, "--pes", 64);
    let pairs: usize = typed_flag(args, "--pairs", 24);
    let seed: u64 = typed_flag(args, "--seed", 0);
    let workload: String = flag_value(args, "--workload").unwrap_or_else(|| "mixed".into());
    let router = router_arg(args);
    let families: &[&'static str] = match workload.as_str() {
        "matching" => &["matching"],
        "hotspot" => &["hotspot"],
        "bipartite" => &["bipartite"],
        "mixed" => &["matching", "hotspot", "bipartite"],
        other => {
            eprintln!("--workload wants matching|hotspot|bipartite|mixed, got {other}");
            std::process::exit(2);
        }
    };
    let Some(router_box) = cst_engine::find(&router) else {
        eprintln!("unknown router {router} (see cst-tools list-routers)");
        std::process::exit(2);
    };
    if pes < 4 || !pes.is_multiple_of(2) {
        eprintln!("--pes wants an even leaf count >= 4, got {pes}");
        std::process::exit(2);
    }

    let topo = cst_core::CstTopology::with_leaves(pes);
    let mut ctx = cst_engine::EngineCtx::new();
    ctx.enable_cache(cst_engine::DEFAULT_CACHE_CAPACITY);
    let layer_options = if router == "csa" {
        cst_check::CheckOptions::strict()
    } else {
        cst_check::CheckOptions::lenient()
    };
    let mut rows: Vec<DecompRow> = Vec::with_capacity(requests);
    let mut all_clean = true;
    for i in 0..requests {
        let family = families[i % families.len()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let gset = match family {
            "matching" => cst_workloads::arbitrary_permutation(&mut rng, pes),
            "hotspot" => cst_workloads::hotspot(&mut rng, pes, pairs.min(pes - 1)),
            _ => cst_workloads::random_bipartite(&mut rng, pes, pairs.min(pes * pes / 4)),
        };
        let out = match ctx.route_general_cached(router_box.as_ref(), &topo, &gset) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("request {i} ({family}): cannot route: {e}");
                std::process::exit(1);
            }
        };
        // The memo still holds this request's decomposition; audit the
        // composite against it, then each sliced layer on its own.
        let decomp = ctx.decomposition_for(&gset);
        let mut audit =
            cst_check::check_decomposition(&topo, &gset, decomp, &out.schedule, &out.layer_rounds);
        let mut offset = 0usize;
        for (j, layer_set) in decomp.layer_sets.iter().enumerate() {
            let band = out.layer_rounds[j];
            let layer = cst_decomp::slice_layer(&out.schedule, offset, band, &decomp.layers[j]);
            offset += band;
            audit.merge(cst_check::analyze(&topo, layer_set, &layer, &layer_options));
            audit.merge(cst_model::conform_schedule(layer_set, &layer, &[]));
        }
        if audit.has_errors() {
            all_clean = false;
            eprintln!("request {i} ({family}): audit findings:\n{}", audit.render_text());
        }
        rows.push(DecompRow {
            workload: family,
            pairs: gset.len(),
            layers: out.num_layers,
            lower_bound: out.lower_bound,
            proven_optimal: out.proven_optimal,
            rounds: out.rounds,
            power_units: out.power.total_units,
            cached_layers: out.cached_layers,
            audit_errors: audit.error_count(),
        });
        ctx.recycle_general(out);
    }
    let stats = ctx.cache_stats().unwrap_or_default();
    let report = DecompReport {
        router,
        workload,
        requests,
        pes,
        pairs,
        seed,
        clean: all_clean,
        proven_optimal: rows.iter().filter(|r| r.proven_optimal).count(),
        total_layers: rows.iter().map(|r| r.layers).sum(),
        total_lower_bound: rows.iter().map(|r| r.lower_bound).sum(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        rows,
    };
    if args.iter().any(|a| a == "--report" || a == "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize report: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!(
            "{} requests on {} PEs via {} (seed {}):",
            report.requests, report.pes, report.router, report.seed
        );
        for (i, r) in report.rows.iter().enumerate() {
            println!(
                "  #{i:<2} {:<9} {:>3} pairs -> {:>2} layers (bound {:>2}{}) {:>3} rounds \
                 {:>5} power units{}",
                r.workload,
                r.pairs,
                r.layers,
                r.lower_bound,
                if r.proven_optimal { ", optimal" } else { "" },
                r.rounds,
                r.power_units,
                if r.audit_errors == 0 { "" } else { "  AUDIT FINDINGS" },
            );
        }
        println!(
            "{} of {} proven optimal; {} layers total vs. {} certified lower bound; audits {}",
            report.proven_optimal,
            report.requests,
            report.total_layers,
            report.total_lower_bound,
            if report.clean { "clean" } else { "FAILED" },
        );
    }
    if !all_clean {
        std::process::exit(1);
    }
}

/// Replay a seeded request stream through the schedule cache and report
/// throughput + hit rate (see the stream model docs in the module header).
fn run_stream(args: &[String]) {
    use rand::{Rng, SeedableRng};
    let requests: usize = typed_flag(args, "--requests", 1000);
    let pes: usize = typed_flag(args, "--pes", 256);
    let density: f64 = typed_flag(args, "--density", 0.5);
    let working: usize = typed_flag(args, "--working", 8);
    let repeat: f64 = typed_flag(args, "--repeat", 0.75);
    let delta: usize = typed_flag(args, "--delta", 2);
    let seed: u64 = typed_flag(args, "--seed", 0);
    let cache_cap: usize = typed_flag(args, "--cache-cap", cst_engine::DEFAULT_CACHE_CAPACITY);
    let router = router_arg(args);
    if working == 0 || !(0.0..=1.0).contains(&repeat) || !(0.0..=1.0).contains(&density) {
        eprintln!("--working wants >= 1; --repeat and --density want probabilities in [0, 1]");
        std::process::exit(2);
    }

    let topo = cst_core::CstTopology::with_leaves(pes);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sets: Vec<cst_comm::CommSet> = (0..working)
        .map(|_| cst_workloads::well_nested_with_density(&mut rng, pes, density))
        .collect();

    let mut ctx = cst_engine::EngineCtx::new();
    ctx.enable_cache(cache_cap);
    let mut touched = Vec::new();
    let mut total_rounds = 0usize;
    let mut total_power_units = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..requests {
        let idx = rng.gen_range(0..sets.len());
        if !rng.gen_bool(repeat) {
            // Fresh work: drift this member by `delta` PE changes.
            let changes = cst_workloads::random_changes(&mut rng, &sets[idx], delta);
            touched.clear();
            if let Err(e) = sets[idx].apply_changes(&changes, &mut touched) {
                eprintln!("internal error: generated stream delta failed to apply: {e}");
                std::process::exit(1);
            }
        }
        match ctx.route_named_cached(&router, &topo, &sets[idx]) {
            Ok(out) => {
                total_rounds += out.rounds;
                total_power_units += out.power.total_units;
                ctx.recycle(out);
            }
            Err(e) => {
                eprintln!("cannot schedule request: {e}");
                std::process::exit(1);
            }
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let stats = ctx.cache_stats().unwrap_or_default();
    let requests_per_sec = if elapsed_ns == 0 {
        0
    } else {
        (requests as u128 * 1_000_000_000 / elapsed_ns as u128) as u64
    };
    let report = StreamReport {
        router,
        requests,
        pes,
        working,
        repeat,
        delta,
        seed,
        cache_capacity: cache_cap,
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        collisions: stats.collisions,
        entries: stats.entries,
        total_rounds,
        total_power_units,
        elapsed_ns,
        requests_per_sec,
    };
    if args.iter().any(|a| a == "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize report: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!(
            "{} requests over {} working sets ({} PEs, density {density}, repeat {}, delta {}, seed {}, router {})",
            report.requests,
            report.working,
            report.pes,
            report.repeat,
            report.delta,
            report.seed,
            report.router,
        );
        let hit_pct = if requests == 0 {
            0.0
        } else {
            100.0 * report.hits as f64 / requests as f64
        };
        println!(
            "cache: {} hits / {} misses ({hit_pct:.1}% hit rate), {} evictions, {} collisions, {} resident (cap {})",
            report.hits,
            report.misses,
            report.evictions,
            report.collisions,
            report.entries,
            report.cache_capacity,
        );
        println!(
            "work: {} total rounds, {} total power units",
            report.total_rounds, report.total_power_units
        );
        println!(
            "throughput: {} requests/sec ({:.3} ms total)",
            report.requests_per_sec,
            elapsed_ns as f64 / 1.0e6
        );
    }
}

/// Visualize a parenthesis pattern's schedule as ASCII trees.
fn viz_pattern(pattern: &str, router: &str) {
    let (topo, set, out) = route_pattern(pattern, router);
    print!("{}", viz::render_schedule(&topo, &set, &out.schedule));
}

/// Schedule a parenthesis pattern and emit the outcome as a JSON
/// [`cst_check::ScheduleBundle`] on stdout — the artifact `check` audits.
fn bundle_pattern(pattern: &str, router: &str) {
    let (topo, set, out) = route_pattern(pattern, router);
    // Phase-1 counters only apply to right-oriented sets; omit them when
    // the chosen router accepted a set the CSA front end would reject.
    let counters = cst_padr::phase1::run(&topo, &set).ok().map(|p1| p1.counter_table());
    let bundle = cst_check::ScheduleBundle::new(&set, out.schedule, counters);
    match serde_json::to_string_pretty(&bundle) {
        Ok(s) => println!("{s}"),
        Err(e) => {
            eprintln!("cannot serialize bundle: {e}");
            std::process::exit(1);
        }
    }
}

/// Statically analyze a schedule bundle file; exit 1 on any error finding.
fn check_bundle(path: &str, as_json: bool, lenient: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let bundle: cst_check::ScheduleBundle = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path} is not a schedule bundle: {e}");
            std::process::exit(1);
        }
    };
    let options =
        if lenient { cst_check::CheckOptions::lenient() } else { cst_check::CheckOptions::strict() };
    let report = match bundle.check(&options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bundle is structurally invalid: {e}");
            std::process::exit(1);
        }
    };
    if as_json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize report: {e}");
                std::process::exit(1);
            }
        }
    } else if report.is_clean() {
        println!(
            "{path}: clean ({} PEs, {} communications, {} rounds)",
            bundle.num_leaves,
            bundle.comms.len(),
            bundle.schedule.num_rounds()
        );
    } else {
        // render_text ends with the error/warning tally line.
        print!("{path}:\n{}", report.render_text());
    }
    std::process::exit(if report.has_errors() { 1 } else { 0 });
}

/// Schedule a parenthesis pattern and print the rounds.
fn schedule_pattern(pattern: &str, router: &str) {
    let (topo, set, out) = route_pattern(pattern, router);
    println!(
        "{} PEs, {} communications, width {} (router {})",
        topo.num_leaves(),
        set.len(),
        cst_comm::width_on_topology(&topo, &set),
        out.router
    );
    for (i, round) in out.schedule.rounds.iter().enumerate() {
        let pairs: Vec<String> = round
            .comms
            .iter()
            .map(|&id| {
                let c = &set.comms()[id.0];
                format!("{}->{}", c.source.0, c.dest.0)
            })
            .collect();
        println!("round {i}: {}", pairs.join("  "));
    }
    println!(
        "power: {} total units, max {} per switch, max {} port transitions",
        out.power.total_units, out.power.max_units, out.power.max_port_transitions
    );
}

/// Dispatch the `model` subcommand (see the module docs).
fn run_model(args: &[String]) {
    match args.get(1).map(String::as_str) {
        Some("enumerate") => model_enumerate(args),
        Some("conform") => model_conform(args),
        _ => {
            eprintln!(
                "usage: cst-tools model <enumerate|conform> [args]\n\
                 \x20 model enumerate [--max-n 8] [--seeded-n 16] [--seeded-pairs 3] \
                 [--placements 4] [--seed 1]\n\
                 \x20 model conform '((.))(..)' | model conform [--requests 50] \
                 [--pes 64] [--density 0.5] [--seed 1]"
            );
            std::process::exit(2);
        }
    }
}

/// Exhaustive + seeded state-space cross-check against the reference model.
fn model_enumerate(args: &[String]) {
    let max_n: usize = typed_flag(args, "--max-n", 8);
    let seeded_n: usize = typed_flag(args, "--seeded-n", 16);
    let seeded_pairs: usize = typed_flag(args, "--seeded-pairs", 3);
    let placements: usize = typed_flag(args, "--placements", 4);
    let seed: u64 = typed_flag(args, "--seed", 1);
    if !max_n.is_power_of_two() || max_n < 2 {
        eprintln!("--max-n wants a power of two >= 2");
        std::process::exit(2);
    }
    let report = cst_model::explore_all(max_n);
    print!("exhaustive n<={max_n}: {}", report.render());
    let mut clean = report.is_clean();
    if seeded_n > 0 {
        if !seeded_n.is_power_of_two() {
            eprintln!("--seeded-n wants a power of two (or 0 to disable)");
            std::process::exit(2);
        }
        let seeded = cst_model::explore_seeded(seeded_n, seeded_pairs, placements, seed);
        print!("seeded n={seeded_n} (pairs<={seeded_pairs}, {placements} placements, seed {seed}): {}",
            seeded.render());
        clean &= seeded.is_clean();
    }
    std::process::exit(if clean { 0 } else { 1 });
}

/// Replay emitter traces (and registry schedules) through the model.
fn model_conform(args: &[String]) {
    if let Some(pattern) = pattern_arg(&args[1..]) {
        model_conform_pattern(&pattern);
    } else {
        model_conform_sweep(args);
    }
}

/// One finding-aware report line; returns the number of errors.
fn conform_line(what: &str, report: &cst_core::DiagReport, detail: String) -> usize {
    if report.is_clean() {
        println!("{what}: conforms ({detail})");
    } else {
        println!("{what}: {} findings ({detail})", report.error_count());
        print!("{}", report.render_text());
    }
    report.error_count()
}

fn model_conform_pattern(pattern: &str) {
    let (topo, set) = parse_pattern(pattern);
    let mut errors = 0usize;
    let mut trace = cst_core::ProtocolTrace::new();

    // Emitter 1: the host CSA scheduler (complete sweeps, pruning off).
    let mut scratch = cst_padr::CsaScratch::new();
    let mut pool = cst_comm::SchedulePool::default();
    match scratch.schedule_traced(&topo, &set, &mut pool, &mut trace) {
        Ok(out) => {
            let report = cst_model::conform_trace(&set, &trace);
            errors += conform_line(
                "csa trace",
                &report,
                format!("{} rounds, {} events", trace.rounds.len(), trace.num_events()),
            );
            let report = cst_model::conform_schedule(&set, &out.schedule, &[]);
            errors +=
                conform_line("csa schedule", &report, format!("{} rounds", out.rounds()));
        }
        Err(e) => {
            eprintln!("csa scheduling failed: {e}");
            std::process::exit(1);
        }
    }

    // Emitter 2: the event-driven simulator.
    match cst_sim::simulate_traced(&topo, &set, None, &mut trace) {
        Ok(sim) => {
            let report = cst_model::conform_trace(&set, &trace);
            errors += conform_line(
                "sim trace",
                &report,
                format!("{} cycles, {} events", sim.cycles, trace.num_events()),
            );
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }

    // Emitter 3: the RTL switch machine.
    match cst_sim::RtlMachine::new(&topo, &set).run_to_completion_traced(&set, &mut trace) {
        Ok(schedule) => {
            let report = cst_model::conform_trace(&set, &trace);
            errors += conform_line(
                "rtl trace",
                &report,
                format!("{} rounds, {} events", schedule.num_rounds(), trace.num_events()),
            );
        }
        Err(e) => {
            eprintln!("rtl run failed: {e}");
            std::process::exit(1);
        }
    }

    // Every registry router's schedule, judged by the model's independent
    // circuit computation.
    let mut ctx = cst_engine::EngineCtx::new();
    for router in cst_engine::registry() {
        match ctx.route(router.as_ref(), &topo, &set) {
            Ok(out) => {
                let report = cst_model::conform_schedule(&set, &out.schedule, &[]);
                errors += conform_line(
                    &format!("schedule [{}]", router.name()),
                    &report,
                    format!("{} rounds", out.rounds),
                );
                ctx.recycle(out);
            }
            Err(e) => {
                println!("schedule [{}]: routing failed: {e}", router.name());
                errors += 1;
            }
        }
    }
    std::process::exit(if errors == 0 { 0 } else { 1 });
}

fn model_conform_sweep(args: &[String]) {
    use rand::SeedableRng;
    let requests: usize = typed_flag(args, "--requests", 50);
    let pes: usize = typed_flag(args, "--pes", 64);
    let density: f64 = typed_flag(args, "--density", 0.5);
    let seed: u64 = typed_flag(args, "--seed", 1);
    if !pes.is_power_of_two() || pes < 2 || !(0.0..=1.0).contains(&density) {
        eprintln!("--pes wants a power of two >= 2; --density a probability in [0, 1]");
        std::process::exit(2);
    }
    let topo = cst_core::CstTopology::with_leaves(pes);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut scratch = cst_padr::CsaScratch::new();
    let mut pool = cst_comm::SchedulePool::default();
    let mut trace = cst_core::ProtocolTrace::new();
    let (mut errors, mut rounds, mut events) = (0usize, 0usize, 0usize);
    for i in 0..requests {
        let set = cst_workloads::well_nested_with_density(&mut rng, pes, density);
        match scratch.schedule_traced(&topo, &set, &mut pool, &mut trace) {
            Ok(out) => {
                let r = cst_model::conform_trace(&set, &trace);
                if !r.is_clean() {
                    println!("set {i} ({} comms): trace diverges", set.len());
                    print!("{}", r.render_text());
                    errors += r.error_count();
                }
                let r = cst_model::conform_schedule(&set, &out.schedule, &[]);
                if !r.is_clean() {
                    println!("set {i} ({} comms): schedule diverges", set.len());
                    print!("{}", r.render_text());
                    errors += r.error_count();
                }
                rounds += out.rounds();
                events += trace.num_events();
            }
            Err(e) => {
                println!("set {i}: scheduling failed: {e}");
                errors += 1;
            }
        }
    }
    println!(
        "conformed {requests} seeded sets on {pes} PEs (density {density}, seed {seed}): \
         {rounds} rounds, {events} events, {errors} findings"
    );
    std::process::exit(if errors == 0 { 0 } else { 1 });
}
