//! EXPERIMENTS.md body generation: expected-vs-measured, one section per
//! experiment, from freshly-run tables.

use cst_analysis::Table;

/// Static interpretation text per experiment id: the paper anchor and the
/// expected shape (what a successful reproduction must show).
fn expectation(id: &str) -> (&'static str, &'static str) {
    match id {
        "E1" => (
            "Theorem 5 (optimality): a width-w oriented well-nested set is scheduled in exactly w rounds.",
            "csa column equals w in every row (hard-asserted at run time); roy equals w on random workloads but pays the nesting depth (3 vs 2) on the staircase family; sequential pays the set size.",
        ),
        "E2" => (
            "Theorem 8 + §5 contrast with [6]: CSA needs O(1) configuration changes per switch, the ID-based comparator O(w).",
            "csa_max_units / csa_max_port_transitions stay flat (<= 9) while w grows 128x; roy_max_wt_units tracks w (the hot apex participates in w rounds).",
        ),
        "E3" => (
            "§2.3 power model: total units across all switches.",
            "csa_hold is the lowest; roy_wt (per-round path establishment) exceeds it by a factor that grows with width; the roy/csa ratio column makes the multiplicative gap explicit.",
        ),
        "E4" => (
            "Theorem 5 (efficiency): O(1) words stored per switch and O(1) words exchanged per neighbor per round.",
            "words_stored_per_switch = 5 and max_words_per_switch_round = 6 at every size; totals scale only with N and rounds.",
        ),
        "E5" => (
            "Host-side scheduling throughput (not a paper claim; library-quality datum).",
            "near-linear scaling in N for all schedulers; CSA throughput in comms/ms stays in the same order across sizes.",
        ),
        "E6" => (
            "Theorem 8, distributional view across all switches.",
            "CSA mass pinned in the first buckets (constant per-switch cost); Roy write-through tail reaches ~w at the hot switches.",
        ),
        "E7" => (
            "§1 motivation: segmentable-bus traffic, end to end on the cycle-level simulator.",
            "rounds == bus levels (the width); cycles == log2(n) + rounds*(log2(n)+1); every payload delivered intact; energy saving grows with bus depth.",
        ),
        "E8" => (
            "§3 'main idea' ablation: outermost-first selection vs alternatives under hold-capable hardware.",
            "both nesting-monotone orders stay O(1) in per-port transitions; nesting-oblivious input order grows with w — monotonicity is the load-bearing property, outermost-first is the distributed-computable instance of it.",
        ),
        "E9" => (
            "§6 concluding remarks: 'other communication patterns' and 'computational algorithms' via PADR — implemented as the cst-srga and cst-apps extension crates.",
            "SRGA column_copy completes in 1 round at any size; reduce/broadcast take log n rounds; prefix sums pay Θ(n) rounds (tree bisection); odd-even sort exposes the documented limit — per-switch power grows with phase count because alternating phases defeat configuration retention.",
        ),
        "E10" => (
            "§1 PADR definition extended to set streams: 'satisfy all communications requirements that need this configuration ... before altering the switches' — applied across successive batches via a persistent session.",
            "width-1 repeats and disjoint alternations are nearly free (>80% saved: the tree is still configured); deep-nest repeats save only the boundary configuration (<20%); independent random batches only overlap incidentally — retention tracks boundary-configuration overlap, not batch similarity.",
        ),
        "E11" => (
            "§1: 'the well-nested sets is a superset of the communications required by the segmentable bus; a fundamental reconfigurable architecture' — executed via the cst-bus reference model and its CST emulation.",
            "one bus broadcast step costs 1 + log2(max segment) CSA rounds, each a width-1 well-nested set (one round by Theorem 5); reads verified against the reference bus semantics on every run.",
        ),
        "E12" => (
            "§1 motivation: dynamic reconfiguration is 'extremely fast' but 'increases the power requirement ... not acceptable in nowadays devices' — quantified by pricing bit-counting on the R-Mesh (the cited motivating model) against CST/PADR tree reduction under identical hold-semantics metering.",
            "R-Mesh: 1 step per input but Θ(n^2) reconfiguration power per fresh input; CST: log2(n) rounds but Θ(n) power; the power ratio grows ~linearly in n while the step ratio stays log n — the exact tradeoff PADR is designed to arbitrate.",
        ),
        _ => ("", ""),
    }
}

/// Render the full EXPERIMENTS.md body from run tables.
pub fn experiments_md(tables: &[Table], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper claims vs measured\n\n");
    out.push_str(
        "Generated by `cargo run --release -p cst-tools -- report`. The paper \
(El-Boghdadi, IPPS 2007) is a theory paper without numeric tables; each \
experiment below measures one of its claims (Theorems 4/5/8 and the \
contrast with Roy et al. [6]) on synthetic workloads. Assertions inside \
the experiment runners fail the run if a claim is violated, so a generated \
report is itself evidence the claims held.\n\n",
    );
    if quick {
        out.push_str("*(quick mode: reduced sweep sizes)*\n\n");
    }
    for t in tables {
        let (anchor, expected) = expectation(&t.id);
        out.push_str(&format!("## {} — {}\n\n", t.id, t.title));
        out.push_str(&format!("**Paper anchor.** {anchor}\n\n"));
        out.push_str(&format!("**Expected shape.** {expected}\n\n"));
        out.push_str("**Measured.**\n\n```text\n");
        out.push_str(&t.render_text());
        out.push_str("```\n\n");
    }
    out.push_str("## Verdict\n\n");
    out.push_str(
        "All hard assertions passed during generation: CSA rounds equalled the \
width everywhere (Theorem 5), per-switch port transitions never exceeded \
the constant bound (Theorem 8), every schedule verified as compatible and \
complete (Theorem 4), and the Roy-style comparator's per-switch cost grew \
linearly in w as the paper states for [6]. Separately, \
`tests/exhaustive_small.rs` certifies exact optimality (brute-force \
chromatic number == width == CSA rounds) and four-way implementation \
agreement over the entire space of well-nested patterns on 8 leaves.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_includes_every_table() {
        let mut t1 = Table::new("E1", "demo", &["a"]);
        t1.row(vec!["1".into()]);
        let t2 = Table::new("E7", "demo2", &["b"]);
        let md = experiments_md(&[t1, t2], true);
        assert!(md.contains("## E1"));
        assert!(md.contains("## E7"));
        assert!(md.contains("Theorem 5"));
        assert!(md.contains("quick mode"));
        assert!(md.contains("## Verdict"));
    }

    #[test]
    fn expectations_cover_all_ids() {
        for id in ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"] {
            let (a, e) = expectation(id);
            assert!(!a.is_empty() && !e.is_empty(), "{id} missing expectation");
        }
    }
}
