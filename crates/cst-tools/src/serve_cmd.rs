//! The `serve` and `bench-serve` subcommands (docs/SERVE.md).
//!
//! `serve` runs the cst-serve daemon in the foreground on a Unix socket
//! or TCP address. `bench-serve` is a seeded closed-loop load generator:
//! it connects to a running daemon (or self-hosts one on an ephemeral
//! loopback port), replays three phases — *uncached* (distinct sets,
//! every route a miss), *cached* (one warm set repeated), *soak*
//! (`--clients` threads over a drifting working set) — and reports
//! per-request latency (p50/p99 for the soak), throughput, and the
//! server's [`ServeStats`] snapshot. With `--herd <n>` a fourth
//! *thundering-herd* phase runs: `n` barrier-released connections
//! demand one fresh key (the single-flight layer must cost exactly one
//! engine computation), then hammer it warm for the contended-hit
//! p50/p99. With `--clients 1` and `--reset` (and no `--herd`), every
//! stats field is a pure function of the flags; scripts/ci.sh strips
//! the timing fields and gates the rest against
//! `scripts/serve_golden.json`.

use crate::{flag_value, typed_flag};
use cst_serve::{ServeClient, ServeConfig, Server, ServeStats};
use std::time::Instant;

fn serve_config(args: &[String]) -> ServeConfig {
    ServeConfig {
        workers: typed_flag(args, "--workers", 4),
        cache_capacity: typed_flag(args, "--cache-cap", 256),
        shard_bits: typed_flag(args, "--shard-bits", 2),
        ..ServeConfig::default()
    }
}

/// `cst-tools serve --unix <path> | --tcp <addr>`: run the daemon in the
/// foreground until killed (or `--max-seconds` elapse — a watchdog for
/// scripted runs, 0 = forever). `--ready-file <path>` writes the bound
/// address once listening, so scripts can wait for startup.
pub fn run_serve(args: &[String]) {
    let unix = flag_value(args, "--unix");
    let tcp = flag_value(args, "--tcp");
    let config = serve_config(args);
    let max_seconds: u64 = typed_flag(args, "--max-seconds", 0);
    let server = match (unix, tcp) {
        (Some(path), None) => Server::bind_unix(&path, config),
        (None, Some(addr)) => Server::bind_tcp(&addr, config),
        _ => {
            eprintln!(
                "usage: cst-tools serve --unix <path> | --tcp <addr> \
                 [--workers <n>] [--cache-cap <n>] [--shard-bits <n>] \
                 [--ready-file <path>] [--max-seconds <s>]"
            );
            std::process::exit(2);
        }
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            std::process::exit(1);
        }
    };
    let addr = match server.addr() {
        cst_serve::ServeAddr::Tcp(a) => format!("tcp:{a}"),
        cst_serve::ServeAddr::Unix(p) => format!("unix:{}", p.display()),
    };
    println!("cst-serve listening on {addr}");
    if let Some(ready) = flag_value(args, "--ready-file") {
        if let Err(e) = std::fs::write(&ready, &addr) {
            eprintln!("cannot write ready file {ready}: {e}");
            std::process::exit(1);
        }
    }
    let t0 = Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        if max_seconds > 0 && t0.elapsed().as_secs() >= max_seconds {
            println!("cst-serve: --max-seconds {max_seconds} elapsed, shutting down");
            server.shutdown();
            return;
        }
    }
}

/// Machine-readable `bench-serve` report. Everything above the timing
/// block is a pure function of the flags for `--clients 1` runs that
/// start from `--reset`; scripts/ci.sh strips the timing fields
/// (`*_ns*`, `speedup`, `*_per_sec`) and gates the rest.
#[derive(serde::Serialize)]
struct BenchServeReport {
    router: String,
    pes: usize,
    working: usize,
    requests: usize,
    clients: usize,
    herd: usize,
    /// `std::thread::available_parallelism()` on the bench host —
    /// context for the contended numbers (a single-core box serializes
    /// the herd, so coalescing shows up in computations, not latency).
    available_parallelism: usize,
    density: f64,
    repeat: f64,
    delta: usize,
    seed: u64,
    transport: String,
    soak_requests: usize,
    /// Stats-delta computations over the herd phase divided by its one
    /// fresh key: exactly 1 when the single-flight layer holds (0 when
    /// the phase is disabled).
    herd_computations_per_key: u64,
    stats: ServeStats,
    uncached_ns_per_req: u64,
    cached_ns_per_req: u64,
    speedup: f64,
    soak_p50_ns: u64,
    soak_p99_ns: u64,
    soak_requests_per_sec: u64,
    contended_hit_p50_ns: u64,
    contended_hit_p99_ns: u64,
    elapsed_ns: u64,
}

enum Target {
    Unix(String),
    Tcp(String),
}

impl Target {
    fn connect(&self) -> std::io::Result<ServeClient> {
        match self {
            Target::Unix(path) => ServeClient::connect_unix(path),
            Target::Tcp(addr) => ServeClient::connect_tcp(addr.as_str()),
        }
    }
}

fn die(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("bench-serve: {context}: {e}");
    std::process::exit(1);
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// `cst-tools bench-serve`: the seeded closed-loop load generator.
pub fn run_bench_serve(args: &[String]) {
    use rand::{Rng, SeedableRng};
    let router = crate::router_arg(args);
    let pes: usize = typed_flag(args, "--pes", 1024);
    let requests: usize = typed_flag(args, "--requests", 256);
    let working: usize = typed_flag(args, "--working", 8);
    let clients: usize = typed_flag(args, "--clients", 1);
    let density: f64 = typed_flag(args, "--density", 0.5);
    let repeat: f64 = typed_flag(args, "--repeat", 0.75);
    let delta: usize = typed_flag(args, "--delta", 2);
    let seed: u64 = typed_flag(args, "--seed", 0);
    let herd: usize = typed_flag(args, "--herd", 0);
    let reset = args.iter().any(|a| a == "--reset");
    if working == 0 || clients == 0 || !(0.0..=1.0).contains(&repeat) {
        eprintln!("--working and --clients want >= 1; --repeat wants a probability in [0, 1]");
        std::process::exit(2);
    }

    // Target: an external daemon, or a self-hosted one on an ephemeral
    // loopback port (no socket files; `serve --unix` covers that path).
    let mut hosted: Option<Server> = None;
    let (target, transport) = match (flag_value(args, "--unix"), flag_value(args, "--tcp")) {
        (Some(path), None) => (Target::Unix(path), "unix".to_string()),
        (None, Some(addr)) => (Target::Tcp(addr), "tcp".to_string()),
        (None, None) => {
            let server = match Server::bind_tcp("127.0.0.1:0", serve_config(args)) {
                Ok(s) => s,
                Err(e) => die("cannot self-host", e),
            };
            let Some(addr) = server.tcp_addr() else {
                die("cannot self-host", "no tcp address after bind")
            };
            hosted = Some(server);
            (Target::Tcp(addr.to_string()), "tcp-self-hosted".to_string())
        }
        _ => {
            eprintln!("--unix and --tcp are mutually exclusive");
            std::process::exit(2);
        }
    };

    let mut client = match target.connect() {
        Ok(c) => c,
        Err(e) => die("cannot connect", e),
    };
    if reset {
        if let Err(e) = client.reset() {
            die("reset failed", e);
        }
    }

    // Seeded working set, shared by all phases.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sets: Vec<cst_comm::CommSet> = (0..working)
        .map(|_| cst_workloads::well_nested_with_density(&mut rng, pes, density))
        .collect();

    let t_run = Instant::now();

    // Phase 1 — uncached: every working-set member routed once, each a
    // fresh miss (the server was just reset / freshly hosted).
    let t0 = Instant::now();
    for set in &sets {
        if let Err(e) = client.route(&router, set, None) {
            die("uncached route failed", e);
        }
    }
    let uncached_ns_per_req = (t0.elapsed().as_nanos() / working as u128) as u64;

    // Phase 2 — cached: one already-warm member repeated; every reply
    // comes straight from the shared payload cache.
    let t1 = Instant::now();
    for _ in 0..requests {
        if let Err(e) = client.route(&router, &sets[0], None) {
            die("cached route failed", e);
        }
    }
    let cached_ns_per_req = (t1.elapsed().as_nanos() / requests.max(1) as u128) as u64;

    // Phase 3 — soak: `clients` closed-loop threads, each replaying
    // `requests` requests over its own drifting copy of the working set
    // (repeat probability `repeat`, `delta` PE changes otherwise).
    let t2 = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * requests);
    let soak = |c: usize| -> Result<Vec<u64>, String> {
        let mut client = target.connect().map_err(|e| e.to_string())?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed.wrapping_add(1).wrapping_add(c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut sets = sets.clone();
        let mut touched = Vec::new();
        let mut lat = Vec::with_capacity(requests);
        for _ in 0..requests {
            let idx = rng.gen_range(0..sets.len());
            if !rng.gen_bool(repeat) {
                let changes = cst_workloads::random_changes(&mut rng, &sets[idx], delta);
                sets[idx].apply_changes(&changes, &mut touched).map_err(|e| e.to_string())?;
            }
            let t = Instant::now();
            client.route(&router, &sets[idx], None).map_err(|e| e.to_string())?;
            lat.push(t.elapsed().as_nanos() as u64);
        }
        Ok(lat)
    };
    let soak_results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients).map(|c| scope.spawn(move || soak(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client thread panicked".to_string())))
            .collect()
    });
    for r in soak_results {
        match r {
            Ok(lat) => latencies.extend(lat),
            Err(e) => die("soak client failed", e),
        }
    }
    let soak_elapsed_ns = t2.elapsed().as_nanos().max(1);
    latencies.sort_unstable();

    // Phase 4 (optional) — thundering herd: `herd` barrier-released
    // connections demand one *fresh* key (distinct derived seed, so no
    // earlier phase warmed it). The stats delta across the phase counts
    // engine computations: single-flight coalescing makes it exactly 1
    // however the arrivals interleave. The key is then hammered warm
    // from all connections at once for the contended-hit percentiles.
    let mut herd_computations_per_key = 0u64;
    let mut contended_latencies: Vec<u64> = Vec::new();
    if herd > 0 {
        let mut herd_rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ 0xE16_CAFE_F00D);
        let herd_set = cst_workloads::well_nested_with_density(&mut herd_rng, pes, density);
        let before = match client.stats() {
            Ok(s) => s,
            Err(e) => die("pre-herd stats fetch failed", e),
        };
        let barrier = std::sync::Barrier::new(herd);
        let herd_run = |_c: usize| -> Result<Vec<u64>, String> {
            let mut client = target.connect().map_err(|e| e.to_string())?;
            barrier.wait();
            client.route(&router, &herd_set, None).map_err(|e| e.to_string())?;
            let mut lat = Vec::with_capacity(requests);
            for _ in 0..requests {
                let t = Instant::now();
                client.route(&router, &herd_set, None).map_err(|e| e.to_string())?;
                lat.push(t.elapsed().as_nanos() as u64);
            }
            Ok(lat)
        };
        let herd_results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..herd).map(|c| scope.spawn(move || herd_run(c))).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("herd thread panicked".to_string())))
                .collect()
        });
        for r in herd_results {
            match r {
                Ok(lat) => contended_latencies.extend(lat),
                Err(e) => die("herd client failed", e),
            }
        }
        let after = match client.stats() {
            Ok(s) => s,
            Err(e) => die("post-herd stats fetch failed", e),
        };
        herd_computations_per_key = after.computations.saturating_sub(before.computations);
        contended_latencies.sort_unstable();
    }

    let stats = match client.stats() {
        Ok(s) => s,
        Err(e) => die("stats fetch failed", e),
    };

    let report = BenchServeReport {
        router,
        pes,
        working,
        requests,
        clients,
        herd,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        density,
        repeat,
        delta,
        seed,
        transport,
        soak_requests: latencies.len(),
        herd_computations_per_key,
        stats,
        uncached_ns_per_req,
        cached_ns_per_req,
        speedup: if cached_ns_per_req == 0 {
            0.0
        } else {
            uncached_ns_per_req as f64 / cached_ns_per_req as f64
        },
        soak_p50_ns: percentile(&latencies, 50),
        soak_p99_ns: percentile(&latencies, 99),
        soak_requests_per_sec: (latencies.len() as u128 * 1_000_000_000 / soak_elapsed_ns) as u64,
        contended_hit_p50_ns: percentile(&contended_latencies, 50),
        contended_hit_p99_ns: percentile(&contended_latencies, 99),
        elapsed_ns: t_run.elapsed().as_nanos() as u64,
    };

    if let Some(path) = flag_value(args, "--bench-json") {
        // With a herd phase the run measures the contended hit path and
        // emits the E16 ids; without one it is the E15 serve baseline.
        let json = if herd > 0 {
            format!(
                "{{\n  \"e16_herd/contended-hit-p50/{pes}\": {},\n  \
                 \"e16_herd/contended-hit-p99/{pes}\": {},\n  \
                 \"e16_herd/computations-per-key/{pes}\": {}\n}}\n",
                report.contended_hit_p50_ns,
                report.contended_hit_p99_ns,
                report.herd_computations_per_key,
            )
        } else {
            format!(
                "{{\n  \"e15_serve/uncached/{pes}\": {},\n  \"e15_serve/cached/{pes}\": {},\n  \
                 \"e15_serve/soak-p50/{pes}\": {},\n  \"e15_serve/soak-p99/{pes}\": {}\n}}\n",
                report.uncached_ns_per_req,
                report.cached_ns_per_req,
                report.soak_p50_ns,
                report.soak_p99_ns,
            )
        };
        if let Err(e) = std::fs::write(&path, json) {
            die("cannot write bench json", e);
        }
    }

    if args.iter().any(|a| a == "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => die("cannot serialize report", e),
        }
    } else {
        println!(
            "{} working sets on {} PEs via {} over {} (seed {}, {} clients x {} soak requests)",
            report.working,
            report.pes,
            report.router,
            report.transport,
            report.seed,
            report.clients,
            report.requests,
        );
        println!(
            "uncached {} ns/req, cached {} ns/req ({:.1}x), soak p50 {} ns p99 {} ns ({} req/s)",
            report.uncached_ns_per_req,
            report.cached_ns_per_req,
            report.speedup,
            report.soak_p50_ns,
            report.soak_p99_ns,
            report.soak_requests_per_sec,
        );
        if report.herd > 0 {
            println!(
                "herd: {} connections x 1 fresh key = {} computation(s); \
                 contended hit p50 {} ns p99 {} ns ({} cores)",
                report.herd,
                report.herd_computations_per_key,
                report.contended_hit_p50_ns,
                report.contended_hit_p99_ns,
                report.available_parallelism,
            );
        }
        let s = &report.stats;
        println!(
            "server: {} requests, {} responses, {} errors; cache {} hits / {} misses \
             ({} tier hits), {} collisions, {} evictions across {} shards; \
             {} computations, {} flight leaders, {} coalesced waits",
            s.requests,
            s.responses,
            s.errors,
            s.cache.hits,
            s.cache.misses,
            s.cache.tier_hits,
            s.cache.collisions,
            s.cache.evictions,
            s.shards.len(),
            s.computations,
            s.singleflight_leaders,
            s.coalesced_waits,
        );
    }

    if let Some(server) = hosted {
        server.shutdown();
    }
}
