//! The SRGA processing-element grid (Sidhu et al., FPL 2000 — the paper's
//! reference [7]).
//!
//! The Self-Reconfigurable Gate Array is a 2D array of PEs in which every
//! **row** and every **column** is internally connected by its own circuit
//! switched tree. Routing between arbitrary PEs is therefore a
//! composition of 1D CST communications — which is exactly what the
//! paper's CSA schedules power-optimally.

use cst_core::{CstError, CstTopology, LeafId};
use serde::{Deserialize, Serialize};

/// A PE coordinate: `row` selects the row CST, `col` the position in it
/// (and vice versa for column CSTs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Coord {
    pub row: usize,
    pub col: usize,
}

impl Coord {
    /// Shorthand constructor.
    pub fn at(row: usize, col: usize) -> Coord {
        Coord { row, col }
    }
}

impl core::fmt::Display for Coord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// An `rows x cols` SRGA grid. Both dimensions are powers of two (every
/// row/column hosts a complete binary CST).
#[derive(Clone, Debug)]
pub struct SrgaGrid {
    rows: usize,
    cols: usize,
    /// Topology shared by every row CST (they are all the same shape).
    row_topo: CstTopology,
    /// Topology shared by every column CST.
    col_topo: CstTopology,
}

impl SrgaGrid {
    /// Build a grid; both dimensions must be powers of two, at least 2.
    pub fn new(rows: usize, cols: usize) -> Result<SrgaGrid, CstError> {
        Ok(SrgaGrid {
            rows,
            cols,
            row_topo: CstTopology::new(cols)?,
            col_topo: CstTopology::new(rows)?,
        })
    }

    /// Convenience square-grid constructor that panics on bad sizes.
    pub fn square(n: usize) -> SrgaGrid {
        SrgaGrid::new(n, n).expect("grid dimensions must be powers of two >= 2")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total PEs.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// The topology of every row CST (`cols` leaves).
    pub fn row_topology(&self) -> &CstTopology {
        &self.row_topo
    }

    /// The topology of every column CST (`rows` leaves).
    pub fn col_topology(&self) -> &CstTopology {
        &self.col_topo
    }

    /// True if `c` is a valid coordinate.
    pub fn contains(&self, c: Coord) -> bool {
        c.row < self.rows && c.col < self.cols
    }

    /// Leaf of `c` within its row CST.
    pub fn row_leaf(&self, c: Coord) -> LeafId {
        debug_assert!(self.contains(c));
        LeafId(c.col)
    }

    /// Leaf of `c` within its column CST.
    pub fn col_leaf(&self, c: Coord) -> LeafId {
        debug_assert!(self.contains(c));
        LeafId(c.row)
    }

    /// Total switches across all row and column CSTs.
    pub fn num_switches(&self) -> usize {
        self.rows * self.row_topo.num_switches() + self.cols * self.col_topo.num_switches()
    }

    /// Iterate all coordinates row-major.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| Coord::at(r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let g = SrgaGrid::new(4, 8).unwrap();
        assert_eq!(g.rows(), 4);
        assert_eq!(g.cols(), 8);
        assert_eq!(g.num_pes(), 32);
        assert_eq!(g.row_topology().num_leaves(), 8);
        assert_eq!(g.col_topology().num_leaves(), 4);
        // 4 rows x 7 switches + 8 cols x 3 switches
        assert_eq!(g.num_switches(), 4 * 7 + 8 * 3);
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(SrgaGrid::new(3, 8).is_err());
        assert!(SrgaGrid::new(8, 0).is_err());
        assert!(SrgaGrid::new(1, 8).is_err());
    }

    #[test]
    fn coordinate_mapping() {
        let g = SrgaGrid::square(4);
        let c = Coord::at(2, 3);
        assert!(g.contains(c));
        assert!(!g.contains(Coord::at(4, 0)));
        assert_eq!(g.row_leaf(c), LeafId(3));
        assert_eq!(g.col_leaf(c), LeafId(2));
    }

    #[test]
    fn coords_cover_grid() {
        let g = SrgaGrid::new(2, 4).unwrap();
        let all: Vec<Coord> = g.coords().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], Coord::at(0, 0));
        assert_eq!(all[7], Coord::at(1, 3));
    }
}
