//! # cst-srga — the Self-Reconfigurable Gate Array substrate
//!
//! The architecture the CST comes from (Sidhu et al., FPL 2000 — the
//! paper's reference [7]): a 2D array of PEs where every row and every
//! column is internally connected by its own circuit switched tree.
//!
//! * [`grid`] — the PE grid and its row/column CST topologies;
//! * [`router`] — dimension-ordered (row-then-column) routing of 2D
//!   communications in waves, each 1D phase scheduled by the power-aware
//!   universal CSA front end;
//! * [`algorithms`] — canonical patterns: transpose, cyclic shifts,
//!   column copies, arbitrary permutations.

pub mod algorithms;
pub mod grid;
pub mod router;

pub use algorithms::{column_copy, permutation, row_shift, transpose};
pub use grid::{Coord, SrgaGrid};
pub use router::{route, Comm2d, RouteOutcome, Wave};
