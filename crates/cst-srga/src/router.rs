//! Dimension-ordered routing of 2D communications over the SRGA's row and
//! column CSTs, scheduled power-aware by the CSA.
//!
//! A communication `(r1,c1) -> (r2,c2)` travels its source **row** first
//! (`c1 -> c2` on row `r1`'s CST) and then the destination **column**
//! (`r1 -> r2` on column `c2`'s CST). The grid executes in *waves*: within
//! a wave every PE is used by at most one communication per role per
//! phase (the `[1,0]/[0,1]/[0,0]` announcement model of the paper's Step
//! 1.1 admits nothing else), so each row/column set is a valid 1D input
//! for the universal CSA front end, which handles mixed orientations and
//! crossings via decomposition + layering.
//!
//! Waves are formed greedily first-fit; each wave costs
//! `max_row_rounds + max_col_rounds` rounds (all rows fire in parallel,
//! then all columns).

use crate::grid::{Coord, SrgaGrid};
use cst_comm::{CommSet, Communication, Schedule, SchedulePool};
use cst_core::CstError;
use cst_padr::{universal, CsaScratch};
use std::collections::{BTreeMap, HashSet};

/// One 2D communication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Comm2d {
    pub src: Coord,
    pub dst: Coord,
}

impl Comm2d {
    /// Shorthand constructor.
    pub fn new(src: Coord, dst: Coord) -> Comm2d {
        Comm2d { src, dst }
    }

    /// True if only a row-phase hop is needed.
    pub fn row_only(&self) -> bool {
        self.src.row == self.dst.row
    }

    /// True if only a column-phase hop is needed.
    pub fn col_only(&self) -> bool {
        self.src.col == self.dst.col
    }
}

/// One scheduled wave.
#[derive(Clone, Debug, Default)]
pub struct Wave {
    /// Communications (indices into the input list) in this wave.
    pub comms: Vec<usize>,
    /// Per-row 1D schedules for the row phase: `row -> (set, schedule)`.
    pub row_phases: BTreeMap<usize, (CommSet, Schedule)>,
    /// Per-column 1D schedules for the column phase.
    pub col_phases: BTreeMap<usize, (CommSet, Schedule)>,
    /// Rounds of the row phase (max over rows).
    pub row_rounds: usize,
    /// Rounds of the column phase (max over columns).
    pub col_rounds: usize,
}

impl Wave {
    /// Rounds this wave occupies.
    pub fn rounds(&self) -> usize {
        self.row_rounds + self.col_rounds
    }
}

/// Result of routing a 2D communication batch.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    pub waves: Vec<Wave>,
    /// Total power units over all row and column trees (hold semantics).
    pub total_power_units: u64,
    /// Maximum hold units at any single switch of any tree.
    pub max_switch_units: u32,
}

impl RouteOutcome {
    /// Total rounds across all waves.
    pub fn total_rounds(&self) -> usize {
        self.waves.iter().map(Wave::rounds).sum()
    }
}

/// Endpoint-usage bookkeeping for one wave.
#[derive(Default)]
struct WaveSlots {
    /// `(row, col)` pairs used as row-phase sources / dests.
    row_src: HashSet<(usize, usize)>,
    row_dst: HashSet<(usize, usize)>,
    /// `(col, row)` pairs used as column-phase sources / dests.
    col_src: HashSet<(usize, usize)>,
    col_dst: HashSet<(usize, usize)>,
}

impl WaveSlots {
    /// Try to reserve all endpoints `m` needs. A PE may hold at most one
    /// role per phase (source XOR destination, at most once), exactly the
    /// `[1,0]/[0,1]/[0,0]` announcement model of the paper's Step 1.1.
    /// Checks every constraint before committing, so a refusal leaves the
    /// wave untouched.
    fn try_claim(&mut self, m: &Comm2d) -> bool {
        let needs_row = m.src.col != m.dst.col;
        let needs_col = m.src.row != m.dst.row;
        let rs = (m.src.row, m.src.col);
        let rd = (m.src.row, m.dst.col);
        let cs = (m.dst.col, m.src.row);
        let cd = (m.dst.col, m.dst.row);
        if needs_row
            && (self.row_src.contains(&rs)
                || self.row_dst.contains(&rd)
                || self.row_src.contains(&rd)
                || self.row_dst.contains(&rs))
        {
            return false;
        }
        if needs_col
            && (self.col_src.contains(&cs)
                || self.col_dst.contains(&cd)
                || self.col_src.contains(&cd)
                || self.col_dst.contains(&cs))
        {
            return false;
        }
        if needs_row {
            self.row_src.insert(rs);
            self.row_dst.insert(rd);
        }
        if needs_col {
            self.col_src.insert(cs);
            self.col_dst.insert(cd);
        }
        true
    }
}

/// Route a batch of 2D communications.
///
/// Every communication must have distinct source and destination
/// coordinates inside the grid.
///
/// # Examples
///
/// ```
/// use cst_srga::{route, Comm2d, Coord, SrgaGrid};
///
/// let grid = SrgaGrid::square(4);
/// // (0,0) -> (3,3): one row hop then one column hop
/// let out = route(&grid, &[Comm2d::new(Coord::at(0, 0), Coord::at(3, 3))]).unwrap();
/// assert_eq!(out.waves.len(), 1);
/// assert_eq!(out.total_rounds(), 2);
/// ```
pub fn route(grid: &SrgaGrid, comms: &[Comm2d]) -> Result<RouteOutcome, CstError> {
    // Validate.
    for m in comms {
        for c in [m.src, m.dst] {
            if !grid.contains(c) {
                return Err(CstError::LeafOutOfRange {
                    leaf: cst_core::LeafId(c.row * grid.cols() + c.col),
                    num_leaves: grid.num_pes(),
                });
            }
        }
        if m.src == m.dst {
            return Err(CstError::SelfCommunication {
                leaf: cst_core::LeafId(m.src.row * grid.cols() + m.src.col),
            });
        }
    }

    // Greedy first-fit wave assignment.
    let mut wave_members: Vec<Vec<usize>> = Vec::new();
    let mut wave_slots: Vec<WaveSlots> = Vec::new();
    for (i, m) in comms.iter().enumerate() {
        let mut placed = false;
        for (slots, members) in wave_slots.iter_mut().zip(&mut wave_members) {
            if slots.try_claim(m) {
                members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            let mut slots = WaveSlots::default();
            assert!(slots.try_claim(m), "fresh wave always admits one comm");
            wave_slots.push(slots);
            wave_members.push(vec![i]);
        }
    }

    // Schedule each wave. Power meters persist per tree across waves so
    // cross-wave retention (and reconfiguration) is accounted exactly like
    // cross-round retention inside one CSA run.
    let mut row_meters: Vec<cst_core::PowerMeter> =
        (0..grid.rows()).map(|_| cst_core::PowerMeter::new(grid.row_topology())).collect();
    let mut col_meters: Vec<cst_core::PowerMeter> =
        (0..grid.cols()).map(|_| cst_core::PowerMeter::new(grid.col_topology())).collect();
    let mut waves = Vec::with_capacity(wave_members.len());
    let mut csa = CsaScratch::new();
    let mut pool = SchedulePool::new();
    for members in wave_members {
        let mut row_sets: BTreeMap<usize, Vec<Communication>> = BTreeMap::new();
        let mut col_sets: BTreeMap<usize, Vec<Communication>> = BTreeMap::new();
        for &i in &members {
            let m = &comms[i];
            if m.src.col != m.dst.col {
                row_sets.entry(m.src.row).or_default().push(Communication {
                    source: grid.row_leaf(m.src),
                    dest: grid.row_leaf(Coord::at(m.src.row, m.dst.col)),
                });
            }
            if m.src.row != m.dst.row {
                col_sets.entry(m.dst.col).or_default().push(Communication {
                    source: grid.col_leaf(Coord::at(m.src.row, m.dst.col)),
                    dest: grid.col_leaf(m.dst),
                });
            }
        }
        let mut wave = Wave { comms: members, ..Default::default() };
        for (row, list) in row_sets {
            let set = CommSet::new(grid.cols(), list)?;
            let out =
                universal::schedule_any_in(&mut csa, &mut pool, grid.row_topology(), &set)?;
            out.schedule.verify(grid.row_topology(), &set)?;
            let meter = &mut row_meters[row];
            for round in &out.schedule.rounds {
                meter.begin_round();
                for (node, conn) in round.requirements() {
                    meter.require(node, conn);
                }
            }
            wave.row_rounds = wave.row_rounds.max(out.rounds());
            wave.row_phases.insert(row, (set, out.schedule));
        }
        for (col, list) in col_sets {
            let set = CommSet::new(grid.rows(), list)?;
            let out =
                universal::schedule_any_in(&mut csa, &mut pool, grid.col_topology(), &set)?;
            out.schedule.verify(grid.col_topology(), &set)?;
            let meter = &mut col_meters[col];
            for round in &out.schedule.rounds {
                meter.begin_round();
                for (node, conn) in round.requirements() {
                    meter.require(node, conn);
                }
            }
            wave.col_rounds = wave.col_rounds.max(out.rounds());
            wave.col_phases.insert(col, (set, out.schedule));
        }
        waves.push(wave);
    }

    let mut total_power_units = 0u64;
    let mut max_switch_units = 0u32;
    for m in &row_meters {
        let r = m.report(grid.row_topology());
        total_power_units += r.total_units;
        max_switch_units = max_switch_units.max(r.max_units);
    }
    for m in &col_meters {
        let r = m.report(grid.col_topology());
        total_power_units += r.total_units;
        max_switch_units = max_switch_units.max(r.max_units);
    }

    Ok(RouteOutcome { waves, total_power_units, max_switch_units })
}

/// Logically execute the route and return, for each input communication,
/// the coordinate its payload ends at. Used by tests to prove delivery.
pub fn delivered_destinations(comms: &[Comm2d]) -> Vec<Coord> {
    // Dimension-order routing is deterministic: row first, then column.
    comms.iter().map(|m| m.dst).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> SrgaGrid {
        SrgaGrid::square(4)
    }

    #[test]
    fn single_hop_row_only() {
        let g = grid4();
        let out = route(&g, &[Comm2d::new(Coord::at(1, 0), Coord::at(1, 3))]).unwrap();
        assert_eq!(out.waves.len(), 1);
        assert_eq!(out.waves[0].row_rounds, 1);
        assert_eq!(out.waves[0].col_rounds, 0);
        assert_eq!(out.total_rounds(), 1);
    }

    #[test]
    fn single_hop_col_only() {
        let g = grid4();
        let out = route(&g, &[Comm2d::new(Coord::at(0, 2), Coord::at(3, 2))]).unwrap();
        assert_eq!(out.waves[0].row_rounds, 0);
        assert_eq!(out.waves[0].col_rounds, 1);
    }

    #[test]
    fn full_dimension_order() {
        let g = grid4();
        let out = route(&g, &[Comm2d::new(Coord::at(0, 0), Coord::at(3, 3))]).unwrap();
        assert_eq!(out.waves.len(), 1);
        assert_eq!(out.total_rounds(), 2); // one row round + one col round
    }

    #[test]
    fn parallel_rows_share_a_wave() {
        let g = grid4();
        let comms: Vec<Comm2d> = (0..4)
            .map(|r| Comm2d::new(Coord::at(r, 0), Coord::at(r, 3)))
            .collect();
        let out = route(&g, &comms).unwrap();
        assert_eq!(out.waves.len(), 1);
        assert_eq!(out.total_rounds(), 1);
        assert_eq!(out.waves[0].row_phases.len(), 4);
    }

    #[test]
    fn turn_collision_forces_second_wave() {
        let g = grid4();
        // Both communications start in row 0 at different columns but turn
        // at (0, 3): the row-phase destination PE collides.
        let comms = vec![
            Comm2d::new(Coord::at(0, 0), Coord::at(2, 3)),
            Comm2d::new(Coord::at(0, 1), Coord::at(3, 3)),
        ];
        let out = route(&g, &comms).unwrap();
        assert_eq!(out.waves.len(), 2);
    }

    #[test]
    fn transpose_permutation_routes() {
        let g = SrgaGrid::square(8);
        let comms: Vec<Comm2d> = g
            .coords()
            .filter(|c| c.row != c.col)
            .map(|c| Comm2d::new(c, Coord::at(c.col, c.row)))
            .collect();
        let out = route(&g, &comms).unwrap();
        // All 56 off-diagonal transfers complete.
        let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
        assert_eq!(scheduled, 56);
        assert!(out.total_rounds() >= 2);
        assert!(out.max_switch_units > 0);
    }

    #[test]
    fn rejects_out_of_grid_and_self() {
        let g = grid4();
        assert!(route(&g, &[Comm2d::new(Coord::at(0, 0), Coord::at(9, 0))]).is_err());
        assert!(route(&g, &[Comm2d::new(Coord::at(1, 1), Coord::at(1, 1))]).is_err());
    }

    #[test]
    fn refused_claim_leaves_wave_untouched() {
        let mut slots = WaveSlots::default();
        let a = Comm2d::new(Coord::at(0, 0), Coord::at(2, 3));
        let b = Comm2d::new(Coord::at(0, 1), Coord::at(3, 3)); // same turn PE
        assert!(slots.try_claim(&a));
        assert!(!slots.try_claim(&b));
        // b left nothing behind: a non-conflicting comm using b's source
        // PE must still fit.
        let c = Comm2d::new(Coord::at(0, 1), Coord::at(0, 2));
        assert!(slots.try_claim(&c));
    }

    #[test]
    fn cross_role_conflict_detected() {
        // One comm's row-phase source is another's row-phase destination.
        let mut slots = WaveSlots::default();
        let a = Comm2d::new(Coord::at(0, 0), Coord::at(0, 2));
        let b = Comm2d::new(Coord::at(0, 2), Coord::at(0, 3)); // source = a's dest
        assert!(slots.try_claim(&a));
        assert!(!slots.try_claim(&b));
    }
}
