//! Canonical SRGA communication patterns built on the router: the
//! workloads an SRGA-style reconfigurable array actually runs.

use crate::grid::{Coord, SrgaGrid};
use crate::router::{route, Comm2d, RouteOutcome};
use cst_core::CstError;

/// Matrix transpose: PE `(r,c)` sends to `(c,r)` (diagonal PEs keep their
/// data). A classic all-to-all-ish permutation with heavy turn pressure.
pub fn transpose(grid: &SrgaGrid) -> Result<RouteOutcome, CstError> {
    assert_eq!(grid.rows(), grid.cols(), "transpose needs a square grid");
    let comms: Vec<Comm2d> = grid
        .coords()
        .filter(|c| c.row != c.col)
        .map(|c| Comm2d::new(c, Coord::at(c.col, c.row)))
        .collect();
    route(grid, &comms)
}

/// Cyclic row shift: every PE sends to the PE `k` columns to the right
/// (wrapping). Wrapping splits each row set into a right-oriented and a
/// left-oriented part, exercising the orientation decomposition.
pub fn row_shift(grid: &SrgaGrid, k: usize) -> Result<RouteOutcome, CstError> {
    let cols = grid.cols();
    let k = k % cols;
    assert!(k != 0, "zero shift moves nothing");
    let comms: Vec<Comm2d> = grid
        .coords()
        .map(|c| Comm2d::new(c, Coord::at(c.row, (c.col + k) % cols)))
        .collect();
    route(grid, &comms)
}

/// Broadcast column `src_col` to column `dst_col` across all rows: a
/// perfectly parallel width-1 pattern (one round total when the columns
/// differ).
pub fn column_copy(
    grid: &SrgaGrid,
    src_col: usize,
    dst_col: usize,
) -> Result<RouteOutcome, CstError> {
    assert_ne!(src_col, dst_col);
    let comms: Vec<Comm2d> = (0..grid.rows())
        .map(|r| Comm2d::new(Coord::at(r, src_col), Coord::at(r, dst_col)))
        .collect();
    route(grid, &comms)
}

/// Route an arbitrary permutation given as `perm[i] = destination PE index
/// (row-major)` of source PE `i`. Fixed points are skipped.
pub fn permutation(grid: &SrgaGrid, perm: &[usize]) -> Result<RouteOutcome, CstError> {
    assert_eq!(perm.len(), grid.num_pes(), "permutation must cover the grid");
    let cols = grid.cols();
    let comms: Vec<Comm2d> = perm
        .iter()
        .enumerate()
        .filter(|&(i, &d)| i != d)
        .map(|(i, &d)| {
            Comm2d::new(Coord::at(i / cols, i % cols), Coord::at(d / cols, d % cols))
        })
        .collect();
    route(grid, &comms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn transpose_completes() {
        let g = SrgaGrid::square(8);
        let out = transpose(&g).unwrap();
        let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
        assert_eq!(scheduled, 8 * 8 - 8);
    }

    #[test]
    fn row_shift_is_single_phase() {
        let g = SrgaGrid::square(4);
        let out = row_shift(&g, 1).unwrap();
        // row-only traffic: no column phases anywhere
        assert!(out.waves.iter().all(|w| w.col_phases.is_empty()));
        let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
        assert_eq!(scheduled, 16);
    }

    #[test]
    fn row_shift_wrap_mixes_orientations() {
        let g = SrgaGrid::square(8);
        let out = row_shift(&g, 3).unwrap();
        // wrapped comms are left-oriented; unwrapped are right-oriented —
        // the row sets contain both, and scheduling still succeeds.
        let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
        assert_eq!(scheduled, 64);
    }

    #[test]
    fn column_copy_one_round() {
        let g = SrgaGrid::square(8);
        let out = column_copy(&g, 0, 7).unwrap();
        assert_eq!(out.waves.len(), 1);
        assert_eq!(out.total_rounds(), 1);
    }

    #[test]
    fn random_permutations_route() {
        let g = SrgaGrid::square(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let mut perm: Vec<usize> = (0..16).collect();
            perm.shuffle(&mut rng);
            let out = permutation(&g, &perm).unwrap();
            let moved = perm.iter().enumerate().filter(|&(i, &d)| i != d).count();
            let scheduled: usize = out.waves.iter().map(|w| w.comms.len()).sum();
            assert_eq!(scheduled, moved);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_rejects_rectangles() {
        let g = SrgaGrid::new(4, 8).unwrap();
        let _ = transpose(&g);
    }
}
