//! Node identifiers for the complete binary tree underlying the CST.
//!
//! The CST ("circuit switched tree", Sidhu et al. 2000; El-Boghdadi et al.
//! 2002) is a complete binary tree with `N = 2^k` leaves. Leaves are
//! processing elements (PEs); internal nodes are 3-sided switches.
//!
//! We use the classic implicit heap layout: the root is node `1`, the
//! children of node `i` are `2i` and `2i + 1`. For a tree with `N` leaves
//! the internal nodes occupy indices `1 ..= N-1` and the leaves occupy
//! `N ..= 2N-1`, so leaf `j` (zero-based, left to right) is node `N + j`.
//! Index `0` is never a valid node.
//!
//! This layout makes parent/child/level arithmetic branch-free, which keeps
//! per-round sweeps of the scheduler cheap (Theorem 5 of the paper requires
//! only constant work per switch per round; the host-side driver adds only
//! this index arithmetic on top).

use serde::{Deserialize, Serialize};

/// Identifier of a node (switch or PE) in heap layout.
///
/// `NodeId` is deliberately a thin transparent wrapper over `usize` so that
/// dense per-node state tables can be indexed directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct NodeId(pub usize);

/// Identifier of a leaf (PE), zero-based from the left.
///
/// Distinct from [`NodeId`] to keep "position on the bus" (what
/// well-nestedness is defined over) apart from "position in the heap".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct LeafId(pub usize);

impl NodeId {
    /// The root switch.
    pub const ROOT: NodeId = NodeId(1);

    /// Heap index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Parent switch. The root has no parent.
    #[inline]
    pub fn parent(self) -> Option<NodeId> {
        if self.0 <= 1 {
            None
        } else {
            Some(NodeId(self.0 >> 1))
        }
    }

    /// Left child in heap layout. Only meaningful for internal nodes of a
    /// concrete topology; see [`crate::topology::CstTopology::is_internal`].
    #[inline]
    pub fn left_child(self) -> NodeId {
        NodeId(self.0 << 1)
    }

    /// Right child in heap layout.
    #[inline]
    pub fn right_child(self) -> NodeId {
        NodeId((self.0 << 1) | 1)
    }

    /// True if this node is the left child of its parent.
    #[inline]
    pub fn is_left_child(self) -> bool {
        self.0 > 1 && self.0 & 1 == 0
    }

    /// True if this node is the right child of its parent.
    #[inline]
    pub fn is_right_child(self) -> bool {
        self.0 > 1 && self.0 & 1 == 1
    }

    /// Sibling node (other child of the same parent).
    #[inline]
    pub fn sibling(self) -> Option<NodeId> {
        if self.0 <= 1 {
            None
        } else {
            Some(NodeId(self.0 ^ 1))
        }
    }

    /// Depth below the root: the root has depth 0, its children depth 1, ...
    #[inline]
    pub fn depth(self) -> u32 {
        debug_assert!(self.0 >= 1);
        usize::BITS - 1 - self.0.leading_zeros()
    }

    /// True if `self` is an ancestor of `other` (or equal to it).
    #[inline]
    pub fn is_ancestor_of(self, other: NodeId) -> bool {
        let (a, b) = (self.0, other.0);
        debug_assert!(a >= 1 && b >= 1);
        if a > b {
            return false;
        }
        let shift = (usize::BITS - b.leading_zeros()) - (usize::BITS - a.leading_zeros());
        (b >> shift) == a
    }
}

impl LeafId {
    /// Zero-based leaf position, left to right.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl core::fmt::Debug for LeafId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

impl core::fmt::Display for LeafId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

impl From<usize> for LeafId {
    fn from(v: usize) -> Self {
        LeafId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_parent() {
        assert_eq!(NodeId::ROOT.parent(), None);
    }

    #[test]
    fn children_point_back_to_parent() {
        for i in 1..200usize {
            let n = NodeId(i);
            assert_eq!(n.left_child().parent(), Some(n));
            assert_eq!(n.right_child().parent(), Some(n));
        }
    }

    #[test]
    fn left_right_child_flags() {
        let n = NodeId(5);
        assert!(n.left_child().is_left_child());
        assert!(!n.left_child().is_right_child());
        assert!(n.right_child().is_right_child());
        assert!(!n.right_child().is_left_child());
        assert!(!NodeId::ROOT.is_left_child());
        assert!(!NodeId::ROOT.is_right_child());
    }

    #[test]
    fn sibling_is_involutive() {
        for i in 2..100usize {
            let n = NodeId(i);
            let s = n.sibling().unwrap();
            assert_eq!(s.sibling(), Some(n));
            assert_eq!(s.parent(), n.parent());
            assert_ne!(s, n);
        }
        assert_eq!(NodeId::ROOT.sibling(), None);
    }

    #[test]
    fn depth_matches_log2() {
        assert_eq!(NodeId(1).depth(), 0);
        assert_eq!(NodeId(2).depth(), 1);
        assert_eq!(NodeId(3).depth(), 1);
        assert_eq!(NodeId(4).depth(), 2);
        assert_eq!(NodeId(7).depth(), 2);
        assert_eq!(NodeId(8).depth(), 3);
        assert_eq!(NodeId(1024).depth(), 10);
    }

    #[test]
    fn ancestry() {
        assert!(NodeId(1).is_ancestor_of(NodeId(1)));
        assert!(NodeId(1).is_ancestor_of(NodeId(97)));
        assert!(NodeId(2).is_ancestor_of(NodeId(8)));
        assert!(NodeId(2).is_ancestor_of(NodeId(11)));
        assert!(!NodeId(3).is_ancestor_of(NodeId(11)));
        assert!(!NodeId(8).is_ancestor_of(NodeId(2)));
        assert!(!NodeId(2).is_ancestor_of(NodeId(3)));
    }
}
