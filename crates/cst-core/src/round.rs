//! Flat round representations: the dense scratch arena schedulers sweep
//! into and the compact per-round configuration table they emit.
//!
//! The heap layout of [`NodeId`] (root = 1, children `2i`/`2i+1`) makes a
//! node id a dense index, so per-round switch configurations never need a
//! tree map: the hot path writes into a preallocated [`ConfigArena`] slot
//! in O(1) and the finished round is extracted as a [`RoundConfigs`] — a
//! sorted flat table costing O(touched) space, O(log touched) lookup and
//! O(touched) iteration. Rebuilding the same round through either path
//! yields identical `RoundConfigs` (and identical serialized JSON, pinned
//! in `tests/cross_scheduler.rs`).

use crate::error::CstError;
use crate::node::NodeId;
use crate::switch::{Connection, SwitchConfig};
use crate::topology::CstTopology;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Read access to per-switch configurations, implemented by both the dense
/// scratch ([`ConfigArena`]) and the compact table ([`RoundConfigs`]) so
/// circuit tracing and the data phase work on either without copying.
pub trait ConfigLookup {
    /// Configuration held at `node` this round, if any.
    fn config_at(&self, node: NodeId) -> Option<&SwitchConfig>;
}

/// The switch configurations of one round: a flat table of
/// `(switch, configuration)` entries sorted by heap index.
///
/// Replaces the former `BTreeMap<NodeId, SwitchConfig>`: same deterministic
/// order, same serialized form (a JSON map keyed by the decimal heap
/// index), but contiguous in memory. Entries never hold an empty
/// configuration.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RoundConfigs {
    entries: Vec<(NodeId, SwitchConfig)>,
}

impl Clone for RoundConfigs {
    fn clone(&self) -> Self {
        RoundConfigs { entries: self.entries.clone() }
    }

    // The derived impl would route through `Vec::clone_from`, which for
    // non-`Copy`-specialized code paths drops and re-clones the tail; the
    // schedule cache leans on `clone_from` to repopulate pooled rounds
    // without touching the allocator, so spell out the clear+extend of a
    // `Copy` element slice.
    fn clone_from(&mut self, src: &Self) {
        self.entries.clear();
        self.entries.extend_from_slice(&src.entries);
    }
}

impl RoundConfigs {
    /// An empty table.
    pub fn new() -> Self {
        RoundConfigs::default()
    }

    /// Build from entries in arbitrary order; sorts by node id. Panics on
    /// duplicate nodes (a switch holds exactly one configuration).
    pub fn from_entries(entries: Vec<(NodeId, SwitchConfig)>) -> Self {
        let table = Self::from_entries_unchecked(entries);
        debug_assert!(
            table.entries.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate switch in round entries"
        );
        table
    }

    /// Build from entries in arbitrary order; sorts by node id but keeps
    /// duplicate nodes. Deserialization uses this form so a corrupted
    /// artifact *loads* and the static analyzer can flag the duplicate
    /// (`CST070`, two writers claiming one switch) instead of the schedule
    /// being unrepresentable.
    pub fn from_entries_unchecked(mut entries: Vec<(NodeId, SwitchConfig)>) -> Self {
        entries.sort_unstable_by_key(|&(n, _)| n.0);
        RoundConfigs { entries }
    }

    /// Number of configured switches.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no switch is configured.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configuration of `node`, by binary search on the heap index.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<&SwitchConfig> {
        self.entries
            .binary_search_by_key(&node.0, |&(n, _)| n.0)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Mutable configuration slot for `node`, inserted empty if absent.
    /// O(len) on insert — for round *assembly* use [`ConfigArena`]; this is
    /// for small manual construction (tests, round merging).
    pub fn entry_mut(&mut self, node: NodeId) -> &mut SwitchConfig {
        match self.entries.binary_search_by_key(&node.0, |&(n, _)| n.0) {
            Ok(i) => &mut self.entries[i].1,
            Err(i) => {
                self.entries.insert(i, (node, SwitchConfig::empty()));
                &mut self.entries[i].1
            }
        }
    }

    /// Iterate `(switch, configuration)` in heap-index order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SwitchConfig)> + '_ {
        self.entries.iter().map(|(n, cfg)| (*n, cfg))
    }

    /// Drop all entries, keeping the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterate `(switch, connection)` requirements in deterministic order.
    #[inline]
    pub fn requirements(&self) -> impl Iterator<Item = (NodeId, Connection)> + '_ {
        self.entries
            .iter()
            .flat_map(|(n, cfg)| cfg.connections().map(move |c| (*n, c)))
    }
}

impl<'a> IntoIterator for &'a RoundConfigs {
    type Item = (NodeId, &'a SwitchConfig);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (NodeId, SwitchConfig)>,
        fn(&'a (NodeId, SwitchConfig)) -> (NodeId, &'a SwitchConfig),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(n, cfg)| (*n, cfg))
    }
}

impl ConfigLookup for RoundConfigs {
    #[inline]
    fn config_at(&self, node: NodeId) -> Option<&SwitchConfig> {
        self.get(node)
    }
}

// Serialized exactly like the `BTreeMap<NodeId, SwitchConfig>` it
// replaced: a map keyed by the decimal heap index, in ascending order.
impl Serialize for RoundConfigs {
    fn to_value(&self) -> Value {
        Value::Map(
            self.entries
                .iter()
                .map(|(n, cfg)| (n.0.to_string(), cfg.to_value()))
                .collect(),
        )
    }
}

impl Deserialize for RoundConfigs {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Map(items) => {
                let entries = items
                    .iter()
                    .map(|(k, val)| {
                        let idx: usize = k.parse().map_err(|_| {
                            SerdeError(format!("switch key {k:?} is not a heap index"))
                        })?;
                        Ok((NodeId(idx), SwitchConfig::from_value(val)?))
                    })
                    .collect::<Result<Vec<_>, SerdeError>>()?;
                Ok(RoundConfigs::from_entries_unchecked(entries))
            }
            other => Err(SerdeError(format!(
                "round configs must be a map, got {}",
                other.type_name()
            ))),
        }
    }
}

/// Dense per-round scratch: one [`SwitchConfig`] slot per heap index plus
/// the list of touched switches, so building a round costs O(1) per
/// connection and resetting costs O(touched) — never O(N).
///
/// A slot counts as occupied exactly when its configuration is non-empty
/// (schedulers only record switches that hold at least one connection, so
/// no separate presence bitmap is needed).
#[derive(Clone, Debug)]
pub struct ConfigArena {
    slots: Vec<SwitchConfig>,
    touched: Vec<NodeId>,
}

impl Default for ConfigArena {
    /// Zero-slot arena; size it with [`ConfigArena::reset_for`] before use.
    fn default() -> Self {
        ConfigArena { slots: Vec::new(), touched: Vec::new() }
    }
}

impl ConfigArena {
    /// Empty arena sized for `topo`.
    pub fn new(topo: &CstTopology) -> Self {
        let mut a = ConfigArena::default();
        a.reset_for(topo);
        a
    }

    /// Clear and resize for `topo`, reusing the slot allocation when the
    /// capacity suffices. Lets one arena serve requests on differently
    /// sized trees without reallocating in steady state.
    pub fn reset_for(&mut self, topo: &CstTopology) {
        self.clear();
        self.slots.resize(topo.node_table_len(), SwitchConfig::empty());
    }

    /// Add connection `c` at `node` for the current round.
    #[inline]
    pub fn set(&mut self, node: NodeId, c: Connection) -> Result<(), CstError> {
        let slot = &mut self.slots[node.index()];
        if slot.is_empty() {
            self.touched.push(node);
        }
        slot.set(c)
    }

    /// Configuration currently held at `node`, O(1).
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<&SwitchConfig> {
        let slot = &self.slots[node.index()];
        if slot.is_empty() {
            None
        } else {
            Some(slot)
        }
    }

    /// Number of switches touched this round.
    #[inline]
    pub fn touched(&self) -> usize {
        self.touched.len()
    }

    /// Iterate touched `(switch, configuration)` pairs in *touch* order
    /// (unsorted). O(touched); use [`ConfigArena::take_round`] when a
    /// deterministic heap-index order is required.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SwitchConfig)> + '_ {
        self.touched.iter().map(move |&n| (n, &self.slots[n.index()]))
    }

    /// Reset for the next round without reallocating.
    pub fn clear(&mut self) {
        for &n in &self.touched {
            self.slots[n.index()].clear();
        }
        self.touched.clear();
    }

    /// Extract the round as a compact sorted table and reset the arena.
    pub fn take_round(&mut self) -> RoundConfigs {
        let mut out = RoundConfigs::new();
        self.take_round_into(&mut out);
        out
    }

    /// Like [`ConfigArena::take_round`], but writes into `out`, reusing its
    /// allocation. After the first few rounds of a long-lived engine this
    /// path allocates nothing: the table's capacity is recycled round to
    /// round.
    pub fn take_round_into(&mut self, out: &mut RoundConfigs) {
        self.touched.sort_unstable_by_key(|n| n.0);
        out.entries.clear();
        out.entries
            .extend(self.touched.iter().map(|&n| (n, self.slots[n.index()])));
        self.clear();
    }
}

impl ConfigLookup for ConfigArena {
    #[inline]
    fn config_at(&self, node: NodeId) -> Option<&SwitchConfig> {
        self.get(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::Connection;

    fn topo() -> CstTopology {
        CstTopology::with_leaves(8)
    }

    #[test]
    fn arena_set_get_clear() {
        let mut a = ConfigArena::new(&topo());
        assert!(a.get(NodeId(2)).is_none());
        a.set(NodeId(2), Connection::L_TO_R).unwrap();
        assert!(a.get(NodeId(2)).unwrap().has(Connection::L_TO_R));
        assert_eq!(a.touched(), 1);
        a.clear();
        assert!(a.get(NodeId(2)).is_none());
        assert_eq!(a.touched(), 0);
    }

    #[test]
    fn take_round_sorts_and_resets() {
        let mut a = ConfigArena::new(&topo());
        a.set(NodeId(5), Connection::L_TO_R).unwrap();
        a.set(NodeId(2), Connection::L_TO_P).unwrap();
        a.set(NodeId(2), Connection::P_TO_R).unwrap();
        let r = a.take_round();
        assert_eq!(a.touched(), 0);
        assert!(a.get(NodeId(2)).is_none());
        let nodes: Vec<NodeId> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(nodes, vec![NodeId(2), NodeId(5)]);
        assert_eq!(r.get(NodeId(2)).unwrap().len(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn round_configs_lookup_and_requirements() {
        let mut r = RoundConfigs::new();
        r.entry_mut(NodeId(4)).set(Connection::L_TO_R).unwrap();
        r.entry_mut(NodeId(2)).set(Connection::L_TO_P).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.get(NodeId(4)).is_some());
        assert!(r.get(NodeId(3)).is_none());
        let req: Vec<_> = r.requirements().collect();
        assert_eq!(req[0].0, NodeId(2)); // sorted
        assert_eq!(req[1], (NodeId(4), Connection::L_TO_R));
    }

    #[test]
    fn serde_matches_btreemap_format() {
        let mut r = RoundConfigs::new();
        r.entry_mut(NodeId(4)).set(Connection::L_TO_R).unwrap();
        let json = serde_json::to_string(&r.to_value()).unwrap();
        // keyed by decimal heap index, like the old BTreeMap<NodeId, _>
        assert!(json.starts_with("{\"4\":"), "got {json}");
        let v: Value = serde_json::from_str::<Value>(&json).unwrap();
        let back = RoundConfigs::from_value(&v).unwrap();
        assert_eq!(back, r);
    }
}
