//! Circuits: the switch settings and directed links realizing one
//! source-to-destination path.
//!
//! For a right-oriented communication `(s, d)` with `s < d`, the circuit
//! climbs from `s` to the LCA (each switch on the way connects the incoming
//! child input to `p_o`), turns around at the LCA (`l_i -> r_o`; the source
//! is always in the LCA's left subtree for right-oriented sets), and
//! descends to `d` (each switch connects `p_i` to the outgoing child
//! output).

use crate::link::DirectedLink;
use crate::node::{LeafId, NodeId};
use crate::switch::{Connection, Side};
use crate::topology::CstTopology;
use serde::{Deserialize, Serialize};

/// A fully-resolved circuit: per-switch connections plus the directed links
/// it occupies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    /// Source PE.
    pub source: LeafId,
    /// Destination PE.
    pub dest: LeafId,
    /// The switch where the communication is matched (LCA of the leaves).
    pub apex: NodeId,
    /// `(switch, connection)` pairs, listed source-side up then apex then
    /// down to the destination.
    pub settings: Vec<(NodeId, Connection)>,
    /// Directed links used, same order as the signal travels.
    pub links: Vec<DirectedLink>,
}

impl Circuit {
    /// Build the circuit for a right-oriented communication `(source, dest)`
    /// with `source < dest`.
    ///
    /// Panics in debug builds if the communication is not right-oriented;
    /// callers validate orientation at set construction time.
    pub fn right_oriented(topo: &CstTopology, source: LeafId, dest: LeafId) -> Circuit {
        debug_assert!(source.0 < dest.0, "circuit requires source < dest");
        debug_assert!(dest.0 < topo.num_leaves());
        let apex = topo.lca(source, dest);
        let height = topo.height() as usize;
        let mut settings = Vec::with_capacity(2 * height);
        let mut links = Vec::with_capacity(2 * height + 2);

        // Ascend from the source to the apex.
        let mut node = topo.leaf_node(source);
        links.push(DirectedLink::up_from(node));
        while let Some(p) = node.parent() {
            if p == apex {
                break;
            }
            let from = if node.is_left_child() { Side::Left } else { Side::Right };
            settings.push((p, Connection { from, to: Side::Parent }));
            links.push(DirectedLink::up_from(p));
            node = p;
        }

        // Turn around at the apex: for right-oriented sets the source is in
        // the left subtree and the destination in the right subtree.
        settings.push((apex, Connection::L_TO_R));

        // Descend from the apex to the destination. Collect top-down.
        let mut down = Vec::with_capacity(height);
        let mut node = topo.leaf_node(dest);
        links.push(DirectedLink::down_to(node));
        while let Some(p) = node.parent() {
            if p == apex {
                break;
            }
            let to = if node.is_left_child() { Side::Left } else { Side::Right };
            down.push((p, Connection { from: Side::Parent, to }));
            links.push(DirectedLink::down_to(p));
            node = p;
        }
        down.reverse();
        settings.extend(down);

        // Links were collected source-up then dest-up; normalize the
        // descent portion to travel order (apex -> dest).
        let first_down = links.iter().position(|l| !l.up).expect("has down link");
        links[first_down..].reverse();

        Circuit { source, dest, apex, settings, links }
    }

    /// Build the circuit for a *left-oriented* communication `(source,
    /// dest)` with `source > dest`: the mirror image of
    /// [`Circuit::right_oriented`] — ascend the right flank, turn around
    /// with `r_i -> l_o`, descend to the destination on the left.
    pub fn left_oriented(topo: &CstTopology, source: LeafId, dest: LeafId) -> Circuit {
        debug_assert!(source.0 > dest.0, "left circuit requires source > dest");
        let apex = topo.lca(dest, source);
        let height = topo.height() as usize;
        let mut settings = Vec::with_capacity(2 * height);
        let mut links = Vec::with_capacity(2 * height + 2);

        // Ascend from the source (in the apex's right subtree).
        let mut node = topo.leaf_node(source);
        links.push(DirectedLink::up_from(node));
        while let Some(p) = node.parent() {
            if p == apex {
                break;
            }
            let from = if node.is_left_child() { Side::Left } else { Side::Right };
            settings.push((p, Connection { from, to: Side::Parent }));
            links.push(DirectedLink::up_from(p));
            node = p;
        }

        settings.push((apex, Connection::R_TO_L));

        // Descend to the destination (in the apex's left subtree).
        let mut down = Vec::with_capacity(height);
        let mut node = topo.leaf_node(dest);
        links.push(DirectedLink::down_to(node));
        while let Some(p) = node.parent() {
            if p == apex {
                break;
            }
            let to = if node.is_left_child() { Side::Left } else { Side::Right };
            down.push((p, Connection { from: Side::Parent, to }));
            links.push(DirectedLink::down_to(p));
            node = p;
        }
        down.reverse();
        settings.extend(down);

        let first_down = links.iter().position(|l| !l.up).expect("has down link");
        links[first_down..].reverse();

        Circuit { source, dest, apex, settings, links }
    }

    /// Build the circuit for a communication of either orientation.
    pub fn between(topo: &CstTopology, source: LeafId, dest: LeafId) -> Circuit {
        if source.0 < dest.0 {
            Circuit::right_oriented(topo, source, dest)
        } else {
            Circuit::left_oriented(topo, source, dest)
        }
    }

    /// Number of switches the signal traverses.
    pub fn num_switches(&self) -> usize {
        self.settings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo8() -> CstTopology {
        CstTopology::with_leaves(8)
    }

    #[test]
    fn adjacent_pair_single_switch() {
        let t = topo8();
        let c = Circuit::right_oriented(&t, LeafId(0), LeafId(1));
        assert_eq!(c.apex, NodeId(4));
        assert_eq!(c.settings, vec![(NodeId(4), Connection::L_TO_R)]);
        assert_eq!(
            c.links,
            vec![
                DirectedLink::up_from(t.leaf_node(LeafId(0))),
                DirectedLink::down_to(t.leaf_node(LeafId(1))),
            ]
        );
    }

    #[test]
    fn full_span_circuit() {
        let t = topo8();
        let c = Circuit::right_oriented(&t, LeafId(0), LeafId(7));
        assert_eq!(c.apex, NodeId::ROOT);
        // up: n4 (l->p), n2 (l->p); apex n1 (l->r); down: n3 (p->r), n7 (p->r)
        assert_eq!(
            c.settings,
            vec![
                (NodeId(4), Connection::L_TO_P),
                (NodeId(2), Connection::L_TO_P),
                (NodeId(1), Connection::L_TO_R),
                (NodeId(3), Connection::P_TO_R),
                (NodeId(7), Connection::P_TO_R),
            ]
        );
        assert_eq!(c.num_switches(), 5);
        // Links in travel order.
        assert_eq!(
            c.links,
            vec![
                DirectedLink::up_from(NodeId(8)),
                DirectedLink::up_from(NodeId(4)),
                DirectedLink::up_from(NodeId(2)),
                DirectedLink::down_to(NodeId(3)),
                DirectedLink::down_to(NodeId(7)),
                DirectedLink::down_to(NodeId(15)),
            ]
        );
    }

    #[test]
    fn asymmetric_circuit() {
        let t = topo8();
        // 2 -> 3 matched at n5
        let c = Circuit::right_oriented(&t, LeafId(2), LeafId(3));
        assert_eq!(c.apex, NodeId(5));
        assert_eq!(c.settings, vec![(NodeId(5), Connection::L_TO_R)]);

        // 1 -> 4: apex root; up through n4 (r->p), n2 (l->p)...
        let c = Circuit::right_oriented(&t, LeafId(1), LeafId(4));
        assert_eq!(c.apex, NodeId::ROOT);
        assert_eq!(
            c.settings,
            vec![
                (NodeId(4), Connection::R_TO_P),
                (NodeId(2), Connection::L_TO_P),
                (NodeId(1), Connection::L_TO_R),
                (NodeId(3), Connection::P_TO_L),
                (NodeId(6), Connection::P_TO_L),
            ]
        );
    }

    #[test]
    fn settings_form_a_connected_path() {
        // For every pair (s, d), walking the configured switches from the
        // source must arrive exactly at the destination.
        let t = CstTopology::with_leaves(32);
        for s in 0..32 {
            for d in (s + 1)..32 {
                let c = Circuit::right_oriented(&t, LeafId(s), LeafId(d));
                // map switch -> connection for this circuit
                let map: std::collections::HashMap<_, _> =
                    c.settings.iter().cloned().collect();
                assert_eq!(map.len(), c.settings.len(), "no switch twice");
                // simulate the signal
                let mut node = t.leaf_node(LeafId(s));
                let mut from_below = true;
                for _ in 0..3 * t.height() {
                    if t.is_leaf(node) && !from_below {
                        break;
                    }
                    let (next, conn_from) = if from_below {
                        let p = node.parent().unwrap();
                        let side = if node.is_left_child() { Side::Left } else { Side::Right };
                        (p, side)
                    } else {
                        unreachable!("descent handled via connection lookup")
                    };
                    let conn = map.get(&next).copied().unwrap_or_else(|| {
                        panic!("switch {next} not configured for {s}->{d}")
                    });
                    assert_eq!(conn.from, conn_from);
                    match conn.to {
                        Side::Parent => {
                            node = next;
                            from_below = true;
                        }
                        Side::Left | Side::Right => {
                            // descend along configured p_i -> child chain
                            let mut cur = if conn.to == Side::Left {
                                next.left_child()
                            } else {
                                next.right_child()
                            };
                            while t.is_internal(cur) {
                                let cc = map[&cur];
                                assert_eq!(cc.from, Side::Parent);
                                cur = if cc.to == Side::Left {
                                    cur.left_child()
                                } else {
                                    cur.right_child()
                                };
                            }
                            node = cur;
                            from_below = false;
                        }
                    }
                    if !from_below {
                        break;
                    }
                }
                assert_eq!(t.node_leaf(node), Some(LeafId(d)), "{s}->{d} misrouted");
            }
        }
    }

    #[test]
    fn left_oriented_mirrors_right() {
        let t = CstTopology::with_leaves(8);
        let c = Circuit::left_oriented(&t, LeafId(7), LeafId(0));
        assert_eq!(c.apex, NodeId::ROOT);
        assert_eq!(
            c.settings,
            vec![
                (NodeId(7), Connection::R_TO_P),
                (NodeId(3), Connection::R_TO_P),
                (NodeId(1), Connection::R_TO_L),
                (NodeId(2), Connection::P_TO_L),
                (NodeId(4), Connection::P_TO_L),
            ]
        );
        // links are the exact reverses of the right-oriented 0 -> 7 circuit
        let r = Circuit::right_oriented(&t, LeafId(0), LeafId(7));
        let mut mirrored: Vec<DirectedLink> = r
            .links
            .iter()
            .map(|l| DirectedLink { child: l.child, up: !l.up })
            .collect();
        mirrored.reverse();
        assert_eq!(c.links, mirrored);
    }

    #[test]
    fn between_dispatches_on_orientation() {
        let t = CstTopology::with_leaves(16);
        let r = Circuit::between(&t, LeafId(2), LeafId(9));
        assert_eq!(r.settings, Circuit::right_oriented(&t, LeafId(2), LeafId(9)).settings);
        let l = Circuit::between(&t, LeafId(9), LeafId(2));
        assert_eq!(l.settings, Circuit::left_oriented(&t, LeafId(9), LeafId(2)).settings);
        // opposite orientations over the same span are link-disjoint
        let all_links: std::collections::HashSet<_> = r.links.iter().collect();
        assert!(l.links.iter().all(|x| !all_links.contains(x)));
    }

    #[test]
    fn left_adjacent_pair() {
        let t = CstTopology::with_leaves(8);
        let c = Circuit::left_oriented(&t, LeafId(1), LeafId(0));
        assert_eq!(c.settings, vec![(NodeId(4), Connection::R_TO_L)]);
        assert_eq!(c.num_switches(), 1);
    }

    #[test]
    fn link_count_matches_setting_count() {
        let t = CstTopology::with_leaves(64);
        for (s, d) in [(0usize, 63usize), (10, 11), (5, 40), (31, 32)] {
            let c = Circuit::right_oriented(&t, LeafId(s), LeafId(d));
            // every circuit has one more link than switches
            assert_eq!(c.links.len(), c.num_switches() + 1);
            // first link leaves the source leaf, last enters the dest leaf
            assert_eq!(c.links[0], DirectedLink::up_from(t.leaf_node(LeafId(s))));
            assert_eq!(*c.links.last().unwrap(), DirectedLink::down_to(t.leaf_node(LeafId(d))));
        }
    }
}
