//! Compatibility checking for rounds of circuits.
//!
//! A set of communications can be performed simultaneously iff no two of
//! them use the same tree edge in the same direction (paper §1). This
//! module checks that property for collections of [`Circuit`]s and builds
//! the merged per-switch configuration of a round.

use crate::error::CstError;
use crate::link::{DirectedLink, LinkOccupancy};
use crate::node::NodeId;
use crate::path::Circuit;
use crate::round::{ConfigArena, ConfigLookup, RoundConfigs};
use crate::switch::{Connection, SwitchConfig};
use crate::topology::CstTopology;

/// The merged state of one scheduling round: link occupancy plus every
/// switch's required configuration, both backed by dense preallocated
/// tables so one instance can be reused across all rounds of a schedule
/// (reset is O(touched), not O(N)).
#[derive(Clone, Debug, Default)]
pub struct MergedRound {
    occ: LinkOccupancy,
    arena: ConfigArena,
}

impl MergedRound {
    /// An empty reusable round for `topo`.
    pub fn new(topo: &CstTopology) -> MergedRound {
        MergedRound {
            occ: LinkOccupancy::new(topo),
            arena: ConfigArena::new(topo),
        }
    }

    /// Re-target a (possibly default-constructed) round to `topo`,
    /// clearing any prior state but keeping allocated capacity where
    /// possible. Lets one scratch instance serve requests on trees of
    /// different sizes.
    pub fn reset_for(&mut self, topo: &CstTopology) {
        self.occ.reset_for(topo);
        self.arena.reset_for(topo);
    }

    /// Merge `circuits` into a single round, failing on any directed-link
    /// or switch-port conflict.
    pub fn build(topo: &CstTopology, circuits: &[Circuit]) -> Result<MergedRound, CstError> {
        let mut round = MergedRound::new(topo);
        for c in circuits {
            round.add(c)?;
        }
        Ok(round)
    }

    /// Add one circuit, claiming its links and merging its settings.
    pub fn add(&mut self, c: &Circuit) -> Result<(), CstError> {
        for &l in &c.links {
            if !self.occ.claim(l) {
                return Err(CstError::LinkConflict { node: l.child, upward: l.up });
            }
        }
        for &(node, conn) in &c.settings {
            self.arena.set(node, conn)?;
        }
        Ok(())
    }

    /// Add `c` only if all its links are free: returns `Ok(false)` (round
    /// untouched) when any link is already claimed, `Ok(true)` when the
    /// circuit was placed. Port conflicts after passing the link check are
    /// genuine errors (link-disjointness implies port-disjointness).
    pub fn try_add(&mut self, c: &Circuit) -> Result<bool, CstError> {
        if c.links.iter().any(|&l| self.occ.is_used(l)) {
            return Ok(false);
        }
        self.add(c)?;
        Ok(true)
    }

    /// Whether a directed link is claimed in this round.
    #[inline]
    pub fn link_used(&self, l: DirectedLink) -> bool {
        self.occ.is_used(l)
    }

    /// Configuration required at `node`, O(1).
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<&SwitchConfig> {
        self.arena.get(node)
    }

    /// Number of switches configured this round.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.arena.touched()
    }

    /// Reset for the next round without reallocating.
    pub fn clear(&mut self) {
        self.occ.reset();
        self.arena.clear();
    }

    /// Extract the round's configurations as a compact sorted table and
    /// reset the configuration side (link occupancy is reset too).
    pub fn take_configs(&mut self) -> RoundConfigs {
        self.occ.reset();
        self.arena.take_round()
    }

    /// The round's configurations as a compact sorted table (copying).
    pub fn to_configs(&self) -> RoundConfigs {
        let mut entries: Vec<(NodeId, SwitchConfig)> =
            self.arena.iter().map(|(n, cfg)| (n, *cfg)).collect();
        entries.sort_unstable_by_key(|&(n, _)| n.0);
        RoundConfigs::from_entries(entries)
    }

    /// Iterate touched `(switch, configuration)` pairs in touch order
    /// (unsorted), O(touched) and allocation-free.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SwitchConfig)> + '_ {
        self.arena.iter()
    }

    /// Iterate `(switch, connection)` pairs of the round, deterministic
    /// (heap-index) order. Allocates a sorted index; for hot paths use
    /// [`MergedRound::iter`] or extract a [`RoundConfigs`] once.
    pub fn requirements(&self) -> impl Iterator<Item = (NodeId, Connection)> {
        let pairs: Vec<(NodeId, Connection)> = self.to_configs().requirements().collect();
        pairs.into_iter()
    }
}

impl ConfigLookup for MergedRound {
    #[inline]
    fn config_at(&self, node: NodeId) -> Option<&SwitchConfig> {
        self.get(node)
    }
}

/// True if the circuits are pairwise compatible (share no directed link).
pub fn are_compatible(topo: &CstTopology, circuits: &[Circuit]) -> bool {
    MergedRound::build(topo, circuits).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafId;

    fn circ(topo: &CstTopology, s: usize, d: usize) -> Circuit {
        Circuit::right_oriented(topo, LeafId(s), LeafId(d))
    }

    #[test]
    fn disjoint_intervals_are_compatible() {
        let t = CstTopology::with_leaves(16);
        let a = circ(&t, 0, 3);
        let b = circ(&t, 4, 9);
        let c = circ(&t, 10, 15);
        assert!(are_compatible(&t, &[a, b, c]));
    }

    #[test]
    fn nested_communications_conflict() {
        let t = CstTopology::with_leaves(16);
        // (0, 15) contains (1, 14): both need the upward link toward the
        // root on the left flank.
        let outer = circ(&t, 0, 15);
        let inner = circ(&t, 1, 14);
        assert!(!are_compatible(&t, &[outer, inner]));
    }

    #[test]
    fn sibling_leaf_pairs_all_compatible() {
        let t = CstTopology::with_leaves(32);
        let circuits: Vec<_> = (0..16).map(|i| circ(&t, 2 * i, 2 * i + 1)).collect();
        assert!(are_compatible(&t, &circuits));
        let round = MergedRound::build(&t, &circuits).unwrap();
        assert_eq!(round.num_switches(), 16);
        assert_eq!(round.to_configs().len(), 16);
    }

    #[test]
    fn merged_round_lists_requirements() {
        let t = CstTopology::with_leaves(8);
        let round = MergedRound::build(&t, &[circ(&t, 0, 1)]).unwrap();
        let req: Vec<_> = round.requirements().collect();
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].0, NodeId(4));
    }

    #[test]
    fn conflict_error_names_link() {
        let t = CstTopology::with_leaves(8);
        let err = MergedRound::build(&t, &[circ(&t, 0, 7), circ(&t, 1, 6)]).unwrap_err();
        assert!(matches!(err, CstError::LinkConflict { .. }));
    }

    #[test]
    fn chained_same_direction_conflicts_but_opposite_ok() {
        let t = CstTopology::with_leaves(8);
        // (0,4) and (3,7) overlap as intervals: both cross the root upward
        // on... (0,4): up-links via n4,n2; (3,7): up via n5,n2 — n2^ shared.
        assert!(!are_compatible(&t, &[circ(&t, 0, 4), circ(&t, 3, 7)]));
        // but (0,3) and (4,7) stay within disjoint subtrees
        assert!(are_compatible(&t, &[circ(&t, 0, 3), circ(&t, 4, 7)]));
    }

    #[test]
    fn reuse_across_rounds_resets_fully() {
        let t = CstTopology::with_leaves(8);
        let mut round = MergedRound::new(&t);
        round.add(&circ(&t, 0, 7)).unwrap();
        assert!(round.get(NodeId::ROOT).is_some());
        round.clear();
        assert_eq!(round.num_switches(), 0);
        // the conflicting circuit now fits: the links were released
        round.add(&circ(&t, 1, 6)).unwrap();
        assert!(round.num_switches() > 0);
    }

    #[test]
    fn try_add_rejects_conflicts_without_mutation() {
        let t = CstTopology::with_leaves(8);
        let mut round = MergedRound::new(&t);
        assert!(round.try_add(&circ(&t, 0, 7)).unwrap());
        let before = round.num_switches();
        assert!(!round.try_add(&circ(&t, 1, 6)).unwrap());
        assert_eq!(round.num_switches(), before);
    }
}
