//! Compatibility checking for rounds of circuits.
//!
//! A set of communications can be performed simultaneously iff no two of
//! them use the same tree edge in the same direction (paper §1). This
//! module checks that property for collections of [`Circuit`]s and builds
//! the merged per-switch configuration of a round.

use crate::error::CstError;
use crate::link::LinkOccupancy;
use crate::node::NodeId;
use crate::path::Circuit;
use crate::switch::SwitchConfig;
use crate::topology::CstTopology;
use std::collections::BTreeMap;

/// The merged state of one scheduling round: every switch's required
/// configuration, plus which circuits were placed.
#[derive(Clone, Debug, Default)]
pub struct MergedRound {
    /// Required connections per switch. `BTreeMap` keeps deterministic
    /// iteration order for accounting and traces.
    pub configs: BTreeMap<NodeId, SwitchConfig>,
}

impl MergedRound {
    /// Merge `circuits` into a single round, failing on any directed-link
    /// or switch-port conflict.
    pub fn build(topo: &CstTopology, circuits: &[Circuit]) -> Result<MergedRound, CstError> {
        let mut occ = LinkOccupancy::new(topo);
        let mut round = MergedRound::default();
        for c in circuits {
            round.add(&mut occ, c)?;
        }
        Ok(round)
    }

    /// Add one circuit, claiming its links and merging its settings.
    pub fn add(&mut self, occ: &mut LinkOccupancy, c: &Circuit) -> Result<(), CstError> {
        for &l in &c.links {
            if !occ.claim(l) {
                return Err(CstError::LinkConflict { node: l.child, upward: l.up });
            }
        }
        for &(node, conn) in &c.settings {
            self.configs.entry(node).or_default().set(conn)?;
        }
        Ok(())
    }

    /// Iterate `(switch, connection)` pairs of the round, deterministic order.
    pub fn requirements(&self) -> impl Iterator<Item = (NodeId, crate::switch::Connection)> + '_ {
        self.configs
            .iter()
            .flat_map(|(&n, cfg)| cfg.connections().map(move |c| (n, c)))
    }
}

/// True if the circuits are pairwise compatible (share no directed link).
pub fn are_compatible(topo: &CstTopology, circuits: &[Circuit]) -> bool {
    MergedRound::build(topo, circuits).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafId;

    fn circ(topo: &CstTopology, s: usize, d: usize) -> Circuit {
        Circuit::right_oriented(topo, LeafId(s), LeafId(d))
    }

    #[test]
    fn disjoint_intervals_are_compatible() {
        let t = CstTopology::with_leaves(16);
        let a = circ(&t, 0, 3);
        let b = circ(&t, 4, 9);
        let c = circ(&t, 10, 15);
        assert!(are_compatible(&t, &[a, b, c]));
    }

    #[test]
    fn nested_communications_conflict() {
        let t = CstTopology::with_leaves(16);
        // (0, 15) contains (1, 14): both need the upward link toward the
        // root on the left flank.
        let outer = circ(&t, 0, 15);
        let inner = circ(&t, 1, 14);
        assert!(!are_compatible(&t, &[outer, inner]));
    }

    #[test]
    fn sibling_leaf_pairs_all_compatible() {
        let t = CstTopology::with_leaves(32);
        let circuits: Vec<_> = (0..16).map(|i| circ(&t, 2 * i, 2 * i + 1)).collect();
        assert!(are_compatible(&t, &circuits));
        let round = MergedRound::build(&t, &circuits).unwrap();
        assert_eq!(round.configs.len(), 16);
    }

    #[test]
    fn merged_round_lists_requirements() {
        let t = CstTopology::with_leaves(8);
        let round = MergedRound::build(&t, &[circ(&t, 0, 1)]).unwrap();
        let req: Vec<_> = round.requirements().collect();
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].0, NodeId(4));
    }

    #[test]
    fn conflict_error_names_link() {
        let t = CstTopology::with_leaves(8);
        let err = MergedRound::build(&t, &[circ(&t, 0, 7), circ(&t, 1, 6)]).unwrap_err();
        assert!(matches!(err, CstError::LinkConflict { .. }));
    }

    #[test]
    fn chained_same_direction_conflicts_but_opposite_ok() {
        let t = CstTopology::with_leaves(8);
        // (0,4) and (3,7) overlap as intervals: both cross the root upward
        // on... (0,4): up-links via n4,n2; (3,7): up via n5,n2 — n2^ shared.
        assert!(!are_compatible(&t, &[circ(&t, 0, 4), circ(&t, 3, 7)]));
        // but (0,3) and (4,7) stay within disjoint subtrees
        assert!(are_compatible(&t, &[circ(&t, 0, 3), circ(&t, 4, 7)]));
    }
}
