//! Error types shared across the CST crates.

use crate::node::{LeafId, NodeId};
use crate::switch::Side;

/// Errors raised by the CST substrate and schedulers built on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CstError {
    /// Topology sizes must be powers of two with at least 2 leaves.
    InvalidLeafCount { num_leaves: usize },
    /// Attempt to connect an input to the output of the same side.
    SameSideConnection { side: Side },
    /// An output port is already driven by a different input.
    OutputConflict { out: Side, cur: Side, new: Side },
    /// An input port already drives a different output.
    InputConflict { inp: Side, cur: Side, new: Side },
    /// A communication references a leaf outside the topology.
    LeafOutOfRange { leaf: LeafId, num_leaves: usize },
    /// A communication's source equals its destination.
    SelfCommunication { leaf: LeafId },
    /// A PE is used as an endpoint by more than one communication. The
    /// paper's Step 1.1 allows each PE to be a source, a destination, or
    /// neither — never several at once.
    EndpointReused { leaf: LeafId },
    /// The set is not right-oriented (some source is right of its destination).
    NotRightOriented { source: LeafId, dest: LeafId },
    /// The set is not well-nested: two communications cross.
    NotWellNested { a: usize, b: usize },
    /// Two circuits scheduled in the same round share a directed tree link.
    LinkConflict { node: NodeId, upward: bool },
    /// A scheduler produced an internally inconsistent round (e.g. a request
    /// rank exceeding the pool size) — indicates a bug, surfaced loudly.
    ProtocolViolation { node: NodeId, detail: String },
    /// Phase 1 did not fully match the set at the root: the set is
    /// incomplete (some endpoint's partner is missing).
    IncompleteSet { unmatched_sources: u32, unmatched_dests: u32 },
    /// The scheduler exceeded the provable round bound without finishing.
    RoundOverrun { limit: usize },
    /// Verification found a delivered payload mismatch.
    DeliveryMismatch { dest: LeafId },
    /// A router name was not found in the engine registry.
    UnknownRouter { name: String },
    /// A delta referenced a communication that does not exist (no
    /// communication has this leaf as its source).
    NoSuchCommunication { source: LeafId },
    /// A general communication set contains the same undirected pair twice
    /// (after orientation canonicalization); `a`/`b` are the input indices.
    DuplicatePair { a: usize, b: usize },
}

impl core::fmt::Display for CstError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CstError::InvalidLeafCount { num_leaves } => {
                write!(f, "invalid leaf count {num_leaves}: must be a power of two >= 2")
            }
            CstError::SameSideConnection { side } => {
                write!(f, "illegal connection {side}i->{side}o: same-side connections are forbidden")
            }
            CstError::OutputConflict { out, cur, new } => {
                write!(f, "output {out}o already driven by {cur}i, cannot connect {new}i")
            }
            CstError::InputConflict { inp, cur, new } => {
                write!(f, "input {inp}i already drives {cur}o, cannot connect to {new}o")
            }
            CstError::LeafOutOfRange { leaf, num_leaves } => {
                write!(f, "{leaf} out of range for topology with {num_leaves} leaves")
            }
            CstError::SelfCommunication { leaf } => {
                write!(f, "communication with source == destination at {leaf}")
            }
            CstError::EndpointReused { leaf } => {
                write!(f, "{leaf} used as endpoint by more than one communication")
            }
            CstError::NotRightOriented { source, dest } => {
                write!(f, "communication {source}->{dest} is not right-oriented")
            }
            CstError::NotWellNested { a, b } => {
                write!(f, "communications #{a} and #{b} cross: set is not well-nested")
            }
            CstError::LinkConflict { node, upward } => {
                let dir = if *upward { "up" } else { "down" };
                write!(f, "directed link at {node} ({dir}) used twice in one round")
            }
            CstError::ProtocolViolation { node, detail } => {
                write!(f, "protocol violation at {node}: {detail}")
            }
            CstError::IncompleteSet { unmatched_sources, unmatched_dests } => {
                write!(
                    f,
                    "set incomplete at root: {unmatched_sources} unmatched sources, {unmatched_dests} unmatched destinations"
                )
            }
            CstError::RoundOverrun { limit } => {
                write!(f, "scheduler exceeded the round limit {limit}")
            }
            CstError::DeliveryMismatch { dest } => {
                write!(f, "payload delivered to {dest} does not match its source's payload")
            }
            CstError::UnknownRouter { name } => {
                write!(f, "unknown router {name:?}: see the engine registry for valid names")
            }
            CstError::NoSuchCommunication { source } => {
                write!(f, "no communication with source {source} to detach")
            }
            CstError::DuplicatePair { a, b } => {
                write!(f, "pairs #{a} and #{b} connect the same two leaves")
            }
        }
    }
}

impl std::error::Error for CstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CstError::InvalidLeafCount { num_leaves: 3 };
        assert!(e.to_string().contains("power of two"));
        let e = CstError::OutputConflict { out: Side::Right, cur: Side::Left, new: Side::Parent };
        assert!(e.to_string().contains("ro"));
        let e = CstError::NotWellNested { a: 1, b: 2 };
        assert!(e.to_string().contains("cross"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(CstError::RoundOverrun { limit: 9 });
    }
}
