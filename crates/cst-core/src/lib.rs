//! # cst-core — circuit switched tree substrate
//!
//! The substrate every other crate in this workspace builds on:
//!
//! * [`topology`] — the complete binary tree (N = 2^k leaves, N−1 switches);
//! * [`switch`] — the 3-sided circuit switch and its legal configurations;
//! * [`link`] — directed tree links, the unit of communication conflict;
//! * [`path`] — circuits (switch settings + links) for one communication;
//! * [`compat`] — round assembly and compatibility checking;
//! * [`round`] — flat per-round configuration storage (dense arena +
//!   compact sorted table);
//! * [`power`] — the PADR power model: one unit per connection established,
//!   holding is free;
//! * [`pe`] — processing-element roles;
//! * [`diag`] — typed `CST0xx` diagnostics shared by the static analyzer
//!   (`cst-check`) and the runtime verifiers;
//! * [`fault`] — dense hardware fault masks (dead switches/links,
//!   half-duplex edges) and the exact path-routability oracle;
//! * [`trace`] — neutral protocol traces (per-switch message records)
//!   emitted by the schedulers/simulators and replayed by the reference
//!   model (`cst-model`, `CST2xx` diagnostics);
//! * [`general`] — arbitrary (not-well-nested) communication sets, the
//!   input vocabulary of the decomposition front-end (`cst-decomp`,
//!   `CST3xx` diagnostics);
//! * [`wire`] — little-endian, length-prefixed binary codec primitives
//!   (borrowing decode, typed errors) underpinning the `cst-serve` frame
//!   protocol.
//!
//! The model follows El-Boghdadi, *"Power-Aware Routing for Well-Nested
//! Communications On The Circuit Switched Tree"*, IPPS 2007, §2.

pub mod compat;
pub mod diag;
pub mod error;
pub mod fault;
pub mod fp;
pub mod general;
pub mod link;
pub mod node;
pub mod path;
pub mod pe;
pub mod power;
pub mod round;
pub mod switch;
pub mod topology;
pub mod trace;
pub mod wire;

pub use compat::{are_compatible, MergedRound};
pub use diag::{DiagCode, DiagReport, Diagnostic, Severity};
pub use error::CstError;
pub use fault::{FaultCause, FaultMask};
pub use fp::Fp64;
pub use general::{pairs_conflict, GeneralCommSet};
pub use link::{DirectedLink, LinkOccupancy};
pub use node::{LeafId, NodeId};
pub use path::Circuit;
pub use pe::PeRole;
pub use power::{charge_round, PowerMeter, PowerReport, SwitchPower, MAX_UNITS_PER_RECONFIG};
pub use round::{ConfigArena, ConfigLookup, RoundConfigs};
pub use switch::{Connection, Side, SwitchConfig};
pub use topology::CstTopology;
pub use trace::{ProtoKind, ProtoMsg, ProtocolRound, ProtocolTrace, SwitchEvent};
pub use wire::{WireCursor, WireError};
