//! Stable 64-bit fingerprinting for request keys.
//!
//! The streaming engine caches schedules by a *canonical fingerprint* of
//! the request (communication set, and fault mask when present). The
//! hasher here is the single fingerprinting substrate for the workspace:
//!
//! * **stable** — a fixed algorithm (FNV-1a over bytes, xor-multiply-
//!   rotate over words, a splitmix64 final avalanche) with no per-process
//!   random state, so fingerprints are
//!   reproducible across runs, builds, and platforms (pinned by a golden
//!   test);
//! * **canonical w.r.t. equality** — callers feed the same field sequence
//!   that their `Eq` implementation compares, so equal values always hash
//!   to equal fingerprints. The converse cannot hold for a 64-bit digest:
//!   every cache keyed by fingerprints MUST keep the original key and
//!   fall back to a full equality check on hit (see
//!   `cst-engine::ScheduleCache`), which turns a collision into a miss
//!   rather than a wrong answer;
//! * **domain-separated** — each fingerprinting site seeds the stream
//!   with a distinct domain tag so a communication set and a fault mask
//!   that happen to serialize identically still get unrelated digests.
//!
//! The word-level API (`write_u64`/`write_u32`) length-prefixes nothing:
//! callers are responsible for feeding an unambiguous encoding (fixed
//! field order, explicit length words before variable-length sequences —
//! the same discipline serde derives use).

/// Streaming 64-bit fingerprint hasher with a strong finalizer.
///
/// # Examples
///
/// ```
/// use cst_core::Fp64;
///
/// let mut a = Fp64::new("example");
/// a.write_u64(7);
/// let mut b = Fp64::new("example");
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// assert_ne!(Fp64::new("other").finish(), Fp64::new("example").finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fp64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fp64 {
    /// Start a stream seeded by a domain tag. Distinct tags give
    /// unrelated digests for identical payloads.
    pub fn new(domain: &str) -> Fp64 {
        let mut fp = Fp64 { state: FNV_OFFSET };
        fp.write_bytes(domain.as_bytes());
        fp
    }

    /// Feed raw bytes (FNV-1a core loop).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feed one u64, mixed as a whole word.
    ///
    /// Deliberately *not* `write_bytes(&v.to_le_bytes())`: integer fields
    /// dominate every fingerprinting site (a communication set is a list
    /// of leaf ids), and the byte-at-a-time FNV loop made the set
    /// fingerprint a measurable slice of the engine's cache-miss path.
    /// One xor-multiply-rotate per word is ~8x cheaper and still mixes
    /// every input bit into the state (the multiply spreads bits upward,
    /// the rotate feeds the high half back down; `finish` avalanches).
    pub fn write_u64(&mut self, v: u64) {
        const WORD_PRIME: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / phi, odd
        self.state = (self.state ^ v).wrapping_mul(WORD_PRIME).rotate_left(27);
    }

    /// Feed one u32 (widened; avoids platform-width ambiguity).
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Feed a usize (widened to u64 so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// digest differently. This is the canonical way to mix a router name
    /// (or any variable-length identifier) into a request fingerprint.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest. FNV-1a alone mixes low bits weakly, so the state is
    /// finalized with the splitmix64 avalanche before use as a cache key.
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let digest = |vals: &[u64]| {
            let mut fp = Fp64::new("test");
            for &v in vals {
                fp.write_u64(v);
            }
            fp.finish()
        };
        assert_eq!(digest(&[1, 2, 3]), digest(&[1, 2, 3]));
        assert_ne!(digest(&[1, 2, 3]), digest(&[1, 3, 2]));
        assert_ne!(digest(&[]), digest(&[0]));
    }

    #[test]
    fn strings_are_length_prefixed() {
        let digest = |parts: &[&str]| {
            let mut fp = Fp64::new("test-str");
            for p in parts {
                fp.write_str(p);
            }
            fp.finish()
        };
        assert_eq!(digest(&["ab", "c"]), digest(&["ab", "c"]));
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
        assert_ne!(digest(&["abc"]), digest(&["ab", "c"]));
    }

    #[test]
    fn domain_tags_separate_streams() {
        let mut a = Fp64::new("domain-a");
        let mut b = Fp64::new("domain-b");
        a.write_u64(42);
        b.write_u64(42);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn golden_digest_is_pinned() {
        // Cross-run / cross-platform stability is part of the contract:
        // cached artifacts keyed by fingerprints must stay addressable
        // after a rebuild. If this value changes, the hash algorithm
        // changed and every persisted fingerprint is invalidated —
        // bump deliberately, never accidentally.
        let mut fp = Fp64::new("cst-golden");
        fp.write_u64(0x0123_4567_89ab_cdef);
        fp.write_u32(7);
        fp.write_usize(1024);
        assert_eq!(fp.finish(), 0x422a_a943_f0aa_8f73);
    }

    #[test]
    fn finalizer_spreads_low_bits() {
        // Consecutive inputs must not map to consecutive digests (the
        // cache masks fingerprints down in its collision tests).
        let digest = |v: u64| {
            let mut fp = Fp64::new("spread");
            fp.write_u64(v);
            fp.finish()
        };
        let lows: Vec<u64> = (0..16).map(|v| digest(v) & 0xff).collect();
        let mut sorted = lows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 12, "low bytes nearly collide: {lows:?}");
    }
}
