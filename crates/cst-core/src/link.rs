//! Directed tree links.
//!
//! Every edge of the CST is a full-duplex link between a node and its
//! parent; it carries two independent directed channels. The definition of
//! a *compatible* communication set (paper §1, citing [3]) is exactly "no
//! two communications use the same edge in the same direction", so directed
//! links are the unit of conflict everywhere in this workspace.

use crate::node::NodeId;
use crate::topology::CstTopology;
use serde::{Deserialize, Serialize};

/// One directed channel of the edge between `child` and its parent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DirectedLink {
    /// The lower endpoint of the edge (the edge is `child -- parent(child)`).
    pub child: NodeId,
    /// Direction: `true` for child-to-parent ("up"), `false` for
    /// parent-to-child ("down").
    pub up: bool,
}

impl DirectedLink {
    /// Upward channel of the edge above `child`.
    #[inline]
    pub fn up_from(child: NodeId) -> Self {
        DirectedLink { child, up: true }
    }

    /// Downward channel of the edge above `child`.
    #[inline]
    pub fn down_to(child: NodeId) -> Self {
        DirectedLink { child, up: false }
    }

    /// Dense index for occupancy bitmaps: `2 * child + up`. Valid child ids
    /// are `2 ..= 2N-1`, so tables of size `4N` suffice.
    #[inline]
    pub fn dense_index(self) -> usize {
        (self.child.0 << 1) | usize::from(self.up)
    }
}

impl core::fmt::Display for DirectedLink {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.up {
            write!(f, "{}^", self.child)
        } else {
            write!(f, "{}v", self.child)
        }
    }
}

/// A per-round occupancy map over directed links, used to check
/// compatibility of a set of circuits in O(path length) per circuit.
#[derive(Clone, Debug, Default)]
pub struct LinkOccupancy {
    used: Vec<bool>,
    touched: Vec<usize>,
}

impl LinkOccupancy {
    /// An empty occupancy map for `topo`.
    pub fn new(topo: &CstTopology) -> Self {
        let mut occ = LinkOccupancy::default();
        occ.reset_for(topo);
        occ
    }

    /// Re-target the map to `topo`, clearing claims but keeping allocated
    /// capacity where possible.
    pub fn reset_for(&mut self, topo: &CstTopology) {
        self.reset();
        self.used.resize(4 * topo.num_leaves(), false);
    }

    /// Try to claim a directed link. Returns `false` (and leaves the map
    /// unchanged) if it is already claimed this round.
    pub fn claim(&mut self, link: DirectedLink) -> bool {
        let i = link.dense_index();
        if self.used[i] {
            return false;
        }
        self.used[i] = true;
        self.touched.push(i);
        true
    }

    /// Whether a link is currently claimed.
    pub fn is_used(&self, link: DirectedLink) -> bool {
        self.used[link.dense_index()]
    }

    /// Number of links currently claimed.
    pub fn claimed(&self) -> usize {
        self.touched.len()
    }

    /// Reset for the next round without reallocating ("workhorse" reuse).
    pub fn reset(&mut self) {
        for &i in &self.touched {
            self.used[i] = false;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafId;

    #[test]
    fn dense_indices_unique() {
        let topo = CstTopology::with_leaves(16);
        let mut seen = std::collections::HashSet::new();
        for n in 2..topo.num_nodes() + 1 {
            for up in [true, false] {
                let l = DirectedLink { child: NodeId(n), up };
                assert!(seen.insert(l.dense_index()));
                assert!(l.dense_index() < 4 * topo.num_leaves());
            }
        }
    }

    #[test]
    fn claim_and_reset() {
        let topo = CstTopology::with_leaves(8);
        let mut occ = LinkOccupancy::new(&topo);
        let l = DirectedLink::up_from(topo.leaf_node(LeafId(3)));
        assert!(occ.claim(l));
        assert!(!occ.claim(l));
        assert!(occ.is_used(l));
        // the opposite direction is a different channel
        let d = DirectedLink::down_to(topo.leaf_node(LeafId(3)));
        assert!(occ.claim(d));
        assert_eq!(occ.claimed(), 2);
        occ.reset();
        assert!(!occ.is_used(l));
        assert!(!occ.is_used(d));
        assert!(occ.claim(l));
    }

    #[test]
    fn display() {
        assert_eq!(DirectedLink::up_from(NodeId(5)).to_string(), "n5^");
        assert_eq!(DirectedLink::down_to(NodeId(5)).to_string(), "n5v");
    }
}
