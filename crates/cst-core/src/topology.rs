//! The complete-binary-tree topology of a CST instance.

use crate::error::CstError;
use crate::link::DirectedLink;
use crate::node::{LeafId, NodeId};
use serde::{Deserialize, Serialize};

/// A concrete CST topology: a complete binary tree with `num_leaves = 2^k`
/// processing elements and `num_leaves - 1` internal switches.
///
/// All structural queries (parent/child, LCA, leaf ranges, level iteration)
/// live here; the topology itself holds no mutable state, so it can be
/// shared freely between schedulers, verifiers and the simulator.
///
/// # Examples
///
/// ```
/// use cst_core::{CstTopology, LeafId, NodeId};
///
/// let topo = CstTopology::with_leaves(8);
/// assert_eq!(topo.num_switches(), 7);
/// assert_eq!(topo.height(), 3);
/// // A communication between PEs 1 and 2 is matched at their LCA,
/// // the switch covering leaves 0..4:
/// let apex = topo.lca(LeafId(1), LeafId(2));
/// assert_eq!(apex, NodeId::ROOT.left_child());
/// assert_eq!(topo.leaf_range(apex), 0..4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CstTopology {
    num_leaves: usize,
    /// `log2(num_leaves)`: number of switch levels between a leaf and the root.
    height: u32,
}

impl CstTopology {
    /// Build a topology with `num_leaves` PEs. `num_leaves` must be a power
    /// of two and at least 2 (a single leaf has no switch to configure).
    pub fn new(num_leaves: usize) -> Result<Self, CstError> {
        if num_leaves < 2 || !num_leaves.is_power_of_two() {
            return Err(CstError::InvalidLeafCount { num_leaves });
        }
        Ok(CstTopology {
            num_leaves,
            height: num_leaves.trailing_zeros(),
        })
    }

    /// Convenience constructor that panics on invalid sizes; useful in tests
    /// and examples where sizes are compile-time constants.
    pub fn with_leaves(num_leaves: usize) -> Self {
        Self::new(num_leaves).expect("num_leaves must be a power of two >= 2")
    }

    /// Number of PEs (leaves).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Number of internal switches.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.num_leaves - 1
    }

    /// Total number of nodes (switches + PEs).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        2 * self.num_leaves - 1
    }

    /// Number of switch levels on a leaf-to-root path (`log2 N`).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dense table size for per-node state indexed by `NodeId::index()`
    /// (slot 0 is unused by construction).
    #[inline]
    pub fn node_table_len(&self) -> usize {
        2 * self.num_leaves
    }

    /// The heap node of a leaf.
    #[inline]
    pub fn leaf_node(&self, leaf: LeafId) -> NodeId {
        debug_assert!(leaf.0 < self.num_leaves, "leaf {leaf} out of range");
        NodeId(self.num_leaves + leaf.0)
    }

    /// Inverse of [`Self::leaf_node`]; `None` for internal nodes.
    #[inline]
    pub fn node_leaf(&self, node: NodeId) -> Option<LeafId> {
        if node.0 >= self.num_leaves && node.0 < 2 * self.num_leaves {
            Some(LeafId(node.0 - self.num_leaves))
        } else {
            None
        }
    }

    /// True if `node` is a valid node of this topology.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 >= 1 && node.0 < 2 * self.num_leaves
    }

    /// True if `node` is an internal switch.
    #[inline]
    pub fn is_internal(&self, node: NodeId) -> bool {
        node.0 >= 1 && node.0 < self.num_leaves
    }

    /// True if `node` is a leaf (PE).
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        node.0 >= self.num_leaves && node.0 < 2 * self.num_leaves
    }

    /// Contiguous range of leaf positions covered by the subtree rooted at
    /// `node`, as `start..end` (half-open).
    ///
    /// Subtree leaf ranges being contiguous intervals is what makes
    /// "source in left subtree" equivalent to "source position < split";
    /// the scheduler's rank arithmetic relies on it throughout.
    pub fn leaf_range(&self, node: NodeId) -> core::ops::Range<usize> {
        debug_assert!(self.contains(node));
        let node_level = self.height - node.depth(); // leaves at level 0
        let width = 1usize << node_level;
        // Leftmost descendant leaf: repeatedly take left children.
        let leftmost = node.0 << node_level;
        let start = leftmost - self.num_leaves;
        start..start + width
    }

    /// Lowest common ancestor of two leaves; this is the switch where a
    /// communication between them is *matched* (paper §2.1).
    pub fn lca(&self, a: LeafId, b: LeafId) -> NodeId {
        debug_assert!(a.0 < self.num_leaves && b.0 < self.num_leaves);
        let mut x = self.leaf_node(a).0;
        let mut y = self.leaf_node(b).0;
        // Classic heap LCA: bring to equal depth, then walk up together.
        // Here both start at the same depth (leaves), so just walk up.
        while x != y {
            x >>= 1;
            y >>= 1;
        }
        NodeId(x)
    }

    /// All internal switches in breadth-first (top-down) order. The Phase-2
    /// sweep of the CSA processes switches in exactly this order.
    pub fn switches_top_down(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.num_leaves).map(NodeId)
    }

    /// All internal switches bottom-up (reverse BFS). The Phase-1 sweep
    /// processes switches in exactly this order.
    pub fn switches_bottom_up(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.num_leaves).rev().map(NodeId)
    }

    /// All leaves, left to right.
    pub fn leaves(&self) -> impl Iterator<Item = LeafId> + '_ {
        (0..self.num_leaves).map(LeafId)
    }

    /// Switches at tree depth `d` (root has depth 0), left to right.
    pub fn switches_at_depth(&self, d: u32) -> impl Iterator<Item = NodeId> + '_ {
        let lo = 1usize << d;
        let hi = (1usize << (d + 1)).min(self.num_leaves);
        (lo..hi.max(lo)).map(NodeId)
    }

    /// Path of switches from the parent of `leaf` up to (and including) the
    /// root, bottom-up.
    pub fn path_to_root(&self, leaf: LeafId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.height as usize);
        let mut n = self.leaf_node(leaf);
        while let Some(p) = n.parent() {
            out.push(p);
            n = p;
        }
        out
    }

    /// The directed links of the unique `source -> dest` circuit, in travel
    /// order (ascend to the LCA, then descend), without allocating.
    ///
    /// The side restriction of the 3-sided switch (an input never drives its
    /// own side's output, §2 Fig. 3(a)) means a signal can never bounce back
    /// down the edge it arrived on — so this path is the *only* route
    /// between the two leaves, which is what makes it the routability
    /// oracle for fault masks (`fault::FaultMask::blocking_fault`).
    pub fn path_links(&self, source: LeafId, dest: LeafId) -> PathLinks {
        debug_assert!(source.0 < self.num_leaves && dest.0 < self.num_leaves);
        debug_assert_ne!(source, dest, "a leaf has no path to itself");
        let apex = self.lca(source, dest);
        let s = self.leaf_node(source);
        let d = self.leaf_node(dest);
        let ups = (s.depth() - apex.depth()) as usize;
        let downs = (d.depth() - apex.depth()) as usize;
        PathLinks { src: s.0, dst: d.0, ups, downs, next: 0 }
    }

    /// Number of directed links on the unique `source -> dest` circuit.
    pub fn path_len(&self, source: LeafId, dest: LeafId) -> usize {
        let apex = self.lca(source, dest);
        let s = self.leaf_node(source).depth() - apex.depth();
        let d = self.leaf_node(dest).depth() - apex.depth();
        (s + d) as usize
    }
}

/// Allocation-free iterator over the directed links of one leaf-to-leaf
/// circuit, in travel order. Built by [`CstTopology::path_links`].
#[derive(Clone, Debug)]
pub struct PathLinks {
    src: usize,
    dst: usize,
    ups: usize,
    downs: usize,
    next: usize,
}

impl Iterator for PathLinks {
    type Item = DirectedLink;

    fn next(&mut self) -> Option<DirectedLink> {
        let k = self.next;
        if k >= self.ups + self.downs {
            return None;
        }
        self.next += 1;
        if k < self.ups {
            // k-th ancestor of the source leaf, climbing toward the apex.
            Some(DirectedLink::up_from(NodeId(self.src >> k)))
        } else {
            // Descend: the j-th step below the apex is the (downs - 1 - j)-th
            // ancestor of the destination leaf.
            let j = self.ups + self.downs - 1 - k;
            Some(DirectedLink::down_to(NodeId(self.dst >> j)))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.ups + self.downs - self.next;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for PathLinks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_sizes() {
        assert!(CstTopology::new(0).is_err());
        assert!(CstTopology::new(1).is_err());
        assert!(CstTopology::new(3).is_err());
        assert!(CstTopology::new(12).is_err());
        assert!(CstTopology::new(2).is_ok());
        assert!(CstTopology::new(1024).is_ok());
    }

    #[test]
    fn counts() {
        let t = CstTopology::with_leaves(16);
        assert_eq!(t.num_leaves(), 16);
        assert_eq!(t.num_switches(), 15);
        assert_eq!(t.num_nodes(), 31);
        assert_eq!(t.height(), 4);
    }

    #[test]
    fn leaf_node_roundtrip() {
        let t = CstTopology::with_leaves(8);
        for l in t.leaves() {
            let n = t.leaf_node(l);
            assert!(t.is_leaf(n));
            assert!(!t.is_internal(n));
            assert_eq!(t.node_leaf(n), Some(l));
        }
        for s in t.switches_top_down() {
            assert!(t.is_internal(s));
            assert_eq!(t.node_leaf(s), None);
        }
    }

    #[test]
    fn leaf_ranges_partition_per_level() {
        let t = CstTopology::with_leaves(32);
        for d in 0..=t.height() {
            let mut covered = [false; 32];
            let nodes: Vec<_> = if d == t.height() {
                t.leaves().map(|l| t.leaf_node(l)).collect()
            } else {
                t.switches_at_depth(d).collect()
            };
            for n in nodes {
                for i in t.leaf_range(n) {
                    assert!(!covered[i], "overlap at {i}");
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "level {d} does not cover");
        }
    }

    #[test]
    fn leaf_range_of_leaf_is_singleton() {
        let t = CstTopology::with_leaves(16);
        for l in t.leaves() {
            assert_eq!(t.leaf_range(t.leaf_node(l)), l.0..l.0 + 1);
        }
        assert_eq!(t.leaf_range(NodeId::ROOT), 0..16);
    }

    #[test]
    fn lca_basics() {
        let t = CstTopology::with_leaves(8);
        assert_eq!(t.lca(LeafId(0), LeafId(7)), NodeId::ROOT);
        assert_eq!(t.lca(LeafId(0), LeafId(1)), NodeId(4));
        assert_eq!(t.lca(LeafId(2), LeafId(3)), NodeId(5));
        assert_eq!(t.lca(LeafId(0), LeafId(3)), NodeId(2));
        assert_eq!(t.lca(LeafId(4), LeafId(7)), NodeId(3));
        assert_eq!(t.lca(LeafId(5), LeafId(5)), t.leaf_node(LeafId(5)));
    }

    #[test]
    fn lca_is_ancestor_and_splits_sides() {
        let t = CstTopology::with_leaves(64);
        for a in 0..64 {
            for b in (a + 1)..64 {
                let l = t.lca(LeafId(a), LeafId(b));
                assert!(l.is_ancestor_of(t.leaf_node(LeafId(a))));
                assert!(l.is_ancestor_of(t.leaf_node(LeafId(b))));
                if t.is_internal(l) {
                    // a on the left side, b on the right side
                    assert!(t.leaf_range(l.left_child()).contains(&a));
                    assert!(t.leaf_range(l.right_child()).contains(&b));
                }
            }
        }
    }

    #[test]
    fn path_to_root_lengths() {
        let t = CstTopology::with_leaves(16);
        for l in t.leaves() {
            let p = t.path_to_root(l);
            assert_eq!(p.len(), 4);
            assert_eq!(*p.last().unwrap(), NodeId::ROOT);
        }
    }

    #[test]
    fn path_links_match_circuits() {
        use crate::path::Circuit;
        let t = CstTopology::with_leaves(16);
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let c = Circuit::between(&t, LeafId(s), LeafId(d));
                let walked: Vec<_> = t.path_links(LeafId(s), LeafId(d)).collect();
                assert_eq!(walked, c.links, "{s}->{d}");
                assert_eq!(t.path_len(LeafId(s), LeafId(d)), walked.len());
                assert_eq!(t.path_links(LeafId(s), LeafId(d)).len(), walked.len());
            }
        }
    }

    #[test]
    fn sweep_orders() {
        let t = CstTopology::with_leaves(8);
        let down: Vec<_> = t.switches_top_down().collect();
        assert_eq!(down.first(), Some(&NodeId::ROOT));
        assert_eq!(down.len(), 7);
        // every parent appears before its children in top-down order
        for (i, &n) in down.iter().enumerate() {
            if let Some(p) = n.parent() {
                let pi = down.iter().position(|&m| m == p).unwrap();
                assert!(pi < i);
            }
        }
        let up: Vec<_> = t.switches_bottom_up().collect();
        assert_eq!(up.last(), Some(&NodeId::ROOT));
    }
}
