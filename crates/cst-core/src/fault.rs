//! Hardware fault masks over the CST.
//!
//! A [`FaultMask`] records which parts of a tree instance are unavailable:
//!
//! * **dead switches** — the switch holds no configuration at all; every
//!   circuit through it is unroutable;
//! * **dead directed links** — one channel of an edge is gone; circuits
//!   using that channel are unroutable (the opposite channel may live on);
//! * **degraded (half-duplex) edges** — both channels work, but not in the
//!   same round; schedulers must *temporally* reroute by splitting any
//!   round that would use both directions at once.
//!
//! Because the 3-sided switch never connects an input back to its own
//! side's output (§2, Fig. 3(a)), the path between two leaves is unique —
//! there is no spatial detour in a tree. A dead switch or dead link on a
//! communication's path therefore makes it *unroutable*, and
//! [`FaultMask::blocking_fault`] is an exact oracle, not a heuristic. The
//! only routing freedom a fault leaves is temporal (degraded edges), which
//! `cst-padr`'s degrade pass exploits.
//!
//! Storage is dense bitsets indexed exactly like the flat [`ConfigArena`]
//! tables: switch state by `NodeId` (size `2N`), directed links by
//! [`DirectedLink::dense_index`] (size `4N`), edges by child `NodeId`
//! (size `2N`). Queries are O(1); the path oracle is O(log N).
//!
//! [`ConfigArena`]: crate::round::ConfigArena

use crate::link::DirectedLink;
use crate::node::{LeafId, NodeId};
use crate::topology::CstTopology;
use serde::{de_field, Deserialize, Error as SerdeError, Serialize, Value};

/// Why a communication cannot be routed (or had to be rerouted).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FaultCause {
    /// A switch on the unique path is dead.
    DeadSwitch(NodeId),
    /// A directed link on the unique path is dead.
    DeadLink(DirectedLink),
}

impl core::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultCause::DeadSwitch(n) => write!(f, "dead switch {n}"),
            FaultCause::DeadLink(l) => write!(f, "dead link {l}"),
        }
    }
}

impl Serialize for FaultCause {
    fn to_value(&self) -> Value {
        match self {
            FaultCause::DeadSwitch(n) => Value::Map(vec![
                ("kind".to_string(), Value::Str("dead-switch".to_string())),
                ("node".to_string(), Value::UInt(n.0 as u64)),
            ]),
            FaultCause::DeadLink(l) => Value::Map(vec![
                ("kind".to_string(), Value::Str("dead-link".to_string())),
                ("child".to_string(), Value::UInt(l.child.0 as u64)),
                ("up".to_string(), Value::Bool(l.up)),
            ]),
        }
    }
}

impl Deserialize for FaultCause {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "dead-switch" => Ok(FaultCause::DeadSwitch(NodeId(de_field(v, "node")?))),
            "dead-link" => Ok(FaultCause::DeadLink(DirectedLink {
                child: NodeId(de_field(v, "child")?),
                up: de_field(v, "up")?,
            })),
            other => Err(SerdeError(format!("unknown fault kind {other:?}"))),
        }
    }
}

/// The set of faulty hardware of one CST instance. See the module docs for
/// the fault model and the representation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultMask {
    num_leaves: usize,
    dead_switch: Vec<bool>,
    dead_link: Vec<bool>,
    degraded: Vec<bool>,
    // Insertion-ordered fault lists, for iteration and reporting.
    switches: Vec<NodeId>,
    links: Vec<DirectedLink>,
    edges: Vec<NodeId>,
}

impl FaultMask {
    /// A mask with no faults, sized for `topo`.
    pub fn empty(topo: &CstTopology) -> FaultMask {
        FaultMask {
            num_leaves: topo.num_leaves(),
            dead_switch: vec![false; topo.node_table_len()],
            dead_link: vec![false; 4 * topo.num_leaves()],
            degraded: vec![false; topo.node_table_len()],
            switches: Vec::new(),
            links: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Number of leaves of the tree this mask describes.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Mark an internal switch dead. Returns `false` (mask unchanged) if
    /// `node` is not an internal switch or is already dead.
    pub fn kill_switch(&mut self, node: NodeId) -> bool {
        if node.0 < 1 || node.0 >= self.num_leaves || self.dead_switch[node.0] {
            return false;
        }
        self.dead_switch[node.0] = true;
        self.switches.push(node);
        true
    }

    /// Mark one directed channel dead. Returns `false` (mask unchanged) if
    /// the link's child endpoint is not a valid non-root node or the
    /// channel is already dead.
    pub fn kill_link(&mut self, link: DirectedLink) -> bool {
        if link.child.0 < 2 || link.child.0 >= 2 * self.num_leaves {
            return false;
        }
        let i = link.dense_index();
        if self.dead_link[i] {
            return false;
        }
        self.dead_link[i] = true;
        self.links.push(link);
        true
    }

    /// Mark the edge above `child` half-duplex: both channels still work,
    /// but a round may use only one direction. Returns `false` (mask
    /// unchanged) on an invalid child or an already-degraded edge.
    pub fn degrade_edge(&mut self, child: NodeId) -> bool {
        if child.0 < 2 || child.0 >= 2 * self.num_leaves || self.degraded[child.0] {
            return false;
        }
        self.degraded[child.0] = true;
        self.edges.push(child);
        true
    }

    /// True when the mask records no faults at all.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty() && self.links.is_empty() && self.edges.is_empty()
    }

    /// True when at least one edge is degraded (half-duplex).
    pub fn has_degraded(&self) -> bool {
        !self.edges.is_empty()
    }

    /// Total number of recorded faults.
    pub fn num_faults(&self) -> usize {
        self.switches.len() + self.links.len() + self.edges.len()
    }

    /// O(1): is this switch dead?
    #[inline]
    pub fn switch_dead(&self, node: NodeId) -> bool {
        self.dead_switch.get(node.0).copied().unwrap_or(false)
    }

    /// O(1): is this directed channel dead?
    #[inline]
    pub fn link_dead(&self, link: DirectedLink) -> bool {
        self.dead_link.get(link.dense_index()).copied().unwrap_or(false)
    }

    /// O(1): is the edge above `child` half-duplex?
    #[inline]
    pub fn edge_degraded(&self, child: NodeId) -> bool {
        self.degraded.get(child.0).copied().unwrap_or(false)
    }

    /// Dead switches, in the order they were recorded.
    pub fn dead_switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// Dead directed links, in the order they were recorded.
    pub fn dead_links(&self) -> &[DirectedLink] {
        &self.links
    }

    /// Degraded edges (child endpoints), in the order they were recorded.
    pub fn degraded_edges(&self) -> &[NodeId] {
        &self.edges
    }

    /// Stable 64-bit fingerprint of this mask, for schedule-cache keys.
    ///
    /// Hashes the same state the derived `Eq` compares — tree size plus
    /// the three insertion-ordered fault lists — so equal masks always
    /// fingerprint equal. (Two masks holding the same faults recorded in
    /// different orders compare unequal under `Eq` and fingerprint
    /// unequal here; the cache treats them as distinct keys, which costs
    /// a redundant entry but never a wrong hit.) 64 bits can collide:
    /// consumers must keep the mask and fall back to `==` on lookup.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fp::Fp64::new("cst/fault-mask");
        fp.write_usize(self.num_leaves);
        fp.write_usize(self.switches.len());
        for n in &self.switches {
            fp.write_usize(n.0);
        }
        fp.write_usize(self.links.len());
        for l in &self.links {
            fp.write_usize(l.child.0);
            fp.write_u64(u64::from(l.up));
        }
        fp.write_usize(self.edges.len());
        for n in &self.edges {
            fp.write_usize(n.0);
        }
        fp.finish()
    }

    /// The fault making `source -> dest` unroutable, or `None` when the
    /// communication's unique path avoids every dead switch and channel.
    /// Degraded edges never block a path (they only constrain rounds), so
    /// they are not consulted here. O(log N), allocation-free.
    pub fn blocking_fault(
        &self,
        topo: &CstTopology,
        source: LeafId,
        dest: LeafId,
    ) -> Option<FaultCause> {
        for link in topo.path_links(source, dest) {
            if self.link_dead(link) {
                return Some(FaultCause::DeadLink(link));
            }
            // The switch adjacent to the link on the apex side: dead
            // switches block both channels of both their edges.
            if let Some(sw) = link.child.parent() {
                if self.switch_dead(sw) {
                    return Some(FaultCause::DeadSwitch(sw));
                }
            }
        }
        None
    }
}

impl Serialize for FaultMask {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("num_leaves".to_string(), Value::UInt(self.num_leaves as u64)),
            (
                "dead_switches".to_string(),
                Value::Seq(self.switches.iter().map(|n| Value::UInt(n.0 as u64)).collect()),
            ),
            (
                "dead_links".to_string(),
                Value::Seq(self.links.iter().map(|l| l.to_value()).collect()),
            ),
            (
                "degraded_edges".to_string(),
                Value::Seq(self.edges.iter().map(|n| Value::UInt(n.0 as u64)).collect()),
            ),
        ])
    }
}

impl Deserialize for FaultMask {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let num_leaves: usize = de_field(v, "num_leaves")?;
        let topo = CstTopology::new(num_leaves)
            .map_err(|e| SerdeError(format!("invalid fault mask: {e}")))?;
        let mut mask = FaultMask::empty(&topo);
        for n in de_field::<Vec<usize>>(v, "dead_switches")? {
            if !mask.kill_switch(NodeId(n)) {
                return Err(SerdeError(format!("invalid dead switch n{n}")));
            }
        }
        for l in de_field::<Vec<DirectedLink>>(v, "dead_links")? {
            if !mask.kill_link(l) {
                return Err(SerdeError(format!("invalid dead link {l}")));
            }
        }
        for n in de_field::<Vec<usize>>(v, "degraded_edges")? {
            if !mask.degrade_edge(NodeId(n)) {
                return Err(SerdeError(format!("invalid degraded edge n{n}")));
            }
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Circuit;

    fn topo8() -> CstTopology {
        CstTopology::with_leaves(8)
    }

    #[test]
    fn empty_mask_blocks_nothing() {
        let t = topo8();
        let m = FaultMask::empty(&t);
        assert!(m.is_empty());
        assert_eq!(m.num_faults(), 0);
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    assert_eq!(m.blocking_fault(&t, LeafId(s), LeafId(d)), None);
                }
            }
        }
    }

    #[test]
    fn dead_switch_blocks_exactly_the_paths_through_it() {
        let t = topo8();
        let mut m = FaultMask::empty(&t);
        assert!(m.kill_switch(NodeId(2))); // covers leaves 0..4
        assert!(!m.kill_switch(NodeId(2)), "double kill is a no-op");
        for s in 0..8usize {
            for d in 0..8usize {
                if s == d {
                    continue;
                }
                let c = Circuit::between(&t, LeafId(s), LeafId(d));
                let on_path = c.settings.iter().any(|&(n, _)| n == NodeId(2));
                let blocked = m.blocking_fault(&t, LeafId(s), LeafId(d));
                assert_eq!(blocked.is_some(), on_path, "{s}->{d}");
                if let Some(cause) = blocked {
                    assert_eq!(cause, FaultCause::DeadSwitch(NodeId(2)));
                }
            }
        }
    }

    #[test]
    fn dead_link_blocks_one_direction_only() {
        let t = topo8();
        let mut m = FaultMask::empty(&t);
        // Kill the upward channel above n4 (the switch over leaves 0 and 1).
        let l = DirectedLink::up_from(NodeId(4));
        assert!(m.kill_link(l));
        // 0 -> 2 climbs through n4^: blocked.
        assert_eq!(
            m.blocking_fault(&t, LeafId(0), LeafId(2)),
            Some(FaultCause::DeadLink(l))
        );
        // 2 -> 0 descends through n4v: still routable.
        assert_eq!(m.blocking_fault(&t, LeafId(2), LeafId(0)), None);
        // 0 -> 1 turns below n4's parent edge: unaffected.
        assert_eq!(m.blocking_fault(&t, LeafId(0), LeafId(1)), None);
    }

    #[test]
    fn degraded_edges_never_block() {
        let t = topo8();
        let mut m = FaultMask::empty(&t);
        assert!(m.degrade_edge(NodeId(4)));
        assert!(m.has_degraded());
        assert!(!m.is_empty());
        assert!(m.edge_degraded(NodeId(4)));
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    assert_eq!(m.blocking_fault(&t, LeafId(s), LeafId(d)), None);
                }
            }
        }
    }

    #[test]
    fn invalid_targets_rejected() {
        let t = topo8();
        let mut m = FaultMask::empty(&t);
        assert!(!m.kill_switch(NodeId(0)), "0 is not a node");
        assert!(!m.kill_switch(NodeId(8)), "leaves are PEs, not switches");
        assert!(!m.kill_switch(NodeId(99)));
        assert!(!m.kill_link(DirectedLink::up_from(NodeId(1))), "root has no parent edge");
        assert!(!m.kill_link(DirectedLink::up_from(NodeId(40))));
        assert!(!m.degrade_edge(NodeId(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn blocking_fault_agrees_with_circuit_scan() {
        // Differential check of the allocation-free oracle against a direct
        // scan of the materialized circuit, across a batch of masks.
        let t = CstTopology::with_leaves(16);
        let masks = {
            let mut v = Vec::new();
            let mut a = FaultMask::empty(&t);
            a.kill_switch(NodeId(3));
            a.kill_link(DirectedLink::down_to(NodeId(9)));
            v.push(a);
            let mut b = FaultMask::empty(&t);
            b.kill_link(DirectedLink::up_from(NodeId(16)));
            b.kill_link(DirectedLink::up_from(NodeId(5)));
            b.kill_switch(NodeId(7));
            v.push(b);
            v
        };
        for m in &masks {
            for s in 0..16usize {
                for d in 0..16usize {
                    if s == d {
                        continue;
                    }
                    let c = Circuit::between(&t, LeafId(s), LeafId(d));
                    let scan = c.links.iter().any(|&l| m.link_dead(l))
                        || c.settings.iter().any(|&(n, _)| m.switch_dead(n));
                    assert_eq!(
                        m.blocking_fault(&t, LeafId(s), LeafId(d)).is_some(),
                        scan,
                        "{s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn fingerprint_tracks_equality() {
        let t = topo8();
        let build = |faults: &[usize]| {
            let mut m = FaultMask::empty(&t);
            for &n in faults {
                m.kill_switch(NodeId(n));
            }
            m
        };
        let a = build(&[2, 5]);
        let b = build(&[2, 5]);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different faults, different insertion order, different tree size:
        // all distinct fingerprints (insertion order is part of Eq).
        assert_ne!(a.fingerprint(), build(&[2]).fingerprint());
        assert_ne!(a.fingerprint(), build(&[5, 2]).fingerprint());
        let t16 = CstTopology::with_leaves(16);
        assert_ne!(
            FaultMask::empty(&t).fingerprint(),
            FaultMask::empty(&t16).fingerprint()
        );
        // A dead link and a degraded edge on the same child are distinct
        // fault kinds and must not alias in the stream.
        let mut link = FaultMask::empty(&t);
        link.kill_link(DirectedLink::up_from(NodeId(4)));
        let mut edge = FaultMask::empty(&t);
        edge.degrade_edge(NodeId(4));
        assert_ne!(link.fingerprint(), edge.fingerprint());
    }

    #[test]
    fn serde_roundtrip() {
        let t = topo8();
        let mut m = FaultMask::empty(&t);
        m.kill_switch(NodeId(5));
        m.kill_link(DirectedLink::down_to(NodeId(12)));
        m.degrade_edge(NodeId(6));
        let v = m.to_value();
        let back = FaultMask::from_value(&v).unwrap();
        assert_eq!(back, m);
        let cause = FaultCause::DeadLink(DirectedLink::up_from(NodeId(9)));
        assert_eq!(FaultCause::from_value(&cause.to_value()).unwrap(), cause);
        let sw = FaultCause::DeadSwitch(NodeId(3));
        assert_eq!(FaultCause::from_value(&sw.to_value()).unwrap(), sw);
    }
}
