//! The 3-sided circuit switch of the CST (paper §2, Fig. 3(a)).
//!
//! A switch has three data inputs — `l_i`, `r_i`, `p_i` (from the left
//! child, right child and parent) — and three data outputs — `l_o`, `r_o`,
//! `p_o`. A configuration is a *partial one-to-one* map from inputs to
//! outputs subject to the side restriction: an input may be connected to any
//! output of the other two sides, never to the output of its own side. The
//! side restriction is what bounds every circuit to `O(log N)` switches
//! (a path can never "bounce" back down the edge it came up).

use crate::error::CstError;
use serde::{Deserialize, Serialize};

/// One of the three neighbor sides of a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Side {
    /// Toward the left child.
    Left,
    /// Toward the right child.
    Right,
    /// Toward the parent.
    Parent,
}

impl Side {
    /// All sides, in a fixed order used for dense indexing.
    pub const ALL: [Side; 3] = [Side::Left, Side::Right, Side::Parent];

    /// Dense index 0..3.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
            Side::Parent => 2,
        }
    }
}

impl core::fmt::Display for Side {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Side::Left => write!(f, "l"),
            Side::Right => write!(f, "r"),
            Side::Parent => write!(f, "p"),
        }
    }
}

/// A directed internal connection `input(from) -> output(to)` of a switch.
///
/// The paper writes these as e.g. `l_i -> r_o`. Connections with
/// `from == to` are illegal (side restriction).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Connection {
    /// Side whose *input* feeds the connection.
    pub from: Side,
    /// Side whose *output* the connection drives.
    pub to: Side,
}

impl Connection {
    /// `l_i -> r_o`: forward a matched communication (type 1 of Fig. 4(a)).
    pub const L_TO_R: Connection = Connection { from: Side::Left, to: Side::Right };
    /// `l_i -> p_o`: pass a left-subtree source upward (type 4).
    pub const L_TO_P: Connection = Connection { from: Side::Left, to: Side::Parent };
    /// `r_i -> p_o`: pass a right-subtree source upward (type 2).
    pub const R_TO_P: Connection = Connection { from: Side::Right, to: Side::Parent };
    /// `p_i -> l_o`: pass a destination downward into the left subtree (type 3).
    pub const P_TO_L: Connection = Connection { from: Side::Parent, to: Side::Left };
    /// `p_i -> r_o`: pass a destination downward into the right subtree (type 5).
    pub const P_TO_R: Connection = Connection { from: Side::Parent, to: Side::Right };
    /// `r_i -> l_o`: forward a *left-oriented* matched communication. Never
    /// used for right-oriented sets but part of the hardware.
    pub const R_TO_L: Connection = Connection { from: Side::Right, to: Side::Left };

    /// All six legal connections.
    pub const ALL: [Connection; 6] = [
        Connection::L_TO_R,
        Connection::L_TO_P,
        Connection::R_TO_P,
        Connection::P_TO_L,
        Connection::P_TO_R,
        Connection::R_TO_L,
    ];

    /// Construct a checked connection.
    pub fn new(from: Side, to: Side) -> Result<Self, CstError> {
        if from == to {
            Err(CstError::SameSideConnection { side: from })
        } else {
            Ok(Connection { from, to })
        }
    }

    /// True if the connection obeys the side restriction.
    #[inline]
    pub fn is_legal(self) -> bool {
        self.from != self.to
    }
}

impl core::fmt::Display for Connection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}i->{}o", self.from, self.to)
    }
}

/// The configuration of one switch: for each output side, which input side
/// (if any) drives it.
///
/// Invariants enforced by the mutators:
/// * one-to-one: an input drives at most one output;
/// * side restriction: no same-side connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// `driver[s.index()]` = input side currently driving output `s`.
    driver: [Option<Side>; 3],
}

impl SwitchConfig {
    /// The empty (fully disconnected) configuration.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Which input drives output side `out`, if any.
    #[inline]
    pub fn driver_of(&self, out: Side) -> Option<Side> {
        self.driver[out.index()]
    }

    /// Which output is driven by input side `inp`, if any.
    #[inline]
    pub fn output_of(&self, inp: Side) -> Option<Side> {
        Side::ALL
            .into_iter()
            .find(|&o| self.driver[o.index()] == Some(inp))
    }

    /// True if the given connection is currently set.
    #[inline]
    pub fn has(&self, c: Connection) -> bool {
        self.driver[c.to.index()] == Some(c.from)
    }

    /// True if input `inp` feeds no output.
    #[inline]
    pub fn input_free(&self, inp: Side) -> bool {
        self.output_of(inp).is_none()
    }

    /// True if output `out` is undriven.
    #[inline]
    pub fn output_free(&self, out: Side) -> bool {
        self.driver_of(out).is_none()
    }

    /// Number of connections currently set (0..=3).
    pub fn len(&self) -> usize {
        self.driver.iter().filter(|d| d.is_some()).count()
    }

    /// True if fully disconnected.
    pub fn is_empty(&self) -> bool {
        self.driver.iter().all(|d| d.is_none())
    }

    /// Iterate over the set connections in `Side::ALL` output order.
    pub fn connections(&self) -> impl Iterator<Item = Connection> + '_ {
        Side::ALL.into_iter().filter_map(move |o| {
            self.driver[o.index()].map(|i| Connection { from: i, to: o })
        })
    }

    /// Set a connection, *failing* if either port is already in use by a
    /// different connection (strict form used by round assembly, where a
    /// conflict indicates a scheduler bug rather than a reconfiguration).
    pub fn set(&mut self, c: Connection) -> Result<(), CstError> {
        if !c.is_legal() {
            return Err(CstError::SameSideConnection { side: c.from });
        }
        if self.has(c) {
            return Ok(());
        }
        if let Some(cur) = self.driver_of(c.to) {
            return Err(CstError::OutputConflict { out: c.to, cur, new: c.from });
        }
        if let Some(out) = self.output_of(c.from) {
            return Err(CstError::InputConflict { inp: c.from, cur: out, new: c.to });
        }
        self.driver[c.to.index()] = Some(c.from);
        Ok(())
    }

    /// Force a connection, *evicting* anything currently using either port.
    /// Returns `true` if the configuration changed (i.e. the connection was
    /// not already present). This is the physical "reconfigure" operation
    /// whose invocations the power model charges for.
    pub fn force(&mut self, c: Connection) -> bool {
        debug_assert!(c.is_legal());
        if self.has(c) {
            return false;
        }
        // Evict whatever the input currently drives.
        if let Some(out) = self.output_of(c.from) {
            self.driver[out.index()] = None;
        }
        self.driver[c.to.index()] = Some(c.from);
        true
    }

    /// Disconnect the connection driving output `out`, if any.
    pub fn clear_output(&mut self, out: Side) -> bool {
        let was = self.driver[out.index()].is_some();
        self.driver[out.index()] = None;
        was
    }

    /// Fully disconnect.
    pub fn clear(&mut self) {
        self.driver = [None; 3];
    }

    /// Connections present in `self` but not in `other`.
    pub fn added_versus(&self, other: &SwitchConfig) -> Vec<Connection> {
        self.connections().filter(|&c| !other.has(c)).collect()
    }
}

impl core::fmt::Display for SwitchConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        let mut first = true;
        write!(f, "{{")?;
        for c in self.connections() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_side_rejected() {
        assert!(Connection::new(Side::Left, Side::Left).is_err());
        assert!(Connection::new(Side::Left, Side::Right).is_ok());
        for c in Connection::ALL {
            assert!(c.is_legal());
        }
    }

    #[test]
    fn set_and_query() {
        let mut cfg = SwitchConfig::empty();
        assert!(cfg.is_empty());
        cfg.set(Connection::L_TO_R).unwrap();
        assert!(cfg.has(Connection::L_TO_R));
        assert_eq!(cfg.driver_of(Side::Right), Some(Side::Left));
        assert_eq!(cfg.output_of(Side::Left), Some(Side::Right));
        assert!(cfg.input_free(Side::Right));
        assert!(!cfg.input_free(Side::Left));
        assert!(cfg.output_free(Side::Parent));
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn set_detects_conflicts() {
        let mut cfg = SwitchConfig::empty();
        cfg.set(Connection::L_TO_R).unwrap();
        // output r_o busy
        assert!(matches!(
            cfg.set(Connection::P_TO_R),
            Err(CstError::OutputConflict { .. })
        ));
        // input l_i busy
        assert!(matches!(
            cfg.set(Connection::L_TO_P),
            Err(CstError::InputConflict { .. })
        ));
        // re-setting the same connection is a no-op
        cfg.set(Connection::L_TO_R).unwrap();
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn three_disjoint_connections_fit() {
        let mut cfg = SwitchConfig::empty();
        cfg.set(Connection::L_TO_R).unwrap();
        cfg.set(Connection::R_TO_P).unwrap();
        cfg.set(Connection::P_TO_L).unwrap();
        assert_eq!(cfg.len(), 3);
    }

    #[test]
    fn force_evicts() {
        let mut cfg = SwitchConfig::empty();
        assert!(cfg.force(Connection::L_TO_R));
        // same connection again: no change
        assert!(!cfg.force(Connection::L_TO_R));
        // l_i now drives p_o instead; r_o freed
        assert!(cfg.force(Connection::L_TO_P));
        assert!(cfg.output_free(Side::Right));
        assert_eq!(cfg.output_of(Side::Left), Some(Side::Parent));
        // p_i takes r_o
        assert!(cfg.force(Connection::P_TO_R));
        assert_eq!(cfg.len(), 2);
    }

    #[test]
    fn one_to_one_always_holds_under_force() {
        // brute-force a few random-ish sequences
        let seq = [
            Connection::L_TO_R,
            Connection::P_TO_R,
            Connection::L_TO_P,
            Connection::R_TO_L,
            Connection::P_TO_L,
            Connection::R_TO_P,
            Connection::L_TO_R,
        ];
        let mut cfg = SwitchConfig::empty();
        for c in seq {
            cfg.force(c);
            // invariant: each input drives at most one output
            for i in Side::ALL {
                let count = Side::ALL
                    .into_iter()
                    .filter(|&o| cfg.driver_of(o) == Some(i))
                    .count();
                assert!(count <= 1);
            }
        }
    }

    #[test]
    fn added_versus_diff() {
        let mut a = SwitchConfig::empty();
        a.set(Connection::L_TO_R).unwrap();
        let mut b = a;
        b.clear_output(Side::Right);
        b.set(Connection::R_TO_P).unwrap();
        assert_eq!(b.added_versus(&a), vec![Connection::R_TO_P]);
        assert_eq!(a.added_versus(&b), vec![Connection::L_TO_R]);
        assert!(a.added_versus(&a).is_empty());
    }

    #[test]
    fn display_is_stable() {
        let mut cfg = SwitchConfig::empty();
        cfg.set(Connection::L_TO_R).unwrap();
        cfg.set(Connection::P_TO_L).unwrap();
        assert_eq!(format!("{cfg}"), "{pi->lo, li->ro}");
    }
}
