//! Processing-element roles (paper Step 1.1).
//!
//! Each PE knows *locally* whether it is a source, a destination, or
//! neither; this is the only information that ever enters the tree, encoded
//! as `[1,0]`, `[0,1]`, `[0,0]`.

use serde::{Deserialize, Serialize};

/// The local role of a PE for a given communication set.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PeRole {
    /// Source of exactly one communication: announces `[1, 0]`.
    Source,
    /// Destination of exactly one communication: announces `[0, 1]`.
    Destination,
    /// Not an endpoint: announces `[0, 0]`.
    #[default]
    Idle,
}

impl PeRole {
    /// The `[s, d]` pair the PE sends to its parent in Step 1.1.
    pub fn announcement(self) -> (u32, u32) {
        match self {
            PeRole::Source => (1, 0),
            PeRole::Destination => (0, 1),
            PeRole::Idle => (0, 0),
        }
    }

    /// Inverse of [`Self::announcement`] for well-formed pairs.
    pub fn from_announcement(s: u32, d: u32) -> Option<PeRole> {
        match (s, d) {
            (1, 0) => Some(PeRole::Source),
            (0, 1) => Some(PeRole::Destination),
            (0, 0) => Some(PeRole::Idle),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announcement_roundtrip() {
        for r in [PeRole::Source, PeRole::Destination, PeRole::Idle] {
            let (s, d) = r.announcement();
            assert_eq!(PeRole::from_announcement(s, d), Some(r));
        }
        assert_eq!(PeRole::from_announcement(1, 1), None);
        assert_eq!(PeRole::from_announcement(2, 0), None);
    }

    #[test]
    fn default_is_idle() {
        assert_eq!(PeRole::default(), PeRole::Idle);
    }
}
