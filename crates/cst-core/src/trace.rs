//! Protocol traces: neutral per-switch message records of a CSA execution.
//!
//! A [`ProtocolTrace`] captures everything the CSA puts on the wire —
//! the Phase-1 counter table and, per round, one [`SwitchEvent`] per
//! stepped switch (the request it received, the connections it held, and
//! the two child messages it forwarded). Emitters live in `cst-padr`
//! (`CsaScratch::schedule_traced`) and `cst-sim` (`simulate_traced`, the
//! RTL machine); the independent reference model in `cst-model` replays
//! traces and reports divergences as `CST2xx` diagnostics.
//!
//! The types here deliberately mirror — but do not reuse — the control
//! messages of `cst-padr`: `cst-core` sits below the scheduler, and the
//! reference model must not share message code with the implementation it
//! checks. Conversions live at the emitter side.

use crate::node::NodeId;
use crate::switch::SwitchConfig;

/// The request-kind discriminant of a traced control message, mirroring
/// the CSA's `[null,null]` / `[s,null]` / `[d,null]` / `[s,d]` forms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoKind {
    /// Neither link between parent and child is used this round.
    #[default]
    Null,
    /// The upward link carries a source.
    S,
    /// The downward link carries a destination.
    D,
    /// Both links are in use.
    SD,
}

/// One traced Phase-2 control message `[kind, x_s, x_d]`.
///
/// Rank semantics follow the paper's Definition 2: `x_s` counts remaining
/// pass-up sources to the left of the requested source, `x_d` counts
/// remaining pass-down destinations to the right of the requested
/// destination.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtoMsg {
    /// Which links the message claims.
    pub kind: ProtoKind,
    /// Source rank; meaningful iff `kind` has a source component.
    pub x_s: u32,
    /// Destination rank; meaningful iff `kind` has a destination component.
    pub x_d: u32,
}

impl ProtoMsg {
    /// The idle message `[null, null]`.
    pub const NULL: ProtoMsg = ProtoMsg { kind: ProtoKind::Null, x_s: 0, x_d: 0 };

    /// `[s, null]` with a source rank.
    pub fn source(x_s: u32) -> ProtoMsg {
        ProtoMsg { kind: ProtoKind::S, x_s, x_d: 0 }
    }

    /// `[d, null]` with a destination rank.
    pub fn dest(x_d: u32) -> ProtoMsg {
        ProtoMsg { kind: ProtoKind::D, x_s: 0, x_d }
    }

    /// `[s, d]` with both ranks.
    pub fn both(x_s: u32, x_d: u32) -> ProtoMsg {
        ProtoMsg { kind: ProtoKind::SD, x_s, x_d }
    }

    /// True if the message has a source component.
    pub fn wants_source(self) -> bool {
        matches!(self.kind, ProtoKind::S | ProtoKind::SD)
    }

    /// True if the message has a destination component.
    pub fn wants_dest(self) -> bool {
        matches!(self.kind, ProtoKind::D | ProtoKind::SD)
    }
}

impl core::fmt::Display for ProtoMsg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            ProtoKind::Null => write!(f, "[null,null]"),
            ProtoKind::S => write!(f, "[s,null;x_s={}]", self.x_s),
            ProtoKind::D => write!(f, "[d,null;x_d={}]", self.x_d),
            ProtoKind::SD => write!(f, "[s,d;x_s={},x_d={}]", self.x_s, self.x_d),
        }
    }
}

/// One switch step as seen on the wire: the request from the parent, the
/// connections held for the round, and the two forwarded child messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchEvent {
    /// The stepped switch.
    pub node: NodeId,
    /// The request it received (`[null,null]` at the root).
    pub req: ProtoMsg,
    /// The connections it held this round (as a configuration — push
    /// order is immaterial, the held set is what the hardware exposes).
    pub config: SwitchConfig,
    /// Message forwarded to the left child.
    pub to_left: ProtoMsg,
    /// Message forwarded to the right child.
    pub to_right: ProtoMsg,
}

impl core::fmt::Display for SwitchEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: recv {} hold {{{}}} send L:{} R:{}",
            self.node, self.req, self.config, self.to_left, self.to_right
        )
    }
}

/// The events of one Phase-2 round, in emission order (emitters differ in
/// sweep order; consumers index by node).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtocolRound {
    /// One event per stepped switch.
    pub events: Vec<SwitchEvent>,
}

impl ProtocolRound {
    /// The event recorded for `node`, if exactly one exists. Emitters step
    /// every switch once per round; a duplicate is a conformance finding
    /// (the replay layer reports it), so lookup returns the first.
    pub fn event_for(&self, node: NodeId) -> Option<&SwitchEvent> {
        self.events.iter().find(|e| e.node == node)
    }
}

/// A complete protocol trace of one CSA execution: the Phase-1 counter
/// snapshot plus every per-round switch event.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtocolTrace {
    /// Leaves of the topology the trace was recorded on.
    pub num_leaves: usize,
    /// Per-node Phase-1 `C_S` snapshot in the analyzer's layout
    /// `[M, S_L−M, D_L, S_R, D_R−M]`, indexed by heap node id (leaf
    /// entries zero). Taken after Phase 1, before the first round.
    pub phase1: Vec<[u32; 5]>,
    /// The rounds, in execution order.
    pub rounds: Vec<ProtocolRound>,
}

impl ProtocolTrace {
    /// An empty trace; emitters call [`ProtocolTrace::reset`] first.
    pub fn new() -> ProtocolTrace {
        ProtocolTrace::default()
    }

    /// Clear all recorded state and re-target the trace at a topology.
    pub fn reset(&mut self, num_leaves: usize) {
        self.num_leaves = num_leaves;
        self.phase1.clear();
        self.rounds.clear();
    }

    /// Record the Phase-1 counter snapshot (one entry per heap node).
    pub fn set_phase1(&mut self, counters: impl Iterator<Item = [u32; 5]>) {
        self.phase1.clear();
        self.phase1.extend(counters);
    }

    /// Open a new (empty) round; subsequent [`ProtocolTrace::record`]
    /// calls append to it.
    pub fn begin_round(&mut self) {
        self.rounds.push(ProtocolRound::default());
    }

    /// Append an event to the current round. Call after
    /// [`ProtocolTrace::begin_round`]; a trace with no open round drops
    /// the event (emitters always open the round first).
    pub fn record(&mut self, event: SwitchEvent) {
        if let Some(round) = self.rounds.last_mut() {
            round.events.push(event);
        }
    }

    /// Total events across all rounds.
    pub fn num_events(&self) -> usize {
        self.rounds.iter().map(|r| r.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::Connection;

    #[test]
    fn msg_constructors_and_components() {
        assert_eq!(ProtoMsg::NULL.kind, ProtoKind::Null);
        assert!(ProtoMsg::source(2).wants_source());
        assert!(!ProtoMsg::source(2).wants_dest());
        assert!(ProtoMsg::dest(1).wants_dest());
        assert!(ProtoMsg::both(0, 3).wants_source() && ProtoMsg::both(0, 3).wants_dest());
        assert_eq!(ProtoMsg::both(1, 2), ProtoMsg { kind: ProtoKind::SD, x_s: 1, x_d: 2 });
    }

    #[test]
    fn trace_records_rounds_and_events() {
        let mut t = ProtocolTrace::new();
        t.reset(8);
        t.set_phase1((0..16).map(|_| [0; 5]));
        t.begin_round();
        let mut config = SwitchConfig::empty();
        config.set(Connection::L_TO_R).unwrap();
        t.record(SwitchEvent {
            node: NodeId::ROOT,
            req: ProtoMsg::NULL,
            config,
            to_left: ProtoMsg::source(0),
            to_right: ProtoMsg::dest(0),
        });
        assert_eq!(t.rounds.len(), 1);
        assert_eq!(t.num_events(), 1);
        assert!(t.rounds[0].event_for(NodeId::ROOT).is_some());
        assert!(t.rounds[0].event_for(NodeId(2)).is_none());
        t.reset(4);
        assert_eq!(t.num_events(), 0);
        assert!(t.phase1.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProtoMsg::NULL.to_string(), "[null,null]");
        assert_eq!(ProtoMsg::source(3).to_string(), "[s,null;x_s=3]");
        assert_eq!(ProtoMsg::both(1, 0).to_string(), "[s,d;x_s=1,x_d=0]");
    }
}
