//! Binary wire primitives for the routing service.
//!
//! `cst-serve` speaks a length-prefixed binary protocol over TCP/Unix
//! sockets. The frame *contents* are built from a tiny fixed vocabulary
//! defined here so the codec has one home and one set of error types:
//!
//! * all integers are **little-endian, fixed width** (`u8`/`u16`/`u32`/
//!   `u64`) — no varints, so decode never loops on attacker-controlled
//!   widths;
//! * variable-length fields (strings, byte blobs) are `u32`
//!   length-prefixed, and the length is validated against the bytes
//!   actually present *before* any allocation or copy;
//! * decoding borrows from the input buffer (`&str` / `&[u8]` slices),
//!   which is what keeps the daemon's warm request path allocation-free.
//!
//! Errors are typed, never panics: a truncated or malformed buffer is a
//! protocol-level condition the server answers with an error frame, not a
//! crash. [`WireError::Malformed`] carries a `&'static str` reason for the
//! same reason decoding borrows — the hot path must not allocate to fail.

use std::fmt;

/// Typed decode failure. Every decoder in the workspace returns this —
/// arbitrary input bytes must produce an `Err`, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width field or a declared length.
    Truncated {
        /// Bytes the current field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A declared length exceeds the decoder's limit (frame cap, field
    /// cap). Checked before allocating, so a hostile length prefix cannot
    /// balloon memory.
    TooLong {
        /// The declared length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// Structurally invalid contents (bad tag byte, non-UTF-8 string,
    /// trailing garbage).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated: field needs {needed} bytes, {have} remain")
            }
            WireError::TooLong { len, max } => {
                write!(f, "declared length {len} exceeds limit {max}")
            }
            WireError::Malformed(why) => write!(f, "malformed: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian u16.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u32.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32`-length-prefixed byte blob.
///
/// # Panics
///
/// Panics if `bytes.len()` exceeds `u32::MAX` — encoders own their inputs
/// and the frame cap is far below 4 GiB, so this is a programming error,
/// not a runtime condition.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    assert!(bytes.len() <= u32::MAX as usize, "blob exceeds u32 length prefix");
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Borrowing decoder over a byte slice.
///
/// All `take_*` methods advance the cursor on success and leave it
/// unmoved on failure. Variable-length reads return slices *borrowed from
/// the input*, so decoding a request into caller-owned scratch performs
/// zero allocations.
///
/// # Examples
///
/// ```
/// use cst_core::wire::{put_str, put_u64, WireCursor};
///
/// let mut buf = Vec::new();
/// put_u64(&mut buf, 42);
/// put_str(&mut buf, "csa");
///
/// let mut cur = WireCursor::new(&buf);
/// assert_eq!(cur.take_u64().unwrap(), 42);
/// assert_eq!(cur.take_str().unwrap(), "csa");
/// assert!(cur.expect_end().is_ok());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Start decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> WireCursor<'a> {
        WireCursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.remaining();
        if have < n {
            return Err(WireError::Truncated { needed: n, have });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consume and return every byte not yet read. Infallible (an empty
    /// tail yields an empty slice); the cursor is exhausted afterwards.
    /// Used to skip trailing fields appended by newer frame minors.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Read a little-endian u16.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u32.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Read a `u32`-length-prefixed blob, borrowed from the input. The
    /// declared length is checked against the remaining bytes before any
    /// slicing, so a hostile prefix yields `Truncated`, never a panic.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.take_u32()? as usize;
        let have = self.remaining();
        if have < len {
            // Roll back the length word so the cursor is unmoved on error.
            self.pos -= 4;
            return Err(WireError::Truncated { needed: len, have });
        }
        self.take(len)
    }

    /// Read a `u32`-length-prefixed UTF-8 string, borrowed from the input.
    pub fn take_str(&mut self) -> Result<&'a str, WireError> {
        let start = self.pos;
        let bytes = self.take_bytes()?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(_) => {
                self.pos = start;
                Err(WireError::Malformed("string is not UTF-8"))
            }
        }
    }

    /// Require that the whole buffer was consumed — trailing garbage in a
    /// frame is a protocol error, not padding.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after frame body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xab);
        put_u16(&mut buf, 0xbeef);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, 0x0123_4567_89ab_cdef);
        put_bytes(&mut buf, &[1, 2, 3]);
        put_str(&mut buf, "général"); // non-ASCII survives

        let mut cur = WireCursor::new(&buf);
        assert_eq!(cur.take_u8().unwrap(), 0xab);
        assert_eq!(cur.take_u16().unwrap(), 0xbeef);
        assert_eq!(cur.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(cur.take_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(cur.take_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(cur.take_str().unwrap(), "général");
        assert!(cur.expect_end().is_ok());
    }

    #[test]
    fn take_rest_drains_the_tail_and_is_safe_when_empty() {
        let buf = [0xaa, 0xbb, 0xcc];
        let mut cur = WireCursor::new(&buf);
        assert_eq!(cur.take_u8().unwrap(), 0xaa);
        assert_eq!(cur.take_rest(), &[0xbb, 0xcc]);
        assert!(cur.is_empty());
        assert_eq!(cur.take_rest(), &[] as &[u8]);
        assert!(cur.expect_end().is_ok());
    }

    #[test]
    fn truncation_is_typed_and_non_destructive() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        let mut cur = WireCursor::new(&buf[..5]);
        let err = cur.take_u64().unwrap_err();
        assert_eq!(err, WireError::Truncated { needed: 8, have: 5 });
        // Cursor unmoved: the same read fails identically.
        assert_eq!(cur.take_u64().unwrap_err(), err);
        assert_eq!(cur.remaining(), 5);
    }

    #[test]
    fn hostile_length_prefix_is_truncated_not_panic() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims 4 GiB follow
        let mut cur = WireCursor::new(&buf);
        match cur.take_bytes().unwrap_err() {
            WireError::Truncated { needed, have } => {
                assert_eq!(needed, u32::MAX as usize);
                assert_eq!(have, 0);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Length word rolled back: remaining unchanged.
        assert_eq!(cur.remaining(), 4);
    }

    #[test]
    fn non_utf8_string_is_malformed() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut cur = WireCursor::new(&buf);
        assert_eq!(
            cur.take_str().unwrap_err(),
            WireError::Malformed("string is not UTF-8")
        );
        assert_eq!(cur.remaining(), buf.len());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 1);
        put_u8(&mut buf, 2);
        let mut cur = WireCursor::new(&buf);
        cur.take_u8().unwrap();
        assert!(cur.expect_end().is_err());
        cur.take_u8().unwrap();
        assert!(cur.expect_end().is_ok());
    }
}
