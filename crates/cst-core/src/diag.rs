//! Typed diagnostics: the shared vocabulary of the static analyzer
//! (`cst-check`) and the runtime verifiers (`Schedule::verify`,
//! `cst-padr::verifier`).
//!
//! Every invariant this workspace checks — the paper's Theorem 4
//! (compatibility), Theorem 5 (`rounds == w`), Theorem 8 (O(1) port
//! transitions), Lemma 1 (counter conservation) and the implementation-level
//! ownership rules — has a stable `CST0xx` code. Checks emit
//! [`Diagnostic`]s into a [`DiagReport`]; legacy callers that want a
//! `Result` collapse the report with [`DiagReport::into_result`], which maps
//! the first error back onto [`CstError`]. The JSON rendering of a report is
//! pinned by a golden test in `cst-check` so downstream tooling can rely on
//! it. The full code table lives in `docs/DIAGNOSTICS.md`.

use crate::error::CstError;
use crate::node::NodeId;
use crate::switch::Side;
use serde::{de_field, Deserialize, Error as SerdeError, Serialize, Value};

/// How bad a diagnostic is. Errors fail verification; warnings flag waste
/// or suspicious-but-legal state (extra held connections, for example).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Legal but wasteful or suspicious; `into_result` ignores these.
    Warning,
    /// An invariant is broken; verification fails.
    Error,
}

impl Severity {
    /// Lowercase name, used in the JSON report and text rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The decades group by invariant family:
/// 00x input set, 01x coverage, 02x round legality (Theorem 4), 03x
/// optimality (Theorem 5), 04x power (Theorem 8), 05x Phase-1 counters
/// (Lemma 1), 06x selection order, 07x ownership, 10x fault/degradation
/// (the `CST1xx` family checks schedules against a hardware
/// [`crate::fault::FaultMask`]), 20x model conformance (the `CST2xx`
/// family compares a recorded [`crate::trace::ProtocolTrace`] against the
/// independent reference model in `cst-model`). Codes are append-only:
/// never renumber, never reuse.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DiagCode {
    /// CST001 — the input set has a crossing pair (not well-nested, §2.1).
    NotWellNested,
    /// CST002 — a communication is not right-oriented (§2.1).
    NotRightOriented,
    /// CST010 — a round references a communication id outside the set.
    UnknownComm,
    /// CST011 — a communication is scheduled more than once (Theorem 4).
    DuplicateComm,
    /// CST012 — a communication is never scheduled (Theorem 4).
    MissingComm,
    /// CST020 — two circuits of one round share a directed link (Theorem 4).
    LinkConflict,
    /// CST021 — a round's recorded configurations miss a switch or
    /// connection its circuits require (Theorem 4).
    MissingConnection,
    /// CST022 — a recorded switch configuration is illegal: a same-side
    /// connection, or one input driving several outputs (§2, Fig. 3(a)).
    IllegalConfig,
    /// CST030 — round count differs from the width `w` (Theorem 5).
    RoundCountMismatch,
    /// CST040 — a switch exceeds the O(1) port-transition budget (Theorem 8).
    TransitionBudget,
    /// CST050 — a switch's `C_S` differs from the recomputed Phase-1 state,
    /// `M = min(S_L, D_R)` (Lemma 1).
    CounterMismatch,
    /// CST051 — an upward `C_U` message breaks Lemma 1 conservation.
    CounterFlow,
    /// CST060 — an inner communication runs before an enclosing one sharing
    /// a link: violates outermost-first selection order `O_c(u)` (§4).
    SelectionOrder,
    /// CST070 — one switch claimed twice within a round: two writers (the
    /// race class the parallel driver could introduce).
    DoubleStamp,
    /// CST071 — a switch or connection is configured but unused by the
    /// round's circuits (warning: wastes power, may hide stale state).
    ForeignConfig,
    /// CST100 — a scheduled circuit crosses a dead switch or dead directed
    /// link of the fault mask.
    MaskedLinkUsed,
    /// CST101 — one round uses both directions of a degraded (half-duplex)
    /// edge.
    HalfDuplexViolation,
    /// CST102 — a communication reported as dropped is actually routable
    /// under the mask (its unique path avoids every dead switch and link).
    DroppedRoutable,
    /// CST200 — a traced switch held different connections than the
    /// reference model derives for that round (Definitions 1–2).
    ModelConnectionMismatch,
    /// CST201 — a traced switch received or forwarded a control message
    /// (kind or rank) different from the model's, e.g. an out-of-order
    /// matched-pair selection (outermost-first, §4).
    ModelMessageMismatch,
    /// CST202 — the traced Phase-1 counter table differs from the model's
    /// independently derived `C_S` (Lemma 1).
    ModelCounterMismatch,
    /// CST203 — a round is missing a switch transition the model performs,
    /// or contains one it does not (every switch steps once per round).
    ModelTransitionSkipped,
    /// CST204 — match accounting broken: the trace schedules a matched
    /// pair the model no longer holds (duplicate) or ends with pairs the
    /// model still holds (lost).
    ModelMatchAccounting,
    /// CST300 — a decomposition layer is not a right-oriented well-nested
    /// set with unique endpoints (the Definition 1 precondition every
    /// layer must restore before routing).
    LayerNotWellNested,
    /// CST301 — a composite schedule mixes layers across round bands: a
    /// communication appears outside its own layer's contiguous rounds, or
    /// the bands do not tile the schedule.
    LayerRoundOverlap,
    /// CST302 — coverage accounting broken: the layers are not a partition
    /// of the input set (`Σ layer comms != input comms`).
    DecompCoverage,
    /// CST303 — the lower-bound certificate is invalid: the witness is not
    /// mutually conflicting, overshoots the layer count, or the optimality
    /// claim contradicts `greedy == bound`.
    CertificateViolation,
}

impl DiagCode {
    /// Every code, in numeric order.
    pub const ALL: [DiagCode; 27] = [
        DiagCode::NotWellNested,
        DiagCode::NotRightOriented,
        DiagCode::UnknownComm,
        DiagCode::DuplicateComm,
        DiagCode::MissingComm,
        DiagCode::LinkConflict,
        DiagCode::MissingConnection,
        DiagCode::IllegalConfig,
        DiagCode::RoundCountMismatch,
        DiagCode::TransitionBudget,
        DiagCode::CounterMismatch,
        DiagCode::CounterFlow,
        DiagCode::SelectionOrder,
        DiagCode::DoubleStamp,
        DiagCode::ForeignConfig,
        DiagCode::MaskedLinkUsed,
        DiagCode::HalfDuplexViolation,
        DiagCode::DroppedRoutable,
        DiagCode::ModelConnectionMismatch,
        DiagCode::ModelMessageMismatch,
        DiagCode::ModelCounterMismatch,
        DiagCode::ModelTransitionSkipped,
        DiagCode::ModelMatchAccounting,
        DiagCode::LayerNotWellNested,
        DiagCode::LayerRoundOverlap,
        DiagCode::DecompCoverage,
        DiagCode::CertificateViolation,
    ];

    /// The stable `CST0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::NotWellNested => "CST001",
            DiagCode::NotRightOriented => "CST002",
            DiagCode::UnknownComm => "CST010",
            DiagCode::DuplicateComm => "CST011",
            DiagCode::MissingComm => "CST012",
            DiagCode::LinkConflict => "CST020",
            DiagCode::MissingConnection => "CST021",
            DiagCode::IllegalConfig => "CST022",
            DiagCode::RoundCountMismatch => "CST030",
            DiagCode::TransitionBudget => "CST040",
            DiagCode::CounterMismatch => "CST050",
            DiagCode::CounterFlow => "CST051",
            DiagCode::SelectionOrder => "CST060",
            DiagCode::DoubleStamp => "CST070",
            DiagCode::ForeignConfig => "CST071",
            DiagCode::MaskedLinkUsed => "CST100",
            DiagCode::HalfDuplexViolation => "CST101",
            DiagCode::DroppedRoutable => "CST102",
            DiagCode::ModelConnectionMismatch => "CST200",
            DiagCode::ModelMessageMismatch => "CST201",
            DiagCode::ModelCounterMismatch => "CST202",
            DiagCode::ModelTransitionSkipped => "CST203",
            DiagCode::ModelMatchAccounting => "CST204",
            DiagCode::LayerNotWellNested => "CST300",
            DiagCode::LayerRoundOverlap => "CST301",
            DiagCode::DecompCoverage => "CST302",
            DiagCode::CertificateViolation => "CST303",
        }
    }

    /// Parse a `CST0xx` code string.
    pub fn parse(s: &str) -> Option<DiagCode> {
        DiagCode::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// Default severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::ForeignConfig => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// True for the `CST2xx` model-conformance family — emitted by the
    /// trace-replay layer in `cst-model`, not by the schedule analyzer.
    /// (The mutation harnesses split along this line.)
    pub fn is_model(self) -> bool {
        matches!(
            self,
            DiagCode::ModelConnectionMismatch
                | DiagCode::ModelMessageMismatch
                | DiagCode::ModelCounterMismatch
                | DiagCode::ModelTransitionSkipped
                | DiagCode::ModelMatchAccounting
        )
    }

    /// True for the `CST3xx` decomposition family — emitted by the
    /// composite-schedule audit in `cst-check::check_decomposition`, which
    /// takes a [`crate::Fp64`]-fingerprinted general set plus its layering
    /// rather than a single schedule. Covered by its own mutation harness.
    pub fn is_decomp(self) -> bool {
        matches!(
            self,
            DiagCode::LayerNotWellNested
                | DiagCode::LayerRoundOverlap
                | DiagCode::DecompCoverage
                | DiagCode::CertificateViolation
        )
    }

    /// Short kebab-case name of the violated invariant.
    pub fn invariant(self) -> &'static str {
        match self {
            DiagCode::NotWellNested => "well-nested-input",
            DiagCode::NotRightOriented => "right-oriented-input",
            DiagCode::UnknownComm => "known-comm-ids",
            DiagCode::DuplicateComm => "each-comm-once",
            DiagCode::MissingComm => "each-comm-once",
            DiagCode::LinkConflict => "link-compatible-rounds",
            DiagCode::MissingConnection => "configs-realize-circuits",
            DiagCode::IllegalConfig => "legal-switch-config",
            DiagCode::RoundCountMismatch => "rounds-equal-width",
            DiagCode::TransitionBudget => "constant-port-transitions",
            DiagCode::CounterMismatch => "counter-conservation",
            DiagCode::CounterFlow => "counter-conservation",
            DiagCode::SelectionOrder => "outermost-first",
            DiagCode::DoubleStamp => "single-writer-per-switch",
            DiagCode::ForeignConfig => "no-foreign-configs",
            DiagCode::MaskedLinkUsed => "no-masked-hardware",
            DiagCode::HalfDuplexViolation => "half-duplex-edges",
            DiagCode::DroppedRoutable => "drop-only-unroutable",
            DiagCode::ModelConnectionMismatch => "model-agrees-connections",
            DiagCode::ModelMessageMismatch => "model-agrees-messages",
            DiagCode::ModelCounterMismatch => "model-agrees-counters",
            DiagCode::ModelTransitionSkipped => "model-complete-sweep",
            DiagCode::ModelMatchAccounting => "model-match-accounting",
            DiagCode::LayerNotWellNested => "decomp-layers-well-nested",
            DiagCode::LayerRoundOverlap => "decomp-bands-tile-schedule",
            DiagCode::DecompCoverage => "decomp-layers-partition-input",
            DiagCode::CertificateViolation => "decomp-certificate-sound",
        }
    }

    /// Where in the paper (or the implementation) the invariant comes from.
    pub fn paper_ref(self) -> &'static str {
        match self {
            DiagCode::NotWellNested | DiagCode::NotRightOriented => "§2.1",
            DiagCode::UnknownComm
            | DiagCode::DuplicateComm
            | DiagCode::MissingComm
            | DiagCode::LinkConflict
            | DiagCode::MissingConnection => "Theorem 4",
            DiagCode::IllegalConfig => "§2, Fig. 3(a)",
            DiagCode::RoundCountMismatch => "Theorem 5",
            DiagCode::TransitionBudget => "Theorem 8",
            DiagCode::CounterMismatch | DiagCode::CounterFlow => "Lemma 1",
            DiagCode::SelectionOrder => "§4 (O_c(u))",
            DiagCode::DoubleStamp | DiagCode::ForeignConfig => "implementation",
            DiagCode::MaskedLinkUsed
            | DiagCode::HalfDuplexViolation
            | DiagCode::DroppedRoutable => "fault model (docs/FAULTS.md)",
            DiagCode::ModelConnectionMismatch | DiagCode::ModelTransitionSkipped => {
                "Definitions 1-2 (docs/MODEL.md)"
            }
            DiagCode::ModelMessageMismatch => "Definition 2, §4 (docs/MODEL.md)",
            DiagCode::ModelCounterMismatch => "Lemma 1 (docs/MODEL.md)",
            DiagCode::ModelMatchAccounting => "Lemmas 2-3 (docs/MODEL.md)",
            DiagCode::LayerNotWellNested
            | DiagCode::LayerRoundOverlap
            | DiagCode::DecompCoverage
            | DiagCode::CertificateViolation => "decomposition (docs/DECOMP.md)",
        }
    }
}

impl core::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for DiagCode {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for DiagCode {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) => DiagCode::parse(s)
                .ok_or_else(|| SerdeError(format!("unknown diagnostic code {s:?}"))),
            other => Err(SerdeError(format!(
                "diagnostic code must be a string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) if s == "warning" => Ok(Severity::Warning),
            Value::Str(s) if s == "error" => Ok(Severity::Error),
            other => Err(SerdeError(format!("invalid severity {other:?}"))),
        }
    }
}

/// One finding: a code, a severity, an optional location (round, switch,
/// port, link direction, communications involved) and a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `CST0xx` code.
    pub code: DiagCode,
    /// Severity (defaults to the code's own).
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Round index the finding is located in, if round-local.
    pub round: Option<usize>,
    /// Switch the finding is located at, if switch-local.
    pub node: Option<NodeId>,
    /// Output port involved, if port-local.
    pub port: Option<Side>,
    /// For link findings: `true` = upward link above [`Diagnostic::node`].
    pub up: Option<bool>,
    /// Communication ids involved (0, 1 or 2).
    pub comms: Vec<usize>,
}

impl Diagnostic {
    /// A new diagnostic with the code's default severity and no location.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            round: None,
            node: None,
            port: None,
            up: None,
            comms: Vec::new(),
        }
    }

    /// Locate the diagnostic in a round.
    pub fn with_round(mut self, round: usize) -> Self {
        self.round = Some(round);
        self
    }

    /// Locate the diagnostic at a switch.
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Locate the diagnostic at an output port.
    pub fn with_port(mut self, port: Side) -> Self {
        self.port = Some(port);
        self
    }

    /// Locate the diagnostic on a directed link (`node` = child endpoint).
    pub fn with_link(mut self, node: NodeId, up: bool) -> Self {
        self.node = Some(node);
        self.up = Some(up);
        self
    }

    /// Attach an involved communication id.
    pub fn with_comm(mut self, comm: usize) -> Self {
        self.comms.push(comm);
        self
    }

    /// Map the diagnostic back onto the legacy [`CstError`] vocabulary.
    pub fn to_cst_error(&self) -> CstError {
        match self.code {
            DiagCode::LinkConflict => CstError::LinkConflict {
                node: self.node.unwrap_or(NodeId::ROOT),
                upward: self.up.unwrap_or(true),
            },
            DiagCode::NotWellNested if self.comms.len() >= 2 => CstError::NotWellNested {
                a: self.comms[0],
                b: self.comms[1],
            },
            _ => CstError::ProtocolViolation {
                node: self.node.unwrap_or(NodeId::ROOT),
                detail: format!("[{}] {}", self.code, self.message),
            },
        }
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(r) = self.round {
            write!(f, " round {r}")?;
        }
        if let Some(n) = self.node {
            write!(f, " {n}")?;
        }
        if let Some(p) = self.port {
            write!(f, " port {p}o")?;
        }
        write!(f, ": {} ({})", self.message, self.code.paper_ref())
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("code".to_string(), self.code.to_value()),
            ("severity".to_string(), self.severity.to_value()),
            ("message".to_string(), Value::Str(self.message.clone())),
            ("round".to_string(), self.round.to_value()),
            ("node".to_string(), self.node.map(|n| n.0).to_value()),
            ("port".to_string(), self.port.to_value()),
            ("up".to_string(), self.up.to_value()),
            ("comms".to_string(), self.comms.to_value()),
        ])
    }
}

impl Deserialize for Diagnostic {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Ok(Diagnostic {
            code: de_field(v, "code")?,
            severity: de_field(v, "severity")?,
            message: de_field(v, "message")?,
            round: de_field(v, "round")?,
            node: de_field::<Option<usize>>(v, "node")?.map(NodeId),
            port: de_field(v, "port")?,
            up: de_field(v, "up")?,
            comms: de_field(v, "comms")?,
        })
    }
}

/// The outcome of an analysis: an ordered list of diagnostics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiagReport {
    /// Findings in discovery order (per pass, per round).
    pub diagnostics: Vec<Diagnostic>,
}

impl DiagReport {
    /// An empty (clean) report.
    pub fn new() -> DiagReport {
        DiagReport::default()
    }

    /// Record one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append all findings of another report.
    pub fn merge(&mut self, other: DiagReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// True when nothing at all was found (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.first_error().is_some()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Iterate error-severity findings in discovery order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The first error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.errors().next()
    }

    /// Collapse onto the legacy `Result` vocabulary: the first error maps
    /// to a [`CstError`]; warnings never fail.
    pub fn into_result(&self) -> Result<(), CstError> {
        match self.first_error() {
            Some(d) => Err(d.to_cst_error()),
            None => Ok(()),
        }
    }

    /// One line per finding, `cargo`-style.
    pub fn render_text(&self) -> String {
        if self.is_clean() {
            return "clean: no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

// The machine-readable report format, pinned by a golden test in
// `cst-check`: a version tag, the counts, and the findings in order.
impl Serialize for DiagReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("version".to_string(), Value::UInt(1)),
            ("errors".to_string(), Value::UInt(self.error_count() as u64)),
            ("warnings".to_string(), Value::UInt(self.warning_count() as u64)),
            (
                "diagnostics".to_string(),
                Value::Seq(self.diagnostics.iter().map(|d| d.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for DiagReport {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let version: u64 = de_field(v, "version")?;
        if version != 1 {
            return Err(SerdeError(format!("unsupported report version {version}")));
        }
        Ok(DiagReport { diagnostics: de_field(v, "diagnostics")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_parse_back() {
        let mut seen = std::collections::BTreeSet::new();
        for c in DiagCode::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert_eq!(DiagCode::parse(c.as_str()), Some(c));
            assert!(c.as_str().starts_with("CST"));
            assert_eq!(c.as_str().len(), 6);
            assert!(!c.invariant().is_empty());
            assert!(!c.paper_ref().is_empty());
        }
        assert_eq!(DiagCode::parse("CST999"), None);
    }

    #[test]
    fn model_family_is_exactly_the_cst2xx_block() {
        for c in DiagCode::ALL {
            assert_eq!(c.is_model(), c.as_str().starts_with("CST2"), "{c}");
        }
        assert_eq!(DiagCode::ALL.iter().filter(|c| c.is_model()).count(), 5);
    }

    #[test]
    fn decomp_family_is_exactly_the_cst3xx_block() {
        for c in DiagCode::ALL {
            assert_eq!(c.is_decomp(), c.as_str().starts_with("CST3"), "{c}");
        }
        assert_eq!(DiagCode::ALL.iter().filter(|c| c.is_decomp()).count(), 4);
    }

    #[test]
    fn report_counts_and_result() {
        let mut r = DiagReport::new();
        assert!(r.is_clean());
        r.into_result().unwrap();
        r.push(Diagnostic::new(DiagCode::ForeignConfig, "extra").with_round(0));
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        r.into_result().unwrap(); // warnings never fail
        r.push(
            Diagnostic::new(DiagCode::LinkConflict, "shared link")
                .with_round(1)
                .with_link(NodeId(4), true),
        );
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        let err = r.into_result().unwrap_err();
        assert_eq!(err, CstError::LinkConflict { node: NodeId(4), upward: true });
    }

    #[test]
    fn well_nested_error_maps_to_pair() {
        let d = Diagnostic::new(DiagCode::NotWellNested, "cross")
            .with_comm(3)
            .with_comm(7);
        assert_eq!(d.to_cst_error(), CstError::NotWellNested { a: 3, b: 7 });
    }

    #[test]
    fn display_names_location() {
        let d = Diagnostic::new(DiagCode::MissingConnection, "lacks li->ro")
            .with_round(2)
            .with_node(NodeId(5))
            .with_port(Side::Right);
        let s = d.to_string();
        assert!(s.contains("error[CST021]"), "{s}");
        assert!(s.contains("round 2"), "{s}");
        assert!(s.contains("port ro"), "{s}");
        assert!(s.contains("Theorem 4"), "{s}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = DiagReport::new();
        r.push(
            Diagnostic::new(DiagCode::DoubleStamp, "two writers")
                .with_round(0)
                .with_node(NodeId(2)),
        );
        r.push(Diagnostic::new(DiagCode::ForeignConfig, "unused").with_comm(1));
        let v = r.to_value();
        let back = DiagReport::from_value(&v).unwrap();
        assert_eq!(back, r);
    }
}
