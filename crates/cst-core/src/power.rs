//! Power and reconfiguration accounting (paper §2.3 and §5).
//!
//! The paper's model: *"if the switch connects an input to an output, then
//! it consumes one unit of power"*, and a switch that changes configuration
//! in a step needs at most three units (it has three connections to set).
//! Holding an existing connection across rounds is free — that is the whole
//! point of PADR: a power-aware schedule orders communications so switches
//! keep their settings as long as possible.
//!
//! [`PowerMeter`] therefore charges **one unit per newly-established
//! connection** ("hold semantics"): when round `r` requires `i -> o` at a
//! switch, the unit is charged only if `i -> o` was not already set; setting
//! it evicts whatever previously used either port at no extra cost (the
//! eviction *is* the reconfiguration being charged).
//!
//! Besides total units, the meter tracks per-switch:
//! * `units`: connection establishments (power units, §2.3);
//! * `change_rounds`: rounds in which the switch set at least one new
//!   connection (the "configuration changes" of Theorem 8);
//! * per-output-port driver transitions, the finest-grained view — Theorem 8
//!   bounds these by a constant for CSA and by O(w) for the baseline.

use crate::node::NodeId;
use crate::switch::{Connection, Side, SwitchConfig};
use crate::topology::CstTopology;
use serde::{Deserialize, Serialize};

/// Per-switch power statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchPower {
    /// Total power units (connection establishments) at this switch under
    /// **hold semantics**: re-requiring a connection that is already set
    /// is free. This is the PADR model the CSA is optimal under.
    pub units: u32,
    /// Total power units under **write-through semantics**: every
    /// connection required in a round costs a unit, whether or not it was
    /// already set. This models a protocol (like the ID-based comparator
    /// [6]) that re-establishes each round's paths from scratch and gives
    /// switches no basis for retaining settings.
    pub writethrough_units: u32,
    /// Number of rounds in which this switch changed configuration.
    pub change_rounds: u32,
    /// Number of rounds in which this switch held at least one connection
    /// (its activity; write-through cost is bounded by 3x this).
    pub active_rounds: u32,
    /// Driver transitions per output port, indexed by `Side::index()`:
    /// how many times the input driving this output changed to a
    /// *different* input.
    pub port_transitions: [u32; 3],
}

impl SwitchPower {
    /// Sum of per-port driver transitions.
    pub fn total_transitions(&self) -> u32 {
        self.port_transitions.iter().sum()
    }
}

/// Aggregate statistics for a whole schedule.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Total hold-semantics power units over all switches.
    pub total_units: u64,
    /// Total write-through power units over all switches.
    pub total_writethrough_units: u64,
    /// Maximum hold-semantics units at any single switch.
    pub max_units: u32,
    /// Maximum write-through units at any single switch (O(w) for a
    /// per-round path-establishment protocol, O(1)·w-independent for CSA
    /// would make no sense — CSA is metered under hold semantics).
    pub max_writethrough_units: u32,
    /// Maximum configuration-change rounds at any single switch.
    pub max_change_rounds: u32,
    /// Maximum rounds any single switch was active.
    pub max_active_rounds: u32,
    /// Maximum per-port driver transitions at any single switch (the
    /// quantity Theorem 8 bounds by O(1) for CSA).
    pub max_port_transitions: u32,
    /// Number of switches that were ever configured.
    pub active_switches: usize,
    /// Number of rounds accounted.
    pub rounds: usize,
}

/// Tracks persistent switch configurations across rounds and charges power
/// per the PADR model. One meter instance accounts one schedule execution.
///
/// # Examples
///
/// ```
/// use cst_core::{Connection, CstTopology, NodeId, PowerMeter};
///
/// let topo = CstTopology::with_leaves(8);
/// let mut meter = PowerMeter::new(&topo);
///
/// meter.begin_round();
/// assert!(meter.require(NodeId(2), Connection::L_TO_R)); // 1 unit
/// meter.begin_round();
/// assert!(!meter.require(NodeId(2), Connection::L_TO_R)); // held: free
///
/// let report = meter.report(&topo);
/// assert_eq!(report.total_units, 1);              // hold semantics
/// assert_eq!(report.total_writethrough_units, 2); // per-round semantics
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct PowerMeter {
    /// Persistent configuration of each switch (held between rounds).
    configs: Vec<SwitchConfig>,
    stats: Vec<SwitchPower>,
    rounds: usize,
    // Round stamps: slot i "is marked" iff it equals `stamp`. Beginning a
    // round bumps the stamp instead of clearing the tables, so begin_round
    // is O(1) rather than O(N) — that clear dominated short rounds on
    // large trees.
    changed_stamp: Vec<u32>,
    active_stamp: Vec<u32>,
    stamp: u32,
}

impl Clone for PowerMeter {
    fn clone(&self) -> Self {
        PowerMeter {
            configs: self.configs.clone(),
            stats: self.stats.clone(),
            rounds: self.rounds,
            changed_stamp: self.changed_stamp.clone(),
            active_stamp: self.active_stamp.clone(),
            stamp: self.stamp,
        }
    }

    // Allocation-reusing copy: cloning a precomputed meter into a pooled
    // shell must not touch the heap once the shell has capacity (the
    // compiled-replay warm path copies one meter out per replay).
    fn clone_from(&mut self, src: &Self) {
        self.configs.clone_from(&src.configs);
        self.stats.clone_from(&src.stats);
        self.rounds = src.rounds;
        self.changed_stamp.clone_from(&src.changed_stamp);
        self.active_stamp.clone_from(&src.active_stamp);
        self.stamp = src.stamp;
    }
}

impl PowerMeter {
    /// Fresh meter for `topo`; all switches start disconnected.
    pub fn new(topo: &CstTopology) -> Self {
        let n = topo.node_table_len();
        PowerMeter {
            configs: vec![SwitchConfig::empty(); n],
            stats: vec![SwitchPower::default(); n],
            rounds: 0,
            changed_stamp: vec![u32::MAX; n],
            active_stamp: vec![u32::MAX; n],
            stamp: 0,
        }
    }

    /// Reset to the all-disconnected state for `topo`, reusing the existing
    /// allocations when the topology size is unchanged. A long-lived engine
    /// pools meters and resets them per request instead of rebuilding.
    pub fn reset(&mut self, topo: &CstTopology) {
        let n = topo.node_table_len();
        self.configs.clear();
        self.configs.resize(n, SwitchConfig::empty());
        self.stats.clear();
        self.stats.resize(n, SwitchPower::default());
        self.changed_stamp.clear();
        self.changed_stamp.resize(n, u32::MAX);
        self.active_stamp.clear();
        self.active_stamp.resize(n, u32::MAX);
        self.rounds = 0;
        self.stamp = 0;
    }

    /// Begin accounting a new round. O(1): bumps the round stamp.
    pub fn begin_round(&mut self) {
        self.rounds += 1;
        self.stamp += 1;
    }

    /// Require connection `c` at `switch` for the current round, charging a
    /// hold-semantics unit if it is not already held (write-through units
    /// are charged unconditionally). Returns `true` if hold-semantics power
    /// was spent.
    #[inline]
    pub fn require(&mut self, switch: NodeId, c: Connection) -> bool {
        let i = switch.index();
        let cfg = &mut self.configs[i];
        self.stats[i].writethrough_units += 1;
        if self.active_stamp[i] != self.stamp {
            self.active_stamp[i] = self.stamp;
            self.stats[i].active_rounds += 1;
        }
        if cfg.has(c) {
            return false;
        }
        // Record the driver transition on the target output port.
        let st = &mut self.stats[i];
        if cfg.driver_of(c.to) != Some(c.from) {
            st.port_transitions[c.to.index()] += 1;
        }
        // If the input is being re-aimed, the output it used to drive loses
        // its driver; that output's next use will be charged as a
        // transition then. No unit is charged for the teardown itself.
        cfg.force(c);
        st.units += 1;
        if self.changed_stamp[i] != self.stamp {
            self.changed_stamp[i] = self.stamp;
            st.change_rounds += 1;
        }
        true
    }

    /// Current (held) configuration of a switch.
    pub fn config(&self, switch: NodeId) -> &SwitchConfig {
        &self.configs[switch.index()]
    }

    /// Per-switch stats.
    pub fn switch_power(&self, switch: NodeId) -> &SwitchPower {
        &self.stats[switch.index()]
    }

    /// Rounds accounted so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Summarize over the internal switches of `topo`.
    pub fn report(&self, topo: &CstTopology) -> PowerReport {
        let mut r = PowerReport { rounds: self.rounds, ..Default::default() };
        for s in topo.switches_top_down() {
            let st = &self.stats[s.index()];
            if st.units > 0 {
                r.active_switches += 1;
            }
            r.total_units += u64::from(st.units);
            r.total_writethrough_units += u64::from(st.writethrough_units);
            r.max_units = r.max_units.max(st.units);
            r.max_writethrough_units = r.max_writethrough_units.max(st.writethrough_units);
            r.max_change_rounds = r.max_change_rounds.max(st.change_rounds);
            r.max_active_rounds = r.max_active_rounds.max(st.active_rounds);
            r.max_port_transitions = r.max_port_transitions.max(st.total_transitions());
        }
        r
    }

    /// Per-switch change-round counts for distribution analyses (E6),
    /// restricted to internal switches, in node order.
    pub fn change_round_histogram(&self, topo: &CstTopology) -> Vec<u32> {
        topo.switches_top_down()
            .map(|s| self.stats[s.index()].change_rounds)
            .collect()
    }

    /// Per-switch total port transitions, in node order.
    pub fn transition_histogram(&self, topo: &CstTopology) -> Vec<u32> {
        topo.switches_top_down()
            .map(|s| self.stats[s.index()].total_transitions())
            .collect()
    }
}

/// Convenience: charge a whole round given per-switch required connections.
///
/// `requirements` yields `(switch, connection)` pairs; call sites that build
/// complete rounds (baseline schedulers) use this instead of interleaving
/// `require` calls with their sweep.
pub fn charge_round<I>(meter: &mut PowerMeter, requirements: I)
where
    I: IntoIterator<Item = (NodeId, Connection)>,
{
    meter.begin_round();
    for (s, c) in requirements {
        meter.require(s, c);
    }
}

/// The paper's coarse upper bound: a full reconfiguration of one switch
/// costs at most this many units (three connections).
pub const MAX_UNITS_PER_RECONFIG: u32 = 3;

/// Silence for unused import in non-test builds of this module.
#[allow(unused)]
fn _side_used(s: Side) -> usize {
    s.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn topo() -> CstTopology {
        CstTopology::with_leaves(8)
    }

    #[test]
    fn holding_is_free() {
        let t = topo();
        let mut m = PowerMeter::new(&t);
        let s = NodeId(2);
        m.begin_round();
        assert!(m.require(s, Connection::L_TO_R)); // 1 unit
        m.begin_round();
        assert!(!m.require(s, Connection::L_TO_R)); // held: free
        m.begin_round();
        assert!(!m.require(s, Connection::L_TO_R));
        let st = m.switch_power(s);
        assert_eq!(st.units, 1);
        assert_eq!(st.change_rounds, 1);
        assert_eq!(st.total_transitions(), 1);
        assert_eq!(m.rounds(), 3);
    }

    #[test]
    fn reconfiguration_charges() {
        let t = topo();
        let mut m = PowerMeter::new(&t);
        let s = NodeId(2);
        m.begin_round();
        m.require(s, Connection::L_TO_R);
        m.begin_round();
        m.require(s, Connection::P_TO_R); // r_o re-driven: transition + unit
        m.begin_round();
        m.require(s, Connection::L_TO_R); // back again
        let st = m.switch_power(s);
        assert_eq!(st.units, 3);
        assert_eq!(st.change_rounds, 3);
        assert_eq!(st.port_transitions[Side::Right.index()], 3);
    }

    #[test]
    fn multiple_connections_one_round_is_one_change_round() {
        let t = topo();
        let mut m = PowerMeter::new(&t);
        let s = NodeId(3);
        m.begin_round();
        m.require(s, Connection::R_TO_P);
        m.require(s, Connection::P_TO_L);
        m.require(s, Connection::L_TO_R);
        let st = m.switch_power(s);
        assert_eq!(st.units, 3);
        assert_eq!(st.change_rounds, 1);
    }

    #[test]
    fn report_aggregates() {
        let t = topo();
        let mut m = PowerMeter::new(&t);
        charge_round(&mut m, [(NodeId(1), Connection::L_TO_R), (NodeId(2), Connection::L_TO_P)]);
        charge_round(&mut m, [(NodeId(1), Connection::L_TO_R)]);
        let r = m.report(&t);
        assert_eq!(r.total_units, 2);
        assert_eq!(r.max_units, 1);
        assert_eq!(r.active_switches, 2);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.max_change_rounds, 1);
    }

    #[test]
    fn input_reaim_frees_old_output_without_charge() {
        let t = topo();
        let mut m = PowerMeter::new(&t);
        let s = NodeId(2);
        m.begin_round();
        m.require(s, Connection::L_TO_R);
        m.begin_round();
        // l_i re-aimed at p_o: one unit; r_o becomes undriven silently.
        m.require(s, Connection::L_TO_P);
        assert_eq!(m.config(s).driver_of(Side::Right), None);
        assert_eq!(m.switch_power(s).units, 2);
        // p_o transition counted once, r_o transition counted once (initial set)
        assert_eq!(m.switch_power(s).port_transitions, [0, 1, 1]);
    }

    #[test]
    fn writethrough_charges_every_round() {
        let t = topo();
        let mut m = PowerMeter::new(&t);
        let s = NodeId(2);
        for _ in 0..5 {
            m.begin_round();
            m.require(s, Connection::L_TO_R);
        }
        let st = m.switch_power(s);
        // hold semantics: set once
        assert_eq!(st.units, 1);
        // write-through: paid every round
        assert_eq!(st.writethrough_units, 5);
        assert_eq!(st.active_rounds, 5);
        let r = m.report(&t);
        assert_eq!(r.total_units, 1);
        assert_eq!(r.total_writethrough_units, 5);
        assert_eq!(r.max_writethrough_units, 5);
        assert_eq!(r.max_active_rounds, 5);
    }

    #[test]
    fn histograms_cover_all_switches() {
        let t = topo();
        let m = PowerMeter::new(&t);
        assert_eq!(m.change_round_histogram(&t).len(), t.num_switches());
        assert_eq!(m.transition_histogram(&t).len(), t.num_switches());
    }
}
