//! Arbitrary point-to-point communication sets.
//!
//! Everything downstream of the partitioner requires the paper's
//! Definition 1 precondition: right-oriented, well-nested, each PE an
//! endpoint at most once. Real traffic satisfies none of that. A
//! [`GeneralCommSet`] is the front door for such traffic: an ordered list
//! of *undirected* leaf pairs, canonicalized on construction
//! (orientation flip to `source < dest`, self-pairs and duplicate pairs
//! rejected) so the decomposition layer (`cst-decomp`) can split it into
//! well-nested layers without re-validating.
//!
//! The circuit realizing a communication is the same tree path in either
//! direction, so flipping orientation loses nothing: a layer routes the
//! canonical right-oriented pair and the payload direction is metadata the
//! caller keeps. Duplicates are rejected rather than deduplicated because
//! a duplicate is almost always a caller bug (the same circuit twice in
//! one request), and silently dropping one would break the decomposition
//! audit's coverage accounting (`Σ layer comms == input comms`, `CST302`).

use crate::error::CstError;
use crate::fp::Fp64;
use crate::node::LeafId;

/// An arbitrary communication set: canonical `(source, dest)` leaf pairs
/// with `source < dest`, all pairs distinct, endpoints freely reused.
///
/// Pair order is preserved from construction and is part of equality —
/// like `CommSet`, ids are positional (`pairs()[i]` is pair `i` in every
/// downstream artifact, including the composite schedule's `CommId`s).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GeneralCommSet {
    num_leaves: usize,
    pairs: Vec<(LeafId, LeafId)>,
}

impl GeneralCommSet {
    /// Canonicalize and validate `pairs` for a tree with `num_leaves` PEs.
    ///
    /// Each `(a, b)` is stored as `(min, max)` (orientation flip). Errors:
    /// [`CstError::LeafOutOfRange`], [`CstError::SelfCommunication`], and
    /// [`CstError::DuplicatePair`] when two input pairs connect the same
    /// two leaves (in either orientation).
    pub fn new(num_leaves: usize, pairs: &[(usize, usize)]) -> Result<Self, CstError> {
        let mut set = GeneralCommSet { num_leaves, pairs: Vec::with_capacity(pairs.len()) };
        for &(a, b) in pairs {
            set.push(a, b)?;
        }
        Ok(set)
    }

    /// An empty set for a tree with `num_leaves` PEs.
    pub fn empty(num_leaves: usize) -> Self {
        GeneralCommSet { num_leaves, pairs: Vec::new() }
    }

    /// `new` for literals; panics on invalid input.
    pub fn from_pairs(num_leaves: usize, pairs: &[(usize, usize)]) -> Self {
        match GeneralCommSet::new(num_leaves, pairs) {
            Ok(s) => s,
            Err(e) => panic!("invalid general communication set: {e}"),
        }
    }

    /// Append one pair, canonicalizing and validating it against the pairs
    /// already held.
    pub fn push(&mut self, a: usize, b: usize) -> Result<(), CstError> {
        for &leaf in &[a, b] {
            if leaf >= self.num_leaves {
                return Err(CstError::LeafOutOfRange {
                    leaf: LeafId(leaf),
                    num_leaves: self.num_leaves,
                });
            }
        }
        if a == b {
            return Err(CstError::SelfCommunication { leaf: LeafId(a) });
        }
        let canon = (LeafId(a.min(b)), LeafId(a.max(b)));
        if let Some(prev) = self.pairs.iter().position(|&p| p == canon) {
            return Err(CstError::DuplicatePair { a: prev, b: self.pairs.len() });
        }
        self.pairs.push(canon);
        Ok(())
    }

    /// Number of leaves of the target topology.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The canonical `(source, dest)` pairs, `source < dest`, in id order.
    pub fn pairs(&self) -> &[(LeafId, LeafId)] {
        &self.pairs
    }

    /// Allocation-reusing copy for pooled scratch (the engine's
    /// decomposition memo re-targets one shell per request).
    pub fn clone_from_set(&mut self, src: &GeneralCommSet) {
        self.num_leaves = src.num_leaves;
        self.pairs.clear();
        self.pairs.extend_from_slice(&src.pairs);
    }

    /// Stable 64-bit fingerprint, for cache keys and batch dedupe.
    ///
    /// Hashes exactly what `Eq` compares — leaf count plus the canonical
    /// pairs in id order — under its own domain tag, so a general set and
    /// a plain `CommSet` feeding identical pair bytes never digest equal
    /// (the `ScheduleCache` must not cross-serve the two vocabularies).
    /// Allocation-free.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fp64::new("cst/general-comm-set");
        fp.write_usize(self.num_leaves);
        fp.write_usize(self.pairs.len());
        for &(s, d) in &self.pairs {
            fp.write_usize(s.0);
            fp.write_usize(d.0);
        }
        fp.finish()
    }

    /// Whether pairs `i` and `j` conflict: they cannot share a well-nested
    /// unique-endpoint layer because they share an endpoint or cross.
    ///
    /// This is the decomposition's edge relation; a layer is exactly an
    /// independent set of it that `CommSet::new` accepts.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        pairs_conflict(self.pairs[i], self.pairs[j])
    }
}

/// Conflict relation on canonical `(min, max)` pairs: endpoint sharing or
/// crossing (`a < c < b < d` in either role). Nested or disjoint pairs
/// with four distinct endpoints are compatible.
pub fn pairs_conflict(p: (LeafId, LeafId), q: (LeafId, LeafId)) -> bool {
    let (a, b) = (p.0 .0, p.1 .0);
    let (c, d) = (q.0 .0, q.1 .0);
    if a == c || a == d || b == c || b == d {
        return true;
    }
    (a < c && c < b && b < d) || (c < a && a < d && d < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_orientation() {
        let s = GeneralCommSet::from_pairs(8, &[(7, 3), (0, 5)]);
        assert_eq!(s.pairs(), &[(LeafId(3), LeafId(7)), (LeafId(0), LeafId(5))]);
        assert_eq!(s.num_leaves(), 8);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rejects_self_pairs_and_out_of_range() {
        assert_eq!(
            GeneralCommSet::new(8, &[(3, 3)]),
            Err(CstError::SelfCommunication { leaf: LeafId(3) })
        );
        assert_eq!(
            GeneralCommSet::new(8, &[(0, 8)]),
            Err(CstError::LeafOutOfRange { leaf: LeafId(8), num_leaves: 8 })
        );
    }

    #[test]
    fn rejects_duplicates_across_orientations() {
        assert_eq!(
            GeneralCommSet::new(8, &[(1, 6), (0, 2), (6, 1)]),
            Err(CstError::DuplicatePair { a: 0, b: 2 })
        );
    }

    #[test]
    fn endpoint_reuse_is_allowed() {
        // Hotspot traffic: leaf 0 talks to everyone. Illegal as a CommSet,
        // the whole reason GeneralCommSet exists.
        let s = GeneralCommSet::from_pairs(8, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(s.len(), 3);
        assert!(s.conflicts(0, 1));
        assert!(s.conflicts(1, 2));
    }

    #[test]
    fn conflict_relation_matches_geometry() {
        let s = GeneralCommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 10), (8, 9), (11, 12)]);
        assert!(!s.conflicts(0, 1), "nested pairs are compatible");
        assert!(s.conflicts(0, 2), "crossing pairs conflict");
        assert!(s.conflicts(1, 2), "crossing pairs conflict");
        assert!(!s.conflicts(0, 3), "disjoint pairs are compatible");
        assert!(!s.conflicts(2, 4), "disjoint pairs are compatible");
        assert!(!s.conflicts(3, 4), "disjoint pairs are compatible");
    }

    #[test]
    fn fingerprint_tracks_equality_and_is_domain_tagged() {
        let a = GeneralCommSet::from_pairs(8, &[(0, 3), (4, 7)]);
        let b = GeneralCommSet::from_pairs(8, &[(3, 0), (4, 7)]);
        assert_eq!(a, b, "orientation flip canonicalizes away");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), GeneralCommSet::from_pairs(8, &[(0, 3)]).fingerprint());
        assert_ne!(
            a.fingerprint(),
            GeneralCommSet::from_pairs(16, &[(0, 3), (4, 7)]).fingerprint()
        );
    }

    #[test]
    fn clone_from_set_retargets_shell() {
        let src = GeneralCommSet::from_pairs(8, &[(0, 3), (4, 7)]);
        let mut shell = GeneralCommSet::from_pairs(4, &[(0, 1)]);
        shell.clone_from_set(&src);
        assert_eq!(shell, src);
    }
}
