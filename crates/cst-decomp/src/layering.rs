//! Layer assignment: coloring the conflict graph.

use crate::certificate::{certificate, Certificate};
use cst_comm::{CommSet, Communication};
use cst_core::{pairs_conflict, GeneralCommSet, LeafId};

/// At or below this many pairs, branch-and-bound settles the exact
/// chromatic number — the oracle proptests compare against brute force
/// in this regime, so the result must be provably minimal, not greedy.
pub const EXACT_LIMIT: usize = 16;

/// Up to this many pairs, DSATUR runs in addition to the first-fit
/// orders (it needs the full adjacency matrix, O(m²) bits).
pub const DSATUR_LIMIT: usize = 2048;

/// Up to this many pairs, the crossing-clique certificate sweeps every
/// anchor; above it, only the widest intervals are tried (the bound
/// stays valid, just possibly looser).
pub const STRONG_BOUND_LIMIT: usize = 1024;

/// A general set split into routable well-nested layers, with the
/// lower-bound certificate that prices the split.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Leaves of the target topology (copied from the input set).
    pub num_leaves: usize,
    /// `layer_of[i]` = layer index of input pair `i`.
    pub layer_of: Vec<usize>,
    /// Input pair ids per layer, outermost-first within each layer.
    pub layers: Vec<Vec<usize>>,
    /// Each layer as a legal `CommSet` (right-oriented, well-nested,
    /// unique endpoints), comms in `layers[j]` order — `CommId(k)` of
    /// `layer_sets[j]` is input pair `layers[j][k]`.
    pub layer_sets: Vec<CommSet>,
    /// Verified clique lower bound on the achievable layer count.
    pub lower_bound: usize,
    /// The clique: pairwise-conflicting input pair ids,
    /// `len() == lower_bound`.
    pub witness: Vec<usize>,
    /// True when the layer count is provably minimal: it meets the
    /// certificate, or the exact search (small instances) exhausted
    /// every smaller count.
    pub proven_optimal: bool,
}

impl Decomposition {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Split `set` into well-nested layers. See the crate docs for the
/// algorithm; the result is deterministic for a given input.
pub fn decompose(set: &GeneralCommSet) -> Decomposition {
    let pairs = set.pairs();
    let m = pairs.len();
    let cert = certificate(set);

    // Candidate orders for first-fit.
    let mut outermost: Vec<usize> = (0..m).collect();
    outermost.sort_unstable_by_key(|&i| (pairs[i].0 .0, usize::MAX - pairs[i].1 .0));
    let mut best = first_fit(pairs, &outermost);

    let mut degree = vec![0usize; m];
    for i in 0..m {
        for j in i + 1..m {
            if pairs_conflict(pairs[i], pairs[j]) {
                degree[i] += 1;
                degree[j] += 1;
            }
        }
    }
    let mut by_degree = outermost;
    by_degree.sort_by_key(|&i| usize::MAX - degree[i]); // stable: ties stay outermost-first
    let tried = first_fit(pairs, &by_degree);
    if count_layers(&tried) < count_layers(&best) {
        best = tried;
    }

    if m <= DSATUR_LIMIT {
        let tried = dsatur(pairs, &degree);
        if count_layers(&tried) < count_layers(&best) {
            best = tried;
        }
        best = iterated_greedy(pairs, best, cert.lower_bound);
    }

    let mut proven = count_layers(&best) == cert.lower_bound;
    if !proven && m <= EXACT_LIMIT {
        let (exact, exact_proven) = exact_refine(pairs, cert.lower_bound, best);
        best = exact;
        proven = exact_proven || count_layers(&best) == cert.lower_bound;
    }

    build(set, best, cert, proven)
}

fn count_layers(layer_of: &[usize]) -> usize {
    layer_of.iter().map(|&l| l + 1).max().unwrap_or(0)
}

/// First-fit coloring in the given placement order.
fn first_fit(pairs: &[(LeafId, LeafId)], order: &[usize]) -> Vec<usize> {
    let mut layer_of = vec![usize::MAX; pairs.len()];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for &i in order {
        let found = layers.iter().position(|members| {
            members.iter().all(|&j| !pairs_conflict(pairs[i], pairs[j]))
        });
        match found {
            Some(li) => {
                layers[li].push(i);
                layer_of[i] = li;
            }
            None => {
                layer_of[i] = layers.len();
                layers.push(vec![i]);
            }
        }
    }
    layer_of
}

/// Iterated greedy (Culberson): refeed the current coloring's layers to
/// first-fit as whole blocks. Vertices sharing a layer stay mutually
/// compatible, so the count never increases; reordering the blocks —
/// reversed, largest-first, or pseudo-randomly — lets layers merge and
/// often removes one or two. Plateau moves (equal counts) are accepted
/// so the shuffles can escape local optima. Fully deterministic: the
/// shuffle runs on a fixed-seed xorshift.
fn iterated_greedy(
    pairs: &[(LeafId, LeafId)],
    mut best: Vec<usize>,
    lower_bound: usize,
) -> Vec<usize> {
    let rounds = if pairs.len() <= 256 { 64 } else { 16 };
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for round in 0..rounds {
        let k = count_layers(&best);
        if k <= lower_bound.max(1) {
            break; // already provably minimal
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &l) in best.iter().enumerate() {
            groups[l].push(i);
        }
        match round % 3 {
            0 => groups.reverse(),
            1 => groups.sort_by_key(|g| usize::MAX - g.len()),
            _ => {
                for i in (1..groups.len()).rev() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let j = (state % (i as u64 + 1)) as usize;
                    groups.swap(i, j);
                }
            }
        }
        let order: Vec<usize> = groups.into_iter().flatten().collect();
        let tried = first_fit(pairs, &order);
        if count_layers(&tried) <= count_layers(&best) {
            best = tried;
        }
    }
    best
}

/// DSATUR: repeatedly color the vertex whose neighbors already use the
/// most distinct colors (ties: higher conflict degree, then lower id).
fn dsatur(pairs: &[(LeafId, LeafId)], degree: &[usize]) -> Vec<usize> {
    let m = pairs.len();
    let words = m.div_ceil(64);
    let mut adj = vec![0u64; m * words];
    for i in 0..m {
        for j in i + 1..m {
            if pairs_conflict(pairs[i], pairs[j]) {
                adj[i * words + j / 64] |= 1 << (j % 64);
                adj[j * words + i / 64] |= 1 << (i % 64);
            }
        }
    }
    let mut layer_of = vec![usize::MAX; m];
    // Per-vertex neighbor-color sets as growable bitsets.
    let mut sat: Vec<Vec<u64>> = vec![Vec::new(); m];
    let mut sat_count = vec![0usize; m];
    for _ in 0..m {
        let v = (0..m)
            .filter(|&v| layer_of[v] == usize::MAX)
            .max_by_key(|&v| (sat_count[v], degree[v], m - v))
            .expect("an uncolored vertex remains");
        // Smallest color absent from sat[v].
        let mut color = sat[v].len() * 64;
        'scan: for (w, &bits) in sat[v].iter().enumerate() {
            if bits != u64::MAX {
                color = w * 64 + bits.trailing_ones() as usize;
                break 'scan;
            }
        }
        layer_of[v] = color;
        for u in 0..m {
            if layer_of[u] == usize::MAX && adj[v * words + u / 64] >> (u % 64) & 1 == 1 {
                let s = &mut sat[u];
                if s.len() <= color / 64 {
                    s.resize(color / 64 + 1, 0);
                }
                if s[color / 64] >> (color % 64) & 1 == 0 {
                    s[color / 64] |= 1 << (color % 64);
                    sat_count[u] += 1;
                }
            }
        }
    }
    layer_of
}

/// Iterative-deepening exact coloring: try every count from the bound up
/// to one below the incumbent; the first success is the chromatic
/// number, and exhausting them all proves the incumbent minimal. Only
/// run at `m <= EXACT_LIMIT`. Returns the best coloring and whether
/// minimality was proven.
fn exact_refine(
    pairs: &[(LeafId, LeafId)],
    lower_bound: usize,
    incumbent: Vec<usize>,
) -> (Vec<usize>, bool) {
    let m = pairs.len();
    let ub = count_layers(&incumbent);
    let mut order: Vec<usize> = (0..m).collect();
    // Most-constrained-first keeps the search shallow.
    let mut degree = vec![0usize; m];
    for i in 0..m {
        for j in i + 1..m {
            if pairs_conflict(pairs[i], pairs[j]) {
                degree[i] += 1;
                degree[j] += 1;
            }
        }
    }
    order.sort_unstable_by_key(|&i| (usize::MAX - degree[i], i));
    for k in lower_bound.max(1)..ub {
        let mut colors = vec![usize::MAX; m];
        if try_color(pairs, &order, 0, k, &mut colors) {
            return (colors, true);
        }
    }
    // Every smaller count failed: the incumbent is exactly chromatic.
    (incumbent, true)
}

fn try_color(
    pairs: &[(LeafId, LeafId)],
    order: &[usize],
    depth: usize,
    k: usize,
    colors: &mut [usize],
) -> bool {
    let Some(&v) = order.get(depth) else {
        return true;
    };
    // Symmetry break: a fresh color's index is forced.
    let used = order[..depth].iter().map(|&u| colors[u] + 1).max().unwrap_or(0);
    for c in 0..k.min(used + 1) {
        let ok = order[..depth]
            .iter()
            .all(|&u| colors[u] != c || !pairs_conflict(pairs[v], pairs[u]));
        if ok {
            colors[v] = c;
            if try_color(pairs, order, depth + 1, k, colors) {
                return true;
            }
            colors[v] = usize::MAX;
        }
    }
    false
}

/// Assemble the result: compact layer ids into first-use order, sort each
/// layer outermost-first, and build the routable per-layer sets.
fn build(
    set: &GeneralCommSet,
    raw_layer_of: Vec<usize>,
    cert: Certificate,
    proven_optimal: bool,
) -> Decomposition {
    let pairs = set.pairs();
    let n = count_layers(&raw_layer_of);
    let mut remap = vec![usize::MAX; n];
    let mut layer_of = vec![usize::MAX; pairs.len()];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (i, &raw) in raw_layer_of.iter().enumerate() {
        if remap[raw] == usize::MAX {
            remap[raw] = layers.len();
            layers.push(Vec::new());
        }
        layer_of[i] = remap[raw];
        layers[remap[raw]].push(i);
    }
    let layer_sets: Vec<CommSet> = layers
        .iter_mut()
        .map(|ids| {
            ids.sort_unstable_by_key(|&i| (pairs[i].0 .0, usize::MAX - pairs[i].1 .0));
            let comms: Vec<Communication> =
                ids.iter().map(|&i| Communication { source: pairs[i].0, dest: pairs[i].1 }).collect();
            CommSet::new(set.num_leaves(), comms)
                .expect("a conflict-free layer is a legal CommSet")
        })
        .collect();
    Decomposition {
        num_leaves: set.num_leaves(),
        layer_of,
        layers,
        layer_sets,
        lower_bound: cert.lower_bound,
        witness: cert.witness,
        proven_optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid(set: &GeneralCommSet, d: &Decomposition) {
        assert_eq!(d.layer_of.len(), set.len());
        assert_eq!(d.layers.len(), d.layer_sets.len());
        let mut seen = vec![false; set.len()];
        for (li, ids) in d.layers.iter().enumerate() {
            for (k, &i) in ids.iter().enumerate() {
                assert_eq!(d.layer_of[i], li);
                assert!(!seen[i], "pair {i} in two layers");
                seen[i] = true;
                let c = d.layer_sets[li].comms()[k];
                assert_eq!((c.source, c.dest), set.pairs()[i]);
            }
            assert!(d.layer_sets[li].is_well_nested());
            assert!(d.layer_sets[li].is_right_oriented());
        }
        assert!(seen.iter().all(|&s| s), "every pair must land in a layer");
        if !set.is_empty() {
            assert!(d.lower_bound >= 1 && d.lower_bound <= d.num_layers());
        }
        assert_eq!(d.witness.len(), d.lower_bound);
        for (a, &i) in d.witness.iter().enumerate() {
            for &j in &d.witness[a + 1..] {
                assert!(set.conflicts(i, j));
            }
        }
    }

    #[test]
    fn well_nested_input_is_one_layer() {
        let set = GeneralCommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 11)]);
        let d = decompose(&set);
        assert_eq!(d.num_layers(), 1);
        assert!(d.proven_optimal);
        check_valid(&set, &d);
    }

    #[test]
    fn shuffle_needs_one_layer_per_pair() {
        let n = 16;
        let pairs: Vec<(usize, usize)> = (0..n / 2).map(|i| (i, i + n / 2)).collect();
        let set = GeneralCommSet::from_pairs(n, &pairs);
        let d = decompose(&set);
        assert_eq!(d.num_layers(), n / 2);
        assert_eq!(d.lower_bound, n / 2);
        assert!(d.proven_optimal);
        check_valid(&set, &d);
    }

    #[test]
    fn hotspot_needs_one_layer_per_flow() {
        let set = GeneralCommSet::from_pairs(8, &[(4, 0), (4, 1), (4, 2), (4, 3)]);
        let d = decompose(&set);
        assert_eq!(d.num_layers(), 4);
        assert!(d.proven_optimal);
        check_valid(&set, &d);
    }

    #[test]
    fn endpoint_reuse_without_crossing_still_splits() {
        // (0,3) and (3,6) nest-compatible as intervals but share leaf 3.
        let set = GeneralCommSet::from_pairs(8, &[(0, 3), (3, 6)]);
        let d = decompose(&set);
        assert_eq!(d.num_layers(), 2);
        assert!(d.proven_optimal);
        check_valid(&set, &d);
    }

    #[test]
    fn empty_set_is_zero_layers() {
        let set = GeneralCommSet::empty(8);
        let d = decompose(&set);
        assert_eq!(d.num_layers(), 0);
        assert_eq!(d.lower_bound, 0);
        assert!(d.proven_optimal);
    }

    #[test]
    fn exact_refinement_beats_greedy_when_it_matters() {
        // A 5-cycle in the conflict graph colors with 3; first-fit in an
        // unlucky order can use more, and the endpoint/crossing cliques
        // bound only 2 — exact search must close the gap and prove 3.
        // C5 via endpoint sharing: (0,2)(2,4)(4,6)(6,8)(8... needs odd
        // cycle with no extra chords: pairs (0,1)(1,2)(2,3)(3,4)(4,0)?
        // (4,0) canonicalizes to (0,4) which shares 0 with (0,1) and 4
        // with (3,4) — chords: (0,4) vs (1,2): 0<1<2<4 nested? 1,2 inside
        // (0,4): nested, no conflict. vs (2,3): nested, no conflict. Good:
        // a chordless 5-cycle.
        let set = GeneralCommSet::from_pairs(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let d = decompose(&set);
        assert_eq!(d.num_layers(), 3, "C5 is 3-chromatic");
        assert_eq!(d.lower_bound, 2, "clique bound of C5 is 2");
        assert!(d.proven_optimal, "exact search proves 3 minimal");
        check_valid(&set, &d);
    }

    #[test]
    fn deterministic_for_same_input() {
        let pairs: Vec<(usize, usize)> = vec![(0, 9), (3, 12), (6, 15), (1, 4), (2, 11), (5, 14)];
        let set = GeneralCommSet::from_pairs(16, &pairs);
        let a = decompose(&set);
        let b = decompose(&set);
        assert_eq!(a.layer_of, b.layer_of);
        assert_eq!(a.witness, b.witness);
    }
}
