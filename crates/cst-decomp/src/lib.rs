//! # cst-decomp — layered decomposition front-end
//!
//! Everything downstream of the partitioner speaks the paper's
//! Definition 1 vocabulary: right-oriented, well-nested, unique
//! endpoints. This crate turns arbitrary traffic into that vocabulary:
//! a [`cst_core::GeneralCommSet`] is split into a small number of
//! *layers*, each of which is a legal [`cst_comm::CommSet`], and the
//! layers are routed back to back by the engine (`cst-engine`'s
//! `route_general`), their schedules concatenated into one composite.
//!
//! Two pairs can share a layer iff they neither **cross** (partial
//! interval overlap — the well-nestedness obstruction) nor **share an
//! endpoint** (the paper's Step 1.1 allows each PE one role per set).
//! That pairwise relation is the whole feasibility condition, so layer
//! assignment is graph coloring of the conflict graph — a circle-graph
//! generalization of interval coloring, NP-hard in general. The
//! algorithm ([`decompose`]):
//!
//! 1. **Greedy coloring**: first-fit in outermost-first and
//!    conflict-degree order, plus DSATUR below [`DSATUR_LIMIT`]; the
//!    best result wins.
//! 2. **Lower-bound certificate**: the max over endpoint multiplicity
//!    cliques and mutually-crossing cliques (anchored longest-increasing-
//!    subsequence sweep, exact over all anchors below
//!    [`STRONG_BOUND_LIMIT`]). The witness — a list of pairwise
//!    conflicting pair ids — ships with the result and is re-verified by
//!    `cst-check`'s `CST303` audit.
//! 3. **Exact refinement**: at or below [`EXACT_LIMIT`] pairs, a
//!    branch-and-bound search settles the exact chromatic number, so
//!    small instances are *provably* minimal (the property the oracle
//!    proptests pin).
//!
//! `greedy == bound` (or an exhausted exact search) sets
//! [`Decomposition::proven_optimal`]. See `docs/DECOMP.md` for the full
//! story and the composition invariants the `CST3xx` diagnostics audit.

mod assemble;
mod certificate;
mod layering;

pub use assemble::{append_layer, slice_layer};
pub use certificate::{certificate, Certificate};
pub use layering::{decompose, Decomposition, DSATUR_LIMIT, EXACT_LIMIT, STRONG_BOUND_LIMIT};
