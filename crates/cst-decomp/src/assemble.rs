//! Composite-schedule assembly and per-layer slicing.
//!
//! A composite schedule concatenates the per-layer schedules in layer
//! order; its `CommId`s refer to the *input pair ids* of the general
//! set, remapped from each layer's local ids via `layers[j]`. Assembly
//! runs on every engine request — including warm cache hits — so it
//! draws every shell from the [`SchedulePool`] and stays off the
//! allocator once the pool is sized (the `route_general_cached` gate in
//! `tests/alloc_gate.rs`).

use cst_comm::{CommId, Round, Schedule, SchedulePool};

/// Append one routed layer's rounds to `composite`, remapping layer-local
/// `CommId(k)` to input pair id `ids[k]`. Round shells come from `pool`.
pub fn append_layer(
    composite: &mut Schedule,
    pool: &mut SchedulePool,
    ids: &[usize],
    layer_schedule: &Schedule,
) {
    composite.rounds.reserve(layer_schedule.rounds.len());
    for round in &layer_schedule.rounds {
        let mut shell = pool.take_round();
        shell.comms.extend(round.comms.iter().map(|&CommId(k)| CommId(ids[k])));
        shell.configs.clone_from(&round.configs);
        composite.rounds.push(shell);
    }
}

/// Cut layer `j`'s band back out of a composite: rounds
/// `offset .. offset + rounds`, with input pair ids mapped back to the
/// layer-local ids of `ids` (the inverse of [`append_layer`]). Ids not
/// in `ids` are preserved as a sentinel past the layer length so the
/// audit can flag them (`CST301`) instead of panicking.
pub fn slice_layer(composite: &Schedule, offset: usize, rounds: usize, ids: &[usize]) -> Schedule {
    let local_of = |g: usize| ids.iter().position(|&i| i == g).unwrap_or(ids.len());
    let rounds = composite
        .rounds
        .iter()
        .skip(offset)
        .take(rounds)
        .map(|r| Round {
            comms: r.comms.iter().map(|&CommId(g)| CommId(local_of(g))).collect(),
            configs: r.configs.clone(),
        })
        .collect();
    Schedule { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_core::RoundConfigs;

    fn round_with(ids: &[usize]) -> Round {
        Round { comms: ids.iter().map(|&i| CommId(i)).collect(), configs: RoundConfigs::new() }
    }

    #[test]
    fn append_remaps_and_slice_inverts() {
        let layer = Schedule { rounds: vec![round_with(&[0, 1]), round_with(&[2])] };
        let ids = [5, 3, 8];
        let mut pool = SchedulePool::new();
        let mut composite = Schedule::default();
        append_layer(&mut composite, &mut pool, &ids, &layer);
        assert_eq!(composite.rounds[0].comms, vec![CommId(5), CommId(3)]);
        assert_eq!(composite.rounds[1].comms, vec![CommId(8)]);

        let back = slice_layer(&composite, 0, 2, &ids);
        assert_eq!(back, layer);
    }

    #[test]
    fn slice_respects_band_and_flags_foreign_ids() {
        let mut pool = SchedulePool::new();
        let mut composite = Schedule::default();
        append_layer(&mut composite, &mut pool, &[4], &Schedule { rounds: vec![round_with(&[0])] });
        append_layer(&mut composite, &mut pool, &[7], &Schedule { rounds: vec![round_with(&[0])] });
        let band = slice_layer(&composite, 1, 1, &[7]);
        assert_eq!(band.rounds.len(), 1);
        assert_eq!(band.rounds[0].comms, vec![CommId(0)]);
        // Slicing the wrong band maps id 4 past the layer: sentinel.
        let wrong = slice_layer(&composite, 0, 1, &[7]);
        assert_eq!(wrong.rounds[0].comms, vec![CommId(1)]);
    }

    #[test]
    fn warm_append_reuses_pooled_shells() {
        let layer = Schedule { rounds: vec![round_with(&[0]), round_with(&[1])] };
        let ids = [1, 0];
        let mut pool = SchedulePool::new();
        for _ in 0..3 {
            let mut composite = pool.take_schedule();
            append_layer(&mut composite, &mut pool, &ids, &layer);
            assert_eq!(composite.rounds.len(), 2);
            pool.put_schedule(composite);
        }
    }
}
