//! Lower-bound certificates for the layer count.
//!
//! A clique of the conflict graph (pairs that pairwise cross or share an
//! endpoint) forces one layer per member, so any clique size is a valid
//! lower bound on the decomposition. Two clique families cover the
//! structures real traffic produces:
//!
//! * **endpoint cliques** — all pairs touching one leaf (hotspots);
//! * **crossing cliques** — mutually crossing "rainbows" (permutation
//!   traffic). For an anchor pair `f = (l_f, r_f)`, every candidate with
//!   `l_f < l < r_f < r` crosses `f` *and* crosses every other candidate
//!   whose `(l, r)` both increase — so the largest crossing clique with
//!   `f` leftmost is `1 +` the longest strictly-increasing-`r` chain over
//!   candidates sorted by `l` (ties in `l` are endpoint-sharing, which
//!   also conflicts, so the chain stays a clique).
//!
//! The result carries a **witness**: the member ids of the best clique
//! found. `cst-check`'s `CST303` pass re-verifies the witness pairwise,
//! so a decomposition can't claim a bound the artifact doesn't exhibit.

use crate::layering::STRONG_BOUND_LIMIT;
use cst_core::GeneralCommSet;

/// How many anchors the crossing-clique sweep tries above
/// [`STRONG_BOUND_LIMIT`] (the widest intervals enclose the most
/// candidates, so they are the most promising anchors).
const CHEAP_BOUND_ANCHORS: usize = 48;

/// A verifiable lower bound: `witness` is a set of pairwise-conflicting
/// pair ids and `lower_bound == witness.len()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Certificate {
    pub lower_bound: usize,
    pub witness: Vec<usize>,
}

/// Compute the best clique bound over both families.
pub fn certificate(set: &GeneralCommSet) -> Certificate {
    let mut best = endpoint_clique(set);
    let crossing = crossing_clique(set);
    if crossing.lower_bound > best.lower_bound {
        best = crossing;
    }
    best
}

/// The leaf used by the most pairs; all of them mutually conflict.
fn endpoint_clique(set: &GeneralCommSet) -> Certificate {
    let mut count = vec![0usize; set.num_leaves()];
    for &(s, d) in set.pairs() {
        count[s.0] += 1;
        count[d.0] += 1;
    }
    let Some((leaf, &mult)) = count.iter().enumerate().max_by_key(|&(_, c)| *c) else {
        return Certificate::default();
    };
    if mult == 0 {
        return Certificate::default();
    }
    let witness: Vec<usize> = set
        .pairs()
        .iter()
        .enumerate()
        .filter(|&(_, &(s, d))| s.0 == leaf || d.0 == leaf)
        .map(|(i, _)| i)
        .collect();
    Certificate { lower_bound: witness.len(), witness }
}

/// Anchored LIS sweep over crossing cliques.
fn crossing_clique(set: &GeneralCommSet) -> Certificate {
    let pairs = set.pairs();
    let m = pairs.len();
    let mut anchors: Vec<usize> = (0..m).collect();
    if m > STRONG_BOUND_LIMIT {
        anchors.sort_unstable_by_key(|&i| {
            let (l, r) = (pairs[i].0 .0, pairs[i].1 .0);
            (usize::MAX - (r - l), l)
        });
        anchors.truncate(CHEAP_BOUND_ANCHORS);
    }

    let mut best = Certificate::default();
    // Reused across anchors: candidates as (l, r, id), then LIS tables.
    let mut cands: Vec<(usize, usize, usize)> = Vec::new();
    let mut tails: Vec<usize> = Vec::new(); // index into cands of chain tail per length
    let mut parent: Vec<usize> = Vec::new();
    for &f in &anchors {
        let (lf, rf) = (pairs[f].0 .0, pairs[f].1 .0);
        cands.clear();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let (l, r) = (s.0, d.0);
            if lf < l && l < rf && rf < r {
                cands.push((l, r, i));
            }
        }
        if cands.len() < best.lower_bound {
            continue; // even the full candidate set (plus the anchor) can't beat the best
        }
        cands.sort_unstable();
        // Longest strictly-increasing subsequence in r (patience sorting).
        tails.clear();
        parent.clear();
        parent.resize(cands.len(), usize::MAX);
        for (ci, &(_, r, _)) in cands.iter().enumerate() {
            // First tail whose r >= this r gets replaced.
            let pos = tails.partition_point(|&t| cands[t].1 < r);
            parent[ci] = if pos > 0 { tails[pos - 1] } else { usize::MAX };
            if pos == tails.len() {
                tails.push(ci);
            } else {
                tails[pos] = ci;
            }
        }
        if 1 + tails.len() > best.lower_bound {
            let mut witness = Vec::with_capacity(1 + tails.len());
            witness.push(f);
            if let Some(&last) = tails.last() {
                let mut at = last;
                loop {
                    witness.push(cands[at].2);
                    if parent[at] == usize::MAX {
                        break;
                    }
                    at = parent[at];
                }
                witness[1..].reverse();
            }
            best = Certificate { lower_bound: witness.len(), witness };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_witness_is_clique(set: &GeneralCommSet, cert: &Certificate) {
        assert_eq!(cert.lower_bound, cert.witness.len());
        for (a, &i) in cert.witness.iter().enumerate() {
            for &j in &cert.witness[a + 1..] {
                assert!(set.conflicts(i, j), "witness pairs #{i} and #{j} do not conflict");
            }
        }
    }

    #[test]
    fn hotspot_bound_is_endpoint_multiplicity() {
        let set = GeneralCommSet::from_pairs(8, &[(0, 1), (0, 2), (0, 3), (5, 6)]);
        let cert = certificate(&set);
        assert_eq!(cert.lower_bound, 3);
        assert_witness_is_clique(&set, &cert);
    }

    #[test]
    fn shuffle_bound_is_the_full_rainbow() {
        // (i, i + n/2): all pairs mutually cross.
        let n = 16;
        let pairs: Vec<(usize, usize)> = (0..n / 2).map(|i| (i, i + n / 2)).collect();
        let set = GeneralCommSet::from_pairs(n, &pairs);
        let cert = certificate(&set);
        assert_eq!(cert.lower_bound, n / 2);
        assert_witness_is_clique(&set, &cert);
    }

    #[test]
    fn nested_set_bound_is_one() {
        let set = GeneralCommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]);
        let cert = certificate(&set);
        assert_eq!(cert.lower_bound, 1);
        assert_witness_is_clique(&set, &cert);
    }

    #[test]
    fn empty_set_bound_is_zero() {
        let set = GeneralCommSet::empty(8);
        assert_eq!(certificate(&set), Certificate::default());
    }

    #[test]
    fn chain_with_shared_left_endpoints_still_verifies() {
        // Anchor (0,5); candidates (1,6) and (1,7) share l — endpoint
        // conflict keeps the chain a clique.
        let set = GeneralCommSet::from_pairs(16, &[(0, 5), (1, 6), (1, 7)]);
        let cert = certificate(&set);
        assert_eq!(cert.lower_bound, 3);
        assert_witness_is_clique(&set, &cert);
    }
}
