//! The energy model layered over the abstract power units.
//!
//! The paper counts abstract units (one per connection set, §2.3). To
//! compare schedulers in joule-like terms the simulator composes three
//! contributions with configurable coefficients:
//!
//! * switch reconfiguration: `units * e_reconfig`;
//! * control messaging: `words * e_word` (Phase 1 + Phase 2);
//! * data transfer: `hops * e_hop` per delivered payload.
//!
//! Defaults are normalized so reconfiguration dominates (the regime the
//! paper targets: "alternating between configurations is a major source of
//! power consumption").

use cst_core::PowerReport;
use serde::{Deserialize, Serialize};

/// Energy coefficients (arbitrary units; defaults normalized to the
/// reconfiguration cost).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per switch connection establishment.
    pub e_reconfig: f64,
    /// Energy per control word transmitted.
    pub e_word: f64,
    /// Energy per switch hop of a data payload.
    pub e_hop: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Reconfiguration an order of magnitude above a control word, data
        // forwarding cheapest — the regime where PADR matters.
        EnergyModel { e_reconfig: 1.0, e_word: 0.1, e_hop: 0.01 }
    }
}

/// Itemized energy for one schedule execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub reconfig: f64,
    pub control: f64,
    pub data: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.reconfig + self.control + self.data
    }
}

impl EnergyModel {
    /// Energy under **hold** semantics (a PADR-capable protocol).
    pub fn hold_energy(
        &self,
        power: &PowerReport,
        control_words: u64,
        data_hops: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            reconfig: power.total_units as f64 * self.e_reconfig,
            control: control_words as f64 * self.e_word,
            data: data_hops as f64 * self.e_hop,
        }
    }

    /// Energy under **write-through** semantics (per-round path
    /// establishment, the ID-based comparator's regime).
    pub fn writethrough_energy(
        &self,
        power: &PowerReport,
        control_words: u64,
        data_hops: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            reconfig: power.total_writethrough_units as f64 * self.e_reconfig,
            control: control_words as f64 * self.e_word,
            data: data_hops as f64 * self.e_hop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(units: u64, wt: u64) -> PowerReport {
        PowerReport {
            total_units: units,
            total_writethrough_units: wt,
            ..Default::default()
        }
    }

    #[test]
    fn totals_compose() {
        let m = EnergyModel::default();
        let e = m.hold_energy(&report(10, 50), 100, 200);
        assert!((e.reconfig - 10.0).abs() < 1e-9);
        assert!((e.control - 10.0).abs() < 1e-9);
        assert!((e.data - 2.0).abs() < 1e-9);
        assert!((e.total() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn writethrough_charges_more_when_units_differ() {
        let m = EnergyModel::default();
        let r = report(10, 50);
        let hold = m.hold_energy(&r, 0, 0).total();
        let wt = m.writethrough_energy(&r, 0, 0).total();
        assert!(wt > hold);
        assert!((wt - 50.0).abs() < 1e-9);
    }

    #[test]
    fn custom_coefficients() {
        let m = EnergyModel { e_reconfig: 2.0, e_word: 0.0, e_hop: 1.0 };
        let e = m.hold_energy(&report(3, 3), 999, 4);
        assert!((e.total() - 10.0).abs() < 1e-9);
    }
}
