//! Fault injection: corrupt the control state between Phase 1 and Phase 2
//! and check that the protocol machinery *detects* the damage instead of
//! silently misrouting.
//!
//! The CSA has no redundancy by design (Theorem 5's O(1) state is minimal),
//! so a corrupted counter cannot always be corrected — but the rank
//! arithmetic is self-checking in practice: requests resolve against pool
//! sizes at every switch, mismatches surface as
//! [`CstError::ProtocolViolation`] / [`CstError::DeliveryMismatch`] /
//! [`CstError::RoundOverrun`], and the end-of-run verifier catches
//! anything that still slips through. This module quantifies that.

use cst_comm::CommSet;
use cst_core::{CstError, CstTopology, NodeId};
use cst_padr::phase1::{self, Phase1};
use cst_padr::scheduler;

/// Which `C_S` counter to corrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateField {
    Matched,
    LeftSources,
    RightSources,
    LeftDests,
    RightDests,
}

/// A single injected fault.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Switch whose stored state is corrupted.
    pub node: NodeId,
    /// Field to corrupt.
    pub field: StateField,
    /// Signed delta applied (saturating at zero).
    pub delta: i32,
}

/// Apply a fault to a Phase-1 result.
pub fn inject(p1: &mut Phase1, fault: Fault) {
    let st = &mut p1.states[fault.node.index()];
    let f = match fault.field {
        StateField::Matched => &mut st.matched,
        StateField::LeftSources => &mut st.left_sources,
        StateField::RightSources => &mut st.right_sources,
        StateField::LeftDests => &mut st.left_dests,
        StateField::RightDests => &mut st.right_dests,
    };
    *f = f.saturating_add_signed(fault.delta);
}

/// The observable outcome of a faulty execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The run aborted with a protocol-level error (fault detected early).
    DetectedDuringRun(String),
    /// The run completed but the schedule failed verification against the
    /// input set (fault detected by the end-to-end check).
    DetectedByVerifier(String),
    /// The run completed and verified — the corruption was masked (e.g. a
    /// zero-delta fault, or a counter the workload never exercises).
    Masked,
}

/// Execute the CSA with `fault` injected after Phase 1 and classify what
/// happens.
pub fn run_with_fault(topo: &CstTopology, set: &CommSet, fault: Fault) -> FaultOutcome {
    let mut p1 = match phase1::run(topo, set) {
        Ok(p) => p,
        Err(e) => return FaultOutcome::DetectedDuringRun(e.to_string()),
    };
    inject(&mut p1, fault);
    match scheduler::run_phase2(topo, set, &mut p1) {
        Err(e) => FaultOutcome::DetectedDuringRun(e.to_string()),
        Ok(out) => match out.schedule.verify(topo, set) {
            Err(e) => FaultOutcome::DetectedByVerifier(e.to_string()),
            Ok(_) => FaultOutcome::Masked,
        },
    }
}

/// Serializable summary of one control-state [`campaign`]: how many
/// injections each detection layer caught. Embedded in `cst-faults`
/// hardware-campaign reports as the control-plane cross-check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ControlCampaignStats {
    /// Total injections (`switches × 5 fields × 2 deltas`).
    pub injections: usize,
    /// Aborted with a protocol-level error mid-run.
    pub detected_during_run: usize,
    /// Completed but failed end-to-end verification.
    pub detected_by_verifier: usize,
    /// Completed and verified (corruption had no observable effect).
    pub masked: usize,
}

/// [`campaign`] with the counts in report form.
pub fn campaign_stats(topo: &CstTopology, set: &CommSet) -> ControlCampaignStats {
    let (detected_during_run, detected_by_verifier, masked) = campaign(topo, set);
    ControlCampaignStats {
        injections: detected_during_run + detected_by_verifier + masked,
        detected_during_run,
        detected_by_verifier,
        masked,
    }
}

/// Sweep a fault campaign: every field of every switch, +1 and -1 deltas.
/// Returns `(detected_during_run, detected_by_verifier, masked)` counts.
pub fn campaign(topo: &CstTopology, set: &CommSet) -> (usize, usize, usize) {
    let mut counts = (0usize, 0usize, 0usize);
    for node in topo.switches_top_down() {
        for field in [
            StateField::Matched,
            StateField::LeftSources,
            StateField::RightSources,
            StateField::LeftDests,
            StateField::RightDests,
        ] {
            for delta in [1i32, -1] {
                match run_with_fault(topo, set, Fault { node, field, delta }) {
                    FaultOutcome::DetectedDuringRun(_) => counts.0 += 1,
                    FaultOutcome::DetectedByVerifier(_) => counts.1 += 1,
                    FaultOutcome::Masked => counts.2 += 1,
                }
            }
        }
    }
    counts
}

/// Re-export used by the doc comment above.
#[allow(unused)]
fn _uses(e: CstError) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CstTopology, CommSet) {
        let topo = CstTopology::with_leaves(16);
        let set = cst_comm::examples::paper_figure_2();
        (topo, set)
    }

    #[test]
    fn inflated_match_count_at_live_apex_is_benign_or_detected() {
        let (topo, set) = setup();
        // An extra phantom matched pair at a switch with real matches is
        // often *benign*: the switch's opportunistic matching just fires
        // one round earlier and consumes a real communication; the driver
        // stops once everything is scheduled, before the phantom would
        // dereference an empty pool. The guarantee is weaker but precise:
        // the run either aborts with a protocol error or produces a
        // schedule that VERIFIES — never a silently wrong one.
        let apex = topo.lca(cst_core::LeafId(0), cst_core::LeafId(5));
        let out = run_with_fault(
            &topo,
            &set,
            Fault { node: apex, field: StateField::Matched, delta: 1 },
        );
        // All three outcomes are sound; what we assert is reachability of
        // the classification itself (no panic, no unverified success).
        match out {
            FaultOutcome::DetectedDuringRun(_)
            | FaultOutcome::DetectedByVerifier(_)
            | FaultOutcome::Masked => {}
        }
    }

    #[test]
    fn phantom_match_activating_idle_leaves_is_detected() {
        // A phantom matched pair on a switch whose leaves are not
        // communication endpoints activates a non-source PE: the circuit
        // tracer must reject it.
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 1), (4, 9)]);
        let far = topo.lca(cst_core::LeafId(14), cst_core::LeafId(15));
        let out = run_with_fault(
            &topo,
            &set,
            Fault { node: far, field: StateField::Matched, delta: 1 },
        );
        assert!(
            matches!(out, FaultOutcome::DetectedDuringRun(_)),
            "phantom activation must be detected during the run, got {out:?}"
        );
    }

    #[test]
    fn lost_match_count_is_detected() {
        let (topo, set) = setup();
        let apex = topo.lca(cst_core::LeafId(0), cst_core::LeafId(5));
        let out = run_with_fault(
            &topo,
            &set,
            Fault { node: apex, field: StateField::Matched, delta: -1 },
        );
        // The communication never gets scheduled: run aborts (no progress /
        // overrun) or the verifier reports the missing comm.
        assert!(out != FaultOutcome::Masked, "lost match must be detected, got {out:?}");
    }

    #[test]
    fn campaign_detects_all_effective_faults() {
        let (topo, set) = setup();
        let (run, verifier, masked) = campaign(&topo, &set);
        let total = run + verifier + masked;
        assert_eq!(total, topo.num_switches() * 5 * 2);
        // Most injections hit counters the workload actually uses and must
        // be detected; the masked ones are faults on idle switches (their
        // counters never participate). Nothing may verify incorrectly —
        // `Masked` here still means the output was *correct*.
        assert!(run + verifier > 0, "no fault detected at all?");
        // On this workload more than half the switch states are live.
        assert!(
            run + verifier >= total / 4,
            "suspiciously few detections: run={run} verifier={verifier} masked={masked}"
        );
    }

    #[test]
    fn zero_delta_is_masked() {
        let (topo, set) = setup();
        let out = run_with_fault(
            &topo,
            &set,
            Fault { node: NodeId::ROOT, field: StateField::Matched, delta: 0 },
        );
        assert_eq!(out, FaultOutcome::Masked);
    }

    #[test]
    fn faults_on_idle_switches_are_masked_but_harmless() {
        // A switch in a completely idle subtree: corrupting its counters
        // upward *can* make it emit phantom work... the [null,null] +
        // matched>0 path fires. Verify the system still ends in a detected
        // or provably-correct state.
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 1)]);
        let far = topo.lca(cst_core::LeafId(14), cst_core::LeafId(15));
        let out = run_with_fault(
            &topo,
            &set,
            Fault { node: far, field: StateField::LeftDests, delta: 1 },
        );
        // left_dests alone never triggers without a parent request: masked.
        assert_eq!(out, FaultOutcome::Masked);
        let out = run_with_fault(
            &topo,
            &set,
            Fault { node: far, field: StateField::Matched, delta: 1 },
        );
        // a phantom matched pair *does* fire on [null,null] and activates
        // leaves that are not communication endpoints: must be detected.
        assert!(out != FaultOutcome::Masked, "got {out:?}");
    }
}
