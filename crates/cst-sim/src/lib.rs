//! # cst-sim — cycle-level CST simulator
//!
//! Event-driven execution of the CSA as the SRGA-style hardware would run
//! it (the paper's evaluation substrate, built in software since `repro`
//! needs no FPGA):
//!
//! * [`event`] — deterministic discrete-event core;
//! * [`engine`] — Phase-1 upward wave, per-round control waves, data
//!   cycles; reuses the pure switch logic from `cst-padr` so hardware and
//!   host scheduler cannot drift;
//! * [`data`] — payload propagation over configured circuits;
//! * [`compile`] — verified schedules lowered to flat config-delta
//!   replay programs (straight-line execution, no interpretation);
//! * [`energy`] — joule-like model over the abstract power units;
//! * [`trace`] — serializable execution traces;
//! * [`rtl`] — the decentralized clocked machine model (per-switch
//!   mailboxes, no global state), proven equivalent to the engine;
//! * [`fault`] — control-state fault injection and detection campaigns.

pub mod compile;
pub mod data;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod rtl;
pub mod event;
pub mod trace;

pub use compile::{CompiledProgram, DeltaInstr, ReplayScratch};
pub use data::{DataPhase, Delivery};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use fault::{
    campaign, campaign_stats, inject, run_with_fault, ControlCampaignStats, Fault, FaultOutcome,
    StateField,
};
pub use rtl::{RtlMachine, RtlRound};
pub use engine::{
    default_payloads, simulate, simulate_schedule, simulate_traced, RoundTiming, SimOutcome,
};
pub use event::{Cycle, EventQueue};
pub use trace::Trace;
