//! The data-transfer phase: payload propagation over configured circuits
//! (paper Step 2.2: "PEs received [s, null] write their data to their
//! destinations").
//!
//! Signals are followed through the switches' internal connections exactly
//! as the data units would forward them; the side restriction guarantees
//! progress (a signal can never revisit a switch), which the hop guard
//! double-checks.

use bytes::Bytes;
use cst_core::{ConfigLookup, CstError, CstTopology, LeafId, Side};

/// One completed transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    pub source: LeafId,
    pub dest: LeafId,
    pub payload: Bytes,
    /// Switches traversed.
    pub hops: usize,
}

/// A configured tree ready to carry one round's signals. Generic over the
/// configuration view: works on a schedule's `RoundConfigs` or a live
/// `ConfigArena` equally.
pub struct DataPhase<'a, L: ConfigLookup> {
    topo: &'a CstTopology,
    configs: &'a L,
}

impl<'a, L: ConfigLookup> DataPhase<'a, L> {
    /// Wrap the round's switch configurations.
    pub fn new(topo: &'a CstTopology, configs: &'a L) -> Self {
        DataPhase { topo, configs }
    }

    /// Drive `payload` from `source` and return where (and through how
    /// many switches) it arrives.
    pub fn transfer(&self, source: LeafId, payload: Bytes) -> Result<Delivery, CstError> {
        let mut node = self.topo.leaf_node(source);
        let mut entering: Side; // side of the *next* switch the signal enters on
        let mut hops = 0usize;
        // Climb until a switch turns the signal around, then descend.
        let max_hops = 2 * self.topo.height() as usize + 2;
        loop {
            let parent = node.parent().ok_or(CstError::ProtocolViolation {
                node,
                detail: "signal climbed past the root".into(),
            })?;
            entering = if node.is_left_child() { Side::Left } else { Side::Right };
            let cfg = self.configs.config_at(parent).ok_or(CstError::ProtocolViolation {
                node: parent,
                detail: "signal reached an unconfigured switch".into(),
            })?;
            let out = cfg.output_of(entering).ok_or(CstError::ProtocolViolation {
                node: parent,
                detail: format!("no connection from {entering}i"),
            })?;
            hops += 1;
            if hops > max_hops {
                return Err(CstError::ProtocolViolation {
                    node: parent,
                    detail: "signal exceeded the hop bound".into(),
                });
            }
            match out {
                Side::Parent => {
                    node = parent;
                }
                side => {
                    // Turnaround: descend through parent-input connections.
                    let mut cur = match side {
                        Side::Left => parent.left_child(),
                        Side::Right => parent.right_child(),
                        Side::Parent => unreachable!(),
                    };
                    while self.topo.is_internal(cur) {
                        let c = self.configs.config_at(cur).ok_or(CstError::ProtocolViolation {
                            node: cur,
                            detail: "descent reached an unconfigured switch".into(),
                        })?;
                        let to = c.output_of(Side::Parent).ok_or(CstError::ProtocolViolation {
                            node: cur,
                            detail: "descent switch does not forward p_i".into(),
                        })?;
                        hops += 1;
                        if hops > max_hops {
                            return Err(CstError::ProtocolViolation {
                                node: cur,
                                detail: "signal exceeded the hop bound".into(),
                            });
                        }
                        cur = match to {
                            Side::Left => cur.left_child(),
                            Side::Right => cur.right_child(),
                            Side::Parent => {
                                return Err(CstError::ProtocolViolation {
                                    node: cur,
                                    detail: "p_i -> p_o is illegal".into(),
                                })
                            }
                        };
                    }
                    let dest = self.topo.node_leaf(cur).expect("descended to a leaf");
                    return Ok(Delivery { source, dest, payload, hops });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_core::{Circuit, MergedRound, RoundConfigs};

    fn configured(topo: &CstTopology, pairs: &[(usize, usize)]) -> RoundConfigs {
        let circuits: Vec<_> = pairs
            .iter()
            .map(|&(s, d)| Circuit::right_oriented(topo, LeafId(s), LeafId(d)))
            .collect();
        MergedRound::build(topo, &circuits).unwrap().to_configs()
    }

    #[test]
    fn transfers_across_the_tree() {
        let topo = CstTopology::with_leaves(8);
        let cfgs = configured(&topo, &[(0, 7)]);
        let phase = DataPhase::new(&topo, &cfgs);
        let d = phase.transfer(LeafId(0), Bytes::from_static(b"hi")).unwrap();
        assert_eq!(d.dest, LeafId(7));
        assert_eq!(d.hops, 5); // 2 up + apex + 2 down
        assert_eq!(d.payload, Bytes::from_static(b"hi"));
    }

    #[test]
    fn parallel_transfers_dont_interfere() {
        let topo = CstTopology::with_leaves(8);
        let cfgs = configured(&topo, &[(0, 3), (4, 7)]);
        let phase = DataPhase::new(&topo, &cfgs);
        assert_eq!(phase.transfer(LeafId(0), Bytes::new()).unwrap().dest, LeafId(3));
        assert_eq!(phase.transfer(LeafId(4), Bytes::new()).unwrap().dest, LeafId(7));
    }

    #[test]
    fn unconfigured_switch_is_detected() {
        let topo = CstTopology::with_leaves(8);
        let cfgs = RoundConfigs::new();
        let phase = DataPhase::new(&topo, &cfgs);
        assert!(phase.transfer(LeafId(0), Bytes::new()).is_err());
    }

    #[test]
    fn hop_count_bounded_by_2logn() {
        let topo = CstTopology::with_leaves(64);
        let cfgs = configured(&topo, &[(0, 63)]);
        let phase = DataPhase::new(&topo, &cfgs);
        let d = phase.transfer(LeafId(0), Bytes::new()).unwrap();
        assert!(d.hops <= 2 * topo.height() as usize + 1);
    }
}
