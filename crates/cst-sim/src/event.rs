//! A small deterministic discrete-event core.
//!
//! Events are ordered by `(time, sequence)`: ties in simulated time are
//! broken by insertion order, which makes every simulation run fully
//! deterministic — a property the trace tests rely on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in cycles.
pub type Cycle = u64;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key(Cycle, u64);

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    seq: u64,
    now: Cycle,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `payload` at absolute time `at`. Panics if `at` lies in
    /// the past — a simulator bug.
    pub fn schedule(&mut self, at: Cycle, payload: T) {
        assert!(at >= self.now, "scheduling into the past ({at} < {})", self.now);
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(payload);
                i
            }
            None => {
                self.slots.push(Some(payload));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((Key(at, self.seq), slot)));
        self.seq += 1;
    }

    /// Schedule `payload` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the next event, advancing simulated time.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let Reverse((Key(t, _), slot)) = self.heap.pop()?;
        self.now = t;
        let payload = self.slots[slot].take().expect("slot occupied");
        self.free.push(slot);
        Some((t, payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "c");
        q.schedule(1, "a");
        q.schedule(3, "b");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((3, "b")));
        assert_eq!(q.now(), 3);
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(4, "x");
        q.pop();
        q.schedule_in(3, "y");
        assert_eq!(q.pop(), Some((7, "y")));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past() {
        let mut q = EventQueue::new();
        q.schedule(9, ());
        q.pop();
        q.schedule(2, ());
    }

    #[test]
    fn slot_reuse() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.schedule(round, round);
            assert_eq!(q.pop(), Some((round, round)));
        }
        // slots vector stayed tiny despite 100 events
        assert!(q.slots.len() <= 2);
    }
}
