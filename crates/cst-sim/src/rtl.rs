//! RTL-style machine model: every switch and PE is an independent clocked
//! object with its own mailboxes, control unit and data unit (the paper's
//! Fig. 3(a) split), stepped strictly cycle by cycle.
//!
//! The [`engine`](crate::engine) module drives the same per-switch logic
//! through a global event queue — convenient, but centrally orchestrated.
//! This module is the decentralized counterpart: at each tick every node
//! reads only its own mailbox and local state, and writes only messages to
//! its neighbors; no node touches global state. Equivalence of the two
//! (same schedules, same power, same cycle counts) is asserted in tests —
//! the strongest evidence that the CSA really is the *local* algorithm the
//! paper claims (only O(1) local words per switch, Theorem 5).

use cst_comm::{CommSet, Round, Schedule};
use cst_core::{ConfigArena, CstError, CstTopology, LeafId, NodeId, PeRole, PowerMeter};
use cst_padr::messages::{DownMsg, ReqKind, UpMsg};
use cst_padr::phase1::SwitchState;
use cst_padr::switch_logic;

/// One hardware switch: control state + held data-unit configuration.
#[derive(Clone, Debug, Default)]
struct HwSwitch {
    /// Phase-1 buffers.
    from_left: Option<UpMsg>,
    from_right: Option<UpMsg>,
    phase1_done: bool,
    /// The stored control information `C_S`.
    state: SwitchState,
    /// Incoming Phase-2 request for this tick.
    inbox: Option<DownMsg>,
}

/// One hardware PE.
#[derive(Clone, Debug, Default)]
struct HwPe {
    role: PeRole,
}

/// Outgoing Phase-1 messages produced in a tick (applied at the next
/// tick — models a one-cycle link latency). Phase-2 wires are the
/// switches' own mailboxes.
struct Out {
    to: NodeId,
    from_left: bool,
    msg: UpMsg,
}

/// The whole machine.
pub struct RtlMachine<'t> {
    topo: &'t CstTopology,
    switches: Vec<HwSwitch>,
    pes: Vec<HwPe>,
    meter: PowerMeter,
    cycle: u64,
    /// Dense per-round configuration scratch (host-side bookkeeping, not
    /// part of the modeled hardware), reused across rounds.
    arena: ConfigArena,
}

/// Result of one executed round (one control wave).
#[derive(Clone, Debug)]
pub struct RtlRound {
    /// Per-switch configurations required this round.
    pub round: Round,
    /// Leaves activated as sources this round.
    pub sources: Vec<LeafId>,
    /// Cycle at which the wave reached the leaves.
    pub completed_at: u64,
}

impl<'t> RtlMachine<'t> {
    /// Build the machine and latch the PEs' roles for `set`.
    pub fn new(topo: &'t CstTopology, set: &CommSet) -> RtlMachine<'t> {
        assert_eq!(topo.num_leaves(), set.num_leaves());
        let roles = set.roles();
        RtlMachine {
            topo,
            switches: vec![HwSwitch::default(); topo.node_table_len()],
            pes: roles.into_iter().map(|role| HwPe { role }).collect(),
            meter: PowerMeter::new(topo),
            cycle: 0,
            arena: ConfigArena::new(topo),
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The power meter (hold semantics, accumulated across everything the
    /// machine has executed).
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Run Phase 1 to completion: leaves announce at cycle 0, each level
    /// latches one cycle later. Returns the cycle at which the root
    /// finished (== tree height).
    pub fn run_phase1(&mut self) -> Result<u64, CstError> {
        // Tick 0: leaves emit.
        let mut wires: Vec<Out> = Vec::new();
        for leaf in self.topo.leaves() {
            let (s, d) = self.pes[leaf.0].role.announcement();
            let node = self.topo.leaf_node(leaf);
            wires.push(Out {
                to: node.parent().expect("leaf has parent"),
                from_left: node.is_left_child(),
                msg: UpMsg { sources: s, dests: d },
            });
        }
        while !wires.is_empty() {
            self.cycle += 1;
            // Deliver.
            for Out { to, from_left, msg } in wires.drain(..) {
                let hw = &mut self.switches[to.index()];
                if from_left {
                    hw.from_left = Some(msg);
                } else {
                    hw.from_right = Some(msg);
                }
            }
            // Step every switch locally.
            let mut next: Vec<Out> = Vec::new();
            for u in self.topo.switches_top_down() {
                let hw = &mut self.switches[u.index()];
                if hw.phase1_done {
                    continue;
                }
                if let (Some(l), Some(r)) = (hw.from_left, hw.from_right) {
                    let matched = l.sources.min(r.dests);
                    hw.state = SwitchState {
                        matched,
                        left_sources: l.sources - matched,
                        right_sources: r.sources,
                        left_dests: l.dests,
                        right_dests: r.dests - matched,
                    };
                    hw.phase1_done = true;
                    let up = UpMsg {
                        sources: l.sources - matched + r.sources,
                        dests: l.dests + r.dests - matched,
                    };
                    match u.parent() {
                        Some(p) => next.push(Out {
                            to: p,
                            from_left: u.is_left_child(),
                            msg: up,
                        }),
                        None => {
                            if up.sources != 0 || up.dests != 0 {
                                return Err(CstError::IncompleteSet {
                                    unmatched_sources: up.sources,
                                    unmatched_dests: up.dests,
                                });
                            }
                        }
                    }
                }
            }
            wires = next;
        }
        Ok(self.cycle)
    }

    /// Execute one Phase-2 round: inject `[null,null]` at the root and
    /// tick until the wave has passed the leaves. Every switch acts only
    /// on its own mailbox.
    pub fn run_round(&mut self) -> Result<RtlRound, CstError> {
        self.run_round_inner(None)
    }

    fn run_round_inner(
        &mut self,
        mut trace: Option<&mut cst_core::ProtocolTrace>,
    ) -> Result<RtlRound, CstError> {
        self.meter.begin_round();
        if let Some(t) = trace.as_deref_mut() {
            t.begin_round();
        }
        let mut sources = Vec::new();
        self.switches[NodeId::ROOT.index()].inbox = Some(DownMsg::NULL);
        let mut active = true;
        while active {
            self.cycle += 1;
            active = false;
            let mut deliveries: Vec<(NodeId, DownMsg)> = Vec::new();
            for u in self.topo.switches_top_down() {
                let Some(req) = self.switches[u.index()].inbox.take() else {
                    continue;
                };
                let result = switch_logic::step(&mut self.switches[u.index()].state, req)
                    .map_err(|e| CstError::ProtocolViolation {
                        node: u,
                        detail: e.to_string(),
                    })?;
                for &c in &result.connections {
                    self.arena.set(u, c).map_err(|e| CstError::ProtocolViolation {
                        node: u,
                        detail: e.to_string(),
                    })?;
                    self.meter.require(u, c);
                }
                if let Some(t) = trace.as_deref_mut() {
                    let mut config = cst_core::SwitchConfig::empty();
                    for &c in &result.connections {
                        config.force(c);
                    }
                    t.record(cst_core::SwitchEvent {
                        node: u,
                        req: req.into(),
                        config,
                        to_left: result.to_left.into(),
                        to_right: result.to_right.into(),
                    });
                }
                deliveries.push((u.left_child(), result.to_left));
                deliveries.push((u.right_child(), result.to_right));
            }
            for (node, msg) in deliveries {
                if let Some(leaf) = self.topo.node_leaf(node) {
                    match msg.kind {
                        ReqKind::Null => {}
                        ReqKind::S => sources.push(leaf),
                        ReqKind::D => {}
                        ReqKind::SD => {
                            return Err(CstError::ProtocolViolation {
                                node,
                                detail: "leaf received [s,d]".into(),
                            })
                        }
                    }
                } else {
                    self.switches[node.index()].inbox = Some(msg);
                    active = true;
                }
            }
        }
        let round = Round { comms: Vec::new(), configs: self.arena.take_round() };
        Ok(RtlRound { round, sources, completed_at: self.cycle })
    }

    /// Run the whole algorithm: Phase 1 then rounds until every
    /// communication in `set` has been performed (identified by tracing
    /// the configured circuits, exactly as the host scheduler does).
    pub fn run_to_completion(&mut self, set: &CommSet) -> Result<Schedule, CstError> {
        self.run_to_completion_inner(set, None)
    }

    /// [`RtlMachine::run_to_completion`] that additionally records every
    /// control message into `trace` for replay by the reference model
    /// (`cst-model`). The tick loop steps every switch whose mailbox holds
    /// a message — with the `[null,null]` fan-out that is every internal
    /// switch once per round, so the trace is complete by construction.
    pub fn run_to_completion_traced(
        &mut self,
        set: &CommSet,
        trace: &mut cst_core::ProtocolTrace,
    ) -> Result<Schedule, CstError> {
        self.run_to_completion_inner(set, Some(trace))
    }

    fn run_to_completion_inner(
        &mut self,
        set: &CommSet,
        mut trace: Option<&mut cst_core::ProtocolTrace>,
    ) -> Result<Schedule, CstError> {
        self.run_phase1()?;
        if let Some(t) = trace.as_deref_mut() {
            // Snapshot C_S before the rounds consume it, in the analyzer's
            // layout [M, S_L−M, D_L, S_R, D_R−M] (leaf entries zero).
            t.reset(self.topo.num_leaves());
            t.set_phase1(self.switches.iter().map(|hw| {
                let s = &hw.state;
                [s.matched, s.left_sources, s.left_dests, s.right_sources, s.right_dests]
            }));
        }
        let by_source: std::collections::HashMap<LeafId, (cst_comm::CommId, LeafId)> =
            set.iter().map(|(id, c)| (c.source, (id, c.dest))).collect();
        let mut schedule = Schedule::default();
        let mut remaining = set.len();
        let limit = set.len() + 1;
        while remaining > 0 {
            if schedule.rounds.len() >= limit {
                return Err(CstError::RoundOverrun { limit });
            }
            let mut rtl_round = self.run_round_inner(trace.as_deref_mut())?;
            for &src in &rtl_round.sources {
                let dest = cst_padr::trace_circuit(self.topo, &rtl_round.round.configs, src)?;
                let &(id, expected) = by_source.get(&src).ok_or(CstError::ProtocolViolation {
                    node: self.topo.leaf_node(src),
                    detail: "non-source PE activated".into(),
                })?;
                if dest != expected {
                    return Err(CstError::DeliveryMismatch { dest });
                }
                rtl_round.round.comms.push(id);
            }
            if rtl_round.round.comms.is_empty() {
                return Err(CstError::ProtocolViolation {
                    node: NodeId::ROOT,
                    detail: "RTL round made no progress".into(),
                });
            }
            remaining -= rtl_round.round.comms.len();
            rtl_round.round.comms.sort_unstable();
            schedule.rounds.push(rtl_round.round);
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_comm::examples;

    #[test]
    fn phase1_takes_height_cycles() {
        let topo = CstTopology::with_leaves(32);
        let set = examples::full_nest(32);
        let mut m = RtlMachine::new(&topo, &set);
        assert_eq!(m.run_phase1().unwrap(), 5);
    }

    #[test]
    fn rtl_matches_host_scheduler_exactly() {
        for set in [
            examples::paper_figure_2(),
            examples::paper_figure_3b(),
            examples::full_nest(16),
            examples::sibling_pairs(16),
        ] {
            let topo = CstTopology::with_leaves(16);
            let host = cst_padr::CsaScratch::new()
                .schedule(&topo, &set, &mut cst_comm::SchedulePool::new())
                .unwrap();
            let mut m = RtlMachine::new(&topo, &set);
            let schedule = m.run_to_completion(&set).unwrap();
            assert_eq!(schedule.num_rounds(), host.schedule.num_rounds());
            for (a, b) in schedule.rounds.iter().zip(&host.schedule.rounds) {
                assert_eq!(a.comms, b.comms);
                assert_eq!(a.configs, b.configs);
            }
            assert_eq!(m.meter().report(&topo), host.meter.report(&topo));
        }
    }

    #[test]
    fn rtl_matches_event_engine_timing() {
        let topo = CstTopology::with_leaves(16);
        let set = examples::paper_figure_2();
        let sim = crate::engine::simulate(&topo, &set, None).unwrap();
        let mut m = RtlMachine::new(&topo, &set);
        let schedule = m.run_to_completion(&set).unwrap();
        // The RTL machine counts control waves only (a wave traverses the
        // h switch levels in h ticks); the event engine adds one data
        // cycle per round on top.
        let h = u64::from(topo.height());
        let r = schedule.num_rounds() as u64;
        assert_eq!(m.cycle(), h + r * h);
        assert_eq!(sim.cycles, h + r * (h + 1));
    }

    #[test]
    fn rtl_rejects_incomplete_sets() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(5, 2)]);
        let mut m = RtlMachine::new(&topo, &set);
        assert!(m.run_phase1().is_err());
    }

    #[test]
    fn local_state_is_constant_words() {
        // The whole point: a hardware switch is five counters, two
        // phase-1 buffers, a flag and a mailbox — O(1) words.
        assert!(std::mem::size_of::<HwSwitch>() <= 64);
    }
}
