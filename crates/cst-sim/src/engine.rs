//! The cycle-level CST simulator.
//!
//! Executes the CSA as the hardware would: Phase 1 as an event-driven
//! upward wave (one cycle per tree level), then one downward control wave
//! plus one data-transfer cycle per round. The paper's timing model
//! (§2: configured paths deliver in "a single clock cycle") gives a
//! makespan of
//!
//! ```text
//! cycles = height           (phase 1)
//!        + w * (height + 1) (per round: control wave + data cycle)
//! ```
//!
//! which the simulator reproduces *by construction of its events*, not by
//! formula — the formula is asserted against the event-driven outcome in
//! tests.
//!
//! The simulator reuses the pure per-switch logic from `cst-padr`
//! (`switch_logic::step`, `phase1`) so the simulated hardware and the
//! host-side scheduler cannot drift apart.

use crate::data::{DataPhase, Delivery};
use crate::event::{Cycle, EventQueue};
use cst_comm::{CommSet, Round, Schedule};

use cst_core::{ConfigArena, CstError, CstTopology, LeafId, NodeId, PowerMeter};
use cst_padr::messages::{DownMsg, ReqKind, UpMsg};
use cst_padr::phase1::SwitchState;
use cst_padr::switch_logic;
use bytes::Bytes;

/// Events flowing through the simulated tree.
#[derive(Clone, Debug)]
enum Ev {
    /// A Phase-1 `C_U` message arriving at `to` from child `from`.
    Up { to: NodeId, from: NodeId, msg: UpMsg },
    /// A Phase-2 `C_D` message arriving at `to`.
    Down { to: NodeId, msg: DownMsg },
    /// The barrier marking the data-transfer cycle of the current round.
    DataCycle,
}

/// Per-round timing record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTiming {
    /// Cycle at which the root launched the round's control wave.
    pub control_start: Cycle,
    /// Cycle of the data transfer.
    pub data_cycle: Cycle,
}

/// Full simulation result.
#[derive(Debug, PartialEq, Eq)]
pub struct SimOutcome {
    /// The schedule executed (same shape the host scheduler produces).
    pub schedule: Schedule,
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Per-round timings.
    pub timings: Vec<RoundTiming>,
    /// Payload deliveries of every round, in round order.
    pub deliveries: Vec<Delivery>,
    /// Power accounting (identical model to the host scheduler).
    pub meter: PowerMeter,
}

/// The deterministic per-communication payloads (`payload-<id>-<src>-<dest>`,
/// indexed by comm id) that every execution path — [`simulate`],
/// [`simulate_schedule`] and compiled replay — uses when the caller
/// supplies none.
pub fn default_payloads(set: &CommSet) -> Vec<Bytes> {
    set.iter().map(|(id, c)| default_payload(id, c.source, c.dest)).collect()
}

/// One default payload; kept as the single definition of the text so the
/// compiled program's endpoint table regenerates byte-identical defaults.
pub(crate) fn default_payload(id: cst_comm::CommId, source: LeafId, dest: LeafId) -> Bytes {
    Bytes::from(format!("payload-{id}-{source}-{dest}"))
}

/// Simulate the CSA end to end on `topo` for `set`, transferring the given
/// per-communication payloads (indexed by comm id; defaults are generated
/// if `payloads` is `None`).
///
/// # Examples
///
/// ```
/// use cst_core::CstTopology;
/// use cst_comm::CommSet;
///
/// let topo = CstTopology::with_leaves(8);
/// let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]); // width 2
/// let sim = cst_sim::simulate(&topo, &set, None).unwrap();
/// assert_eq!(sim.schedule.num_rounds(), 2);
/// // makespan: phase 1 (height) + 2 rounds x (height + 1)
/// assert_eq!(sim.cycles, 3 + 2 * 4);
/// assert_eq!(sim.deliveries.len(), 2); // every payload arrived
/// ```
pub fn simulate(
    topo: &CstTopology,
    set: &CommSet,
    payloads: Option<Vec<Bytes>>,
) -> Result<SimOutcome, CstError> {
    simulate_inner(topo, set, payloads, None)
}

/// [`simulate`] that additionally records every control message into
/// `trace` for replay by the reference model (`cst-model`). The event wave
/// already steps every switch each round (the simulator never prunes), so
/// the trace is complete by construction.
pub fn simulate_traced(
    topo: &CstTopology,
    set: &CommSet,
    payloads: Option<Vec<Bytes>>,
    trace: &mut cst_core::ProtocolTrace,
) -> Result<SimOutcome, CstError> {
    simulate_inner(topo, set, payloads, Some(trace))
}

fn simulate_inner(
    topo: &CstTopology,
    set: &CommSet,
    payloads: Option<Vec<Bytes>>,
    mut trace: Option<&mut cst_core::ProtocolTrace>,
) -> Result<SimOutcome, CstError> {
    set.require_right_oriented()?;
    set.require_well_nested()?;

    let payloads = payloads.unwrap_or_else(|| default_payloads(set));
    assert_eq!(payloads.len(), set.len(), "one payload per communication");

    let n = topo.node_table_len();
    let mut q: EventQueue<Ev> = EventQueue::new();

    // ---- Phase 1 as an upward event wave -------------------------------
    let roles = set.roles();
    for leaf in topo.leaves() {
        let (s, d) = roles[leaf.0].announcement();
        let node = topo.leaf_node(leaf);
        q.schedule(1, Ev::Up {
            to: node.parent().expect("leaf has parent"),
            from: node,
            msg: UpMsg { sources: s, dests: d },
        });
    }
    let mut pending_up: Vec<(Option<UpMsg>, Option<UpMsg>)> = vec![(None, None); n];
    let mut states: Vec<SwitchState> = vec![SwitchState::default(); n];
    let mut phase1_done_at: Cycle = 0;
    while let Some((t, ev)) = q.pop() {
        let Ev::Up { to, from, msg } = ev else { unreachable!("phase 1 only") };
        let slot = &mut pending_up[to.index()];
        if from.is_left_child() {
            slot.0 = Some(msg);
        } else {
            slot.1 = Some(msg);
        }
        if let (Some(l), Some(r)) = (slot.0, slot.1) {
            let matched = l.sources.min(r.dests);
            states[to.index()] = SwitchState {
                matched,
                left_sources: l.sources - matched,
                right_sources: r.sources,
                left_dests: l.dests,
                right_dests: r.dests - matched,
            };
            let up = UpMsg {
                sources: l.sources - matched + r.sources,
                dests: l.dests + r.dests - matched,
            };
            match to.parent() {
                Some(p) => q.schedule(t + 1, Ev::Up { to: p, from: to, msg: up }),
                None => {
                    if up.sources != 0 || up.dests != 0 {
                        return Err(CstError::IncompleteSet {
                            unmatched_sources: up.sources,
                            unmatched_dests: up.dests,
                        });
                    }
                    phase1_done_at = t;
                }
            }
        }
    }
    debug_assert_eq!(phase1_done_at, Cycle::from(topo.height()));

    if let Some(t) = trace.as_deref_mut() {
        // Snapshot C_S before the rounds consume it, in the analyzer's
        // layout [M, S_L−M, D_L, S_R, D_R−M] (leaf entries zero).
        t.reset(topo.num_leaves());
        t.set_phase1(states.iter().map(|s| {
            [s.matched, s.left_sources, s.left_dests, s.right_sources, s.right_dests]
        }));
    }

    // ---- Phase 2: one control wave + data cycle per round ---------------
    let pairing: std::collections::HashMap<LeafId, (cst_comm::CommId, LeafId)> =
        set.iter().map(|(id, c)| (c.source, (id, c.dest))).collect();
    let mut meter = PowerMeter::new(topo);
    let mut schedule = Schedule::default();
    let mut timings = Vec::new();
    let mut deliveries = Vec::new();
    let mut remaining = set.len();
    let mut now = phase1_done_at;
    let height = Cycle::from(topo.height());
    let round_limit = set.len() + 1;
    // Dense per-round configuration scratch, reused across rounds.
    let mut arena = ConfigArena::new(topo);

    while remaining > 0 {
        if schedule.rounds.len() >= round_limit {
            return Err(CstError::RoundOverrun { limit: round_limit });
        }
        let control_start = now;
        meter.begin_round();
        if let Some(t) = trace.as_deref_mut() {
            t.begin_round();
        }
        let mut comms: Vec<cst_comm::CommId> = Vec::new();
        let mut active_sources: Vec<LeafId> = Vec::new();
        let mut active_dests: Vec<LeafId> = Vec::new();

        q.schedule(control_start, Ev::Down { to: NodeId::ROOT, msg: DownMsg::NULL });
        q.schedule(control_start + height + 1, Ev::DataCycle);
        let mut data_cycle = control_start + height + 1;
        while let Some((t, ev)) = q.pop() {
            match ev {
                Ev::Down { to, msg } => {
                    if let Some(leaf) = topo.node_leaf(to) {
                        match msg.kind {
                            ReqKind::Null => {}
                            ReqKind::S => active_sources.push(leaf),
                            ReqKind::D => active_dests.push(leaf),
                            ReqKind::SD => {
                                return Err(CstError::ProtocolViolation {
                                    node: to,
                                    detail: "leaf received [s,d]".into(),
                                })
                            }
                        }
                        continue;
                    }
                    let result = switch_logic::step(&mut states[to.index()], msg)
                        .map_err(|e| CstError::ProtocolViolation {
                            node: to,
                            detail: e.to_string(),
                        })?;
                    for &c in &result.connections {
                        arena.set(to, c).map_err(|e| CstError::ProtocolViolation {
                            node: to,
                            detail: e.to_string(),
                        })?;
                        meter.require(to, c);
                    }
                    if let Some(tr) = trace.as_deref_mut() {
                        let mut config = cst_core::SwitchConfig::empty();
                        for &c in &result.connections {
                            config.force(c);
                        }
                        tr.record(cst_core::SwitchEvent {
                            node: to,
                            req: msg.into(),
                            config,
                            to_left: result.to_left.into(),
                            to_right: result.to_right.into(),
                        });
                    }
                    q.schedule(t + 1, Ev::Down { to: to.left_child(), msg: result.to_left });
                    q.schedule(t + 1, Ev::Down { to: to.right_child(), msg: result.to_right });
                }
                Ev::DataCycle => {
                    data_cycle = t;
                    break;
                }
                Ev::Up { .. } => unreachable!("phase 1 finished"),
            }
        }

        // Data transfer: propagate payloads through the configured circuits
        // (straight off the arena, before extraction).
        let phase = DataPhase::new(topo, &arena);
        for &src in &active_sources {
            let (id, expected) = *pairing.get(&src).ok_or(CstError::ProtocolViolation {
                node: topo.leaf_node(src),
                detail: "non-source PE activated".into(),
            })?;
            let delivery = phase.transfer(src, payloads[id.0].clone())?;
            if delivery.dest != expected {
                return Err(CstError::DeliveryMismatch { dest: delivery.dest });
            }
            if !active_dests.contains(&delivery.dest) {
                return Err(CstError::ProtocolViolation {
                    node: topo.leaf_node(delivery.dest),
                    detail: "destination PE not activated for read".into(),
                });
            }
            deliveries.push(delivery);
            comms.push(id);
        }
        if comms.is_empty() {
            return Err(CstError::ProtocolViolation {
                node: NodeId::ROOT,
                detail: "simulated round made no progress".into(),
            });
        }
        remaining -= comms.len();
        comms.sort_unstable();
        schedule.rounds.push(Round { comms, configs: arena.take_round() });
        timings.push(RoundTiming { control_start, data_cycle });
        now = data_cycle;
    }

    Ok(SimOutcome { schedule, cycles: now, timings, deliveries, meter })
}

/// Execute an externally-computed [`Schedule`] (e.g. a baseline's) on the
/// simulator: per round, a configuration wave (`height + 1` cycles, the
/// same cost as the CSA's control wave) followed by one data cycle; every
/// payload is driven through the configured circuits and checked.
///
/// The ID-assignment prologue of an ID-based scheduler is charged like
/// Phase 1 (`height` cycles), keeping makespans comparable with
/// [`simulate`].
pub fn simulate_schedule(
    topo: &CstTopology,
    set: &CommSet,
    schedule: &Schedule,
    payloads: Option<Vec<Bytes>>,
) -> Result<SimOutcome, CstError> {
    let payloads = payloads.unwrap_or_else(|| default_payloads(set));
    assert_eq!(payloads.len(), set.len(), "one payload per communication");
    let height = Cycle::from(topo.height());
    let mut meter = PowerMeter::new(topo);
    let mut timings = Vec::with_capacity(schedule.rounds.len());
    let mut deliveries = Vec::new();
    let mut now = height; // prologue (ID assignment / phase 1 analogue)
    for round in &schedule.rounds {
        let control_start = now;
        meter.begin_round();
        for (node, conn) in round.requirements() {
            meter.require(node, conn);
        }
        let data_cycle = control_start + height + 1;
        let phase = DataPhase::new(topo, &round.configs);
        for &id in &round.comms {
            let comm = set.get(id).ok_or(CstError::ProtocolViolation {
                node: NodeId::ROOT,
                detail: format!("unknown comm id {id}"),
            })?;
            let delivery = phase.transfer(comm.source, payloads[id.0].clone())?;
            if delivery.dest != comm.dest {
                return Err(CstError::DeliveryMismatch { dest: delivery.dest });
            }
            deliveries.push(delivery);
        }
        timings.push(RoundTiming { control_start, data_cycle });
        now = data_cycle;
    }
    Ok(SimOutcome {
        schedule: schedule.clone(),
        cycles: now,
        timings,
        deliveries,
        meter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_comm::examples;

    #[test]
    fn simulation_matches_host_scheduler() {
        let topo = CstTopology::with_leaves(16);
        let set = examples::paper_figure_2();
        let sim = simulate(&topo, &set, None).unwrap();
        let host = cst_padr::CsaScratch::new()
            .schedule(&topo, &set, &mut cst_comm::SchedulePool::new())
            .unwrap();
        assert_eq!(sim.schedule.num_rounds(), host.schedule.num_rounds());
        for (a, b) in sim.schedule.rounds.iter().zip(&host.schedule.rounds) {
            assert_eq!(a.comms, b.comms);
            assert_eq!(a.configs, b.configs);
        }
        // identical power profile
        assert_eq!(sim.meter.report(&topo), host.meter.report(&topo));
    }

    #[test]
    fn makespan_formula_holds() {
        let topo = CstTopology::with_leaves(32);
        let set = examples::full_nest(32); // width 16
        let sim = simulate(&topo, &set, None).unwrap();
        let h = Cycle::from(topo.height());
        assert_eq!(sim.schedule.num_rounds(), 16);
        assert_eq!(sim.cycles, h + 16 * (h + 1));
        // per-round spacing is exactly height+1 cycles
        for w in sim.timings.windows(2) {
            assert_eq!(w[1].control_start - w[0].control_start, h + 1);
        }
    }

    #[test]
    fn payloads_arrive_intact() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]);
        let payloads: Vec<Bytes> =
            (0..3).map(|i| Bytes::from(vec![i as u8; 64])).collect();
        let sim = simulate(&topo, &set, Some(payloads.clone())).unwrap();
        assert_eq!(sim.deliveries.len(), 3);
        for d in &sim.deliveries {
            let id = set
                .iter()
                .find(|(_, c)| c.dest == d.dest)
                .map(|(id, _)| id)
                .unwrap();
            assert_eq!(d.payload, payloads[id.0]);
        }
    }

    #[test]
    fn incomplete_set_detected_by_simulated_phase1() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(5, 2)]);
        assert!(matches!(
            simulate(&topo, &set, None),
            Err(CstError::NotRightOriented { .. })
        ));
    }

    #[test]
    fn replaying_a_baseline_schedule_delivers_everything() {
        let topo = CstTopology::with_leaves(16);
        let set = examples::paper_figure_2();
        let mut merged = cst_core::MergedRound::new(&topo);
        let roy =
            cst_baseline::roy::run(&topo, &set, cst_baseline::LevelOrder::InnermostFirst, &mut merged)
                .unwrap();
        let sim = simulate_schedule(&topo, &set, &roy.schedule, None).unwrap();
        assert_eq!(sim.deliveries.len(), set.len());
        // same makespan formula as the CSA run with the same round count
        let h = Cycle::from(topo.height());
        assert_eq!(sim.cycles, h + roy.schedule.num_rounds() as u64 * (h + 1));
    }

    #[test]
    fn replaying_a_merged_mixed_schedule_works() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (15, 8), (14, 9)]);
        let merged = cst_padr::schedule_general_merged_in(
            &mut cst_padr::CsaScratch::new(),
            &mut cst_comm::SchedulePool::new(),
            &topo,
            &set,
        )
        .unwrap();
        assert_eq!(merged.num_rounds(), 2, "halves interleave");
        let sim = simulate_schedule(&topo, &set, &merged, None).unwrap();
        assert_eq!(sim.deliveries.len(), 4);
        for d in &sim.deliveries {
            let comm = set.iter().find(|(_, c)| c.source == d.source).unwrap().1;
            assert_eq!(d.dest, comm.dest);
        }
    }

    #[test]
    fn empty_set_takes_only_phase1() {
        let topo = CstTopology::with_leaves(16);
        let sim = simulate(&topo, &CommSet::empty(16), None).unwrap();
        assert_eq!(sim.schedule.num_rounds(), 0);
        assert_eq!(sim.cycles, Cycle::from(topo.height()));
    }
}
