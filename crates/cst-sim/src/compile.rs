//! Compile-and-replay: lower a verified [`Schedule`] into a flat,
//! straight-line program and execute it without the interpreter.
//!
//! [`simulate_schedule`](crate::simulate_schedule) pays generic-interpreter
//! cost on every run: it re-meters every requirement of every round against
//! stamp tables, resolves each hop of each circuit through a binary search
//! over the round's sparse `RoundConfigs`, and clones the schedule and a
//! fresh `PowerMeter` into the outcome. None of that depends on the
//! payloads — for a fixed schedule it is the same work every time.
//!
//! [`CompiledProgram`] does that work once, at compile time:
//!
//! * **Flat switch state.** All switch state lives in one `Vec`-backed
//!   buffer indexed by the absolute heap offset `NodeId::index()` — no
//!   `NodeId`-keyed maps, no per-hop binary search. The CST is a complete
//!   binary tree, so the offsets of a node's parent (`i / 2`) and children
//!   (`2i`, `2i + 1`) are arithmetic on the offset itself.
//! * **Config-delta instruction streams.** Under hold semantics a round
//!   only has to *change* the connections that differ from what switches
//!   already hold — exactly the transitions Theorem 8 bounds at O(1) per
//!   switch for CSA schedules. The compiler diffs consecutive held states
//!   and emits one [`DeltaInstr`] per newly-established connection;
//!   replaying a round is a linear sweep over its instruction span.
//! * **Flat delivery table.** Each round's transfers are lowered to
//!   [`DeliveryPlan`] records (comm id, endpoints, expected hop count).
//!   Replay still drives every signal through the flat state — it is an
//!   execution, not a lookup — and cross-checks the walk against the plan.
//! * **Precomputed accounting.** The power meter is a pure function of the
//!   requirement sequence, so the compiler runs it once and replay copies
//!   the finished meter out (an allocation-free `clone_from` on the warm
//!   path). Timings follow the paper's makespan formula
//!   `cycles = height + rounds * (height + 1)`.
//!
//! The replayed [`SimOutcome`] is byte-for-byte identical to the
//! event-driven interpreter's, which the differential tests in
//! `tests/compiled_replay.rs` pin across routers, payloads and fault masks.
//! Degraded (fault-masked) schedules need no special casing: half-duplex
//! split rounds are just more rounds, hence more instructions.

use crate::data::Delivery;
use crate::engine::{default_payload, RoundTiming, SimOutcome};
use crate::event::Cycle;
use bytes::Bytes;
use cst_comm::{CommId, CommSet, Schedule};
use cst_core::{CstError, CstTopology, LeafId, NodeId, PowerMeter, Side, SwitchConfig};

/// One lowered reconfiguration: `force(conn)` on the switch whose state
/// lives at absolute offset `switch` in the flat buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaInstr {
    /// Absolute offset into the flat switch-state buffer (`NodeId::index()`).
    pub switch: u32,
    /// The connection to establish (evicting whatever uses its ports).
    pub conn: cst_core::Connection,
}

/// One lowered transfer: drive `source`'s payload through the configured
/// circuits and check it arrives at `dest` in exactly `hops` switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DeliveryPlan {
    comm: CommId,
    source: LeafId,
    dest: LeafId,
    hops: u32,
}

/// A verified schedule lowered to straight-line form: per-round delta
/// instruction spans over a flat switch-state buffer, a flat delivery
/// table, and the precomputed power meter. Compile once with
/// [`CompiledProgram::compile`], then [`replay`](CompiledProgram::replay)
/// any number of times; [`recompile`](CompiledProgram::recompile) retargets
/// a pooled program without dropping its buffers.
#[derive(Debug)]
pub struct CompiledProgram {
    num_leaves: usize,
    height: u32,
    state_len: usize,
    /// Concatenated per-round delta streams; round `r` owns
    /// `instrs[instr_ends[r-1]..instr_ends[r]]`.
    instrs: Vec<DeltaInstr>,
    instr_ends: Vec<u32>,
    /// Concatenated per-round delivery plans, same span encoding.
    plans: Vec<DeliveryPlan>,
    plan_ends: Vec<u32>,
    /// `(source, dest)` per comm id of the compiled set — regenerates
    /// default payloads and validates caller-supplied payload counts.
    endpoints: Vec<(LeafId, LeafId)>,
    /// Final accounting, precomputed: the meter is a pure function of the
    /// requirement sequence, so replay copies instead of re-metering.
    meter: PowerMeter,
    /// Owned copy of the source schedule for outcome assembly.
    schedule: Schedule,
}

/// Reusable replay buffers: the flat switch-state vector plus shells for
/// every field of the produced [`SimOutcome`]. Feed outcomes back with
/// [`recycle`](ReplayScratch::recycle) and the warm path
/// ([`CompiledProgram::replay_with`]) performs zero heap allocations.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    state: Vec<SwitchConfig>,
    meter: Option<PowerMeter>,
    timings: Vec<RoundTiming>,
    deliveries: Vec<Delivery>,
    schedule: Schedule,
}

impl ReplayScratch {
    /// Empty scratch; buffers are sized by the first (cold) replay.
    pub fn new() -> Self {
        ReplayScratch::default()
    }

    /// Return a replayed outcome's buffers for reuse. The shells keep
    /// their shape — the next same-program replay overwrites them without
    /// touching the heap.
    pub fn recycle(&mut self, out: SimOutcome) {
        self.meter = Some(out.meter);
        self.timings = out.timings;
        self.deliveries = out.deliveries;
        self.schedule = out.schedule;
    }
}

impl CompiledProgram {
    /// Lower `schedule` (as routed for `set` on `topo`) into straight-line
    /// form. Fails with the interpreter's error on malformed schedules —
    /// unknown comm ids, broken circuits, wrong destinations.
    pub fn compile(
        topo: &CstTopology,
        set: &CommSet,
        schedule: &Schedule,
    ) -> Result<CompiledProgram, CstError> {
        let mut prog = CompiledProgram {
            num_leaves: topo.num_leaves(),
            height: topo.height(),
            state_len: topo.node_table_len(),
            instrs: Vec::new(),
            instr_ends: Vec::new(),
            plans: Vec::new(),
            plan_ends: Vec::new(),
            endpoints: Vec::new(),
            meter: PowerMeter::new(topo),
            schedule: Schedule::default(),
        };
        prog.lower(topo, set, schedule)?;
        Ok(prog)
    }

    /// Re-lower a (possibly different) schedule into this program, reusing
    /// every buffer. A pool of spare programs plus `recompile` is to
    /// compilation what `SchedulePool` is to routing.
    pub fn recompile(
        &mut self,
        topo: &CstTopology,
        set: &CommSet,
        schedule: &Schedule,
    ) -> Result<(), CstError> {
        self.num_leaves = topo.num_leaves();
        self.height = topo.height();
        self.state_len = topo.node_table_len();
        self.instrs.clear();
        self.instr_ends.clear();
        self.plans.clear();
        self.plan_ends.clear();
        self.endpoints.clear();
        self.meter.reset(topo);
        self.lower(topo, set, schedule)
    }

    fn lower(
        &mut self,
        topo: &CstTopology,
        set: &CommSet,
        schedule: &Schedule,
    ) -> Result<(), CstError> {
        for (_, c) in set.iter() {
            self.endpoints.push((c.source, c.dest));
        }
        for round in &schedule.rounds {
            // The meter's held state *is* the hold-semantics switch state:
            // `require` returns true exactly when the connection was not
            // already held, i.e. exactly when replay must issue a `force`.
            self.meter.begin_round();
            for (node, conn) in round.requirements() {
                if self.meter.require(node, conn) {
                    self.instrs.push(DeltaInstr { switch: node.index() as u32, conn });
                }
            }
            self.instr_ends.push(self.instrs.len() as u32);
            // Lower the round's transfers, walking each circuit once to
            // validate it and pin its hop count.
            let phase = crate::data::DataPhase::new(topo, &round.configs);
            for &id in &round.comms {
                let comm = set.get(id).ok_or_else(|| CstError::ProtocolViolation {
                    node: NodeId::ROOT,
                    detail: format!("unknown comm id {id}"),
                })?;
                let d = phase.transfer(comm.source, Bytes::new())?;
                if d.dest != comm.dest {
                    return Err(CstError::DeliveryMismatch { dest: d.dest });
                }
                self.plans.push(DeliveryPlan {
                    comm: id,
                    source: comm.source,
                    dest: comm.dest,
                    hops: d.hops as u32,
                });
            }
            self.plan_ends.push(self.plans.len() as u32);
        }
        self.schedule.clone_from(schedule);
        Ok(())
    }

    /// Rounds in the compiled schedule.
    pub fn num_rounds(&self) -> usize {
        self.instr_ends.len()
    }

    /// Total delta instructions — the hold-semantics reconfiguration count
    /// Theorem 8 bounds, and exactly the meter's total power units.
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// The schedule this program was lowered from.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The precomputed power accounting replay copies out.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Default payloads for the compiled set, byte-identical to the
    /// interpreter's (`payload-<id>-<src>-<dest>`).
    pub fn default_payloads(&self) -> Vec<Bytes> {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| default_payload(CommId(i), s, d))
            .collect()
    }

    /// Replay with fresh buffers; `None` payloads regenerate the
    /// interpreter's defaults. Convenience wrapper over
    /// [`replay_with`](CompiledProgram::replay_with).
    pub fn replay(&self, payloads: Option<Vec<Bytes>>) -> Result<SimOutcome, CstError> {
        let payloads = payloads.unwrap_or_else(|| self.default_payloads());
        self.replay_with(&mut ReplayScratch::new(), &payloads)
    }

    /// Execute the program: per round, a linear sweep over its delta
    /// instructions followed by driving every planned transfer through the
    /// flat switch state. Allocation-free once `scratch` is warm.
    pub fn replay_with(
        &self,
        scratch: &mut ReplayScratch,
        payloads: &[Bytes],
    ) -> Result<SimOutcome, CstError> {
        assert_eq!(payloads.len(), self.endpoints.len(), "one payload per communication");
        // Reset only the switches this program touches: every switch that
        // is ever configured received at least one instruction when first
        // configured, so clearing per instruction covers them all.
        if scratch.state.len() < self.state_len {
            scratch.state.resize(self.state_len, SwitchConfig::empty());
        }
        for ins in &self.instrs {
            scratch.state[ins.switch as usize].clear();
        }

        let mut timings = std::mem::take(&mut scratch.timings);
        timings.clear();
        let mut deliveries = std::mem::take(&mut scratch.deliveries);
        deliveries.clear();

        let height = Cycle::from(self.height);
        let mut now = height; // prologue, as in the interpreter
        let (mut instr_lo, mut plan_lo) = (0usize, 0usize);
        for r in 0..self.instr_ends.len() {
            let control_start = now;
            let data_cycle = control_start + height + 1;
            let instr_hi = self.instr_ends[r] as usize;
            for ins in &self.instrs[instr_lo..instr_hi] {
                scratch.state[ins.switch as usize].force(ins.conn);
            }
            instr_lo = instr_hi;
            let plan_hi = self.plan_ends[r] as usize;
            for plan in &self.plans[plan_lo..plan_hi] {
                let d = walk_flat(
                    &scratch.state,
                    self.num_leaves,
                    self.height,
                    plan.source,
                    payloads[plan.comm.0].clone(),
                )?;
                if d.dest != plan.dest || d.hops != plan.hops as usize {
                    return Err(CstError::DeliveryMismatch { dest: d.dest });
                }
                deliveries.push(d);
            }
            plan_lo = plan_hi;
            timings.push(RoundTiming { control_start, data_cycle });
            now = data_cycle;
        }

        let meter = match scratch.meter.take() {
            Some(mut m) => {
                m.clone_from(&self.meter);
                m
            }
            None => self.meter.clone(),
        };
        let mut schedule = std::mem::take(&mut scratch.schedule);
        schedule.clone_from(&self.schedule);
        Ok(SimOutcome { schedule, cycles: now, timings, deliveries, meter })
    }
}

/// The interpreter's circuit walk, specialized to the flat buffer: every
/// configuration lookup is one array index on the absolute offset instead
/// of a binary search over sparse round configs. The held state may carry
/// connections retained from earlier rounds, but a verified round forces
/// every connection its circuits use, so the walk follows exactly the
/// round's circuits (the caller cross-checks dest and hops regardless).
fn walk_flat(
    state: &[SwitchConfig],
    num_leaves: usize,
    height: u32,
    source: LeafId,
    payload: Bytes,
) -> Result<Delivery, CstError> {
    let mut node = num_leaves + source.0; // absolute offset of the leaf
    let mut hops = 0usize;
    let max_hops = 2 * height as usize + 2;
    loop {
        let parent = node / 2;
        if parent == 0 {
            return Err(CstError::ProtocolViolation {
                node: NodeId(node),
                detail: "signal climbed past the root".into(),
            });
        }
        let entering = if node.is_multiple_of(2) { Side::Left } else { Side::Right };
        let out = state[parent].output_of(entering).ok_or_else(|| CstError::ProtocolViolation {
            node: NodeId(parent),
            detail: format!("no connection from {entering}i"),
        })?;
        hops += 1;
        if hops > max_hops {
            return Err(CstError::ProtocolViolation {
                node: NodeId(parent),
                detail: "signal exceeded the hop bound".into(),
            });
        }
        match out {
            Side::Parent => node = parent,
            side => {
                // Turnaround: descend through parent-input connections.
                let mut cur = 2 * parent + side.index(); // left: 2p, right: 2p+1
                while cur < num_leaves {
                    let to = state[cur].output_of(Side::Parent).ok_or_else(|| {
                        CstError::ProtocolViolation {
                            node: NodeId(cur),
                            detail: "descent switch does not forward p_i".into(),
                        }
                    })?;
                    hops += 1;
                    if hops > max_hops {
                        return Err(CstError::ProtocolViolation {
                            node: NodeId(cur),
                            detail: "signal exceeded the hop bound".into(),
                        });
                    }
                    cur = match to {
                        Side::Left => 2 * cur,
                        Side::Right => 2 * cur + 1,
                        Side::Parent => {
                            return Err(CstError::ProtocolViolation {
                                node: NodeId(cur),
                                detail: "p_i -> p_o is illegal".into(),
                            })
                        }
                    };
                }
                let dest = LeafId(cur - num_leaves);
                return Ok(Delivery { source, dest, payload, hops });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{default_payloads, simulate_schedule};
    use cst_comm::examples;

    fn csa_schedule(topo: &CstTopology, set: &CommSet) -> Schedule {
        cst_padr::CsaScratch::new()
            .schedule(topo, set, &mut cst_comm::SchedulePool::new())
            .unwrap()
            .schedule
    }

    fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome) {
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.meter, b.meter);
    }

    #[test]
    fn replay_matches_interpreter_on_paper_example() {
        let topo = CstTopology::with_leaves(16);
        let set = examples::paper_figure_2();
        let schedule = csa_schedule(&topo, &set);
        let interp = simulate_schedule(&topo, &set, &schedule, None).unwrap();
        let prog = CompiledProgram::compile(&topo, &set, &schedule).unwrap();
        let replayed = prog.replay(None).unwrap();
        assert_outcomes_identical(&interp, &replayed);
    }

    #[test]
    fn instruction_count_is_total_power_units() {
        // The delta stream contains exactly the hold-semantics
        // reconfigurations — Theorem 8's bounded quantity.
        let topo = CstTopology::with_leaves(16);
        let set = examples::paper_figure_2();
        let schedule = csa_schedule(&topo, &set);
        let prog = CompiledProgram::compile(&topo, &set, &schedule).unwrap();
        let report = prog.meter().report(&topo);
        assert_eq!(prog.num_instrs() as u64, report.total_units);
        assert!(prog.num_instrs() > 0);
    }

    #[test]
    fn custom_payloads_flow_through() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]);
        let schedule = csa_schedule(&topo, &set);
        let payloads: Vec<Bytes> = (0..3).map(|i| Bytes::from(vec![i as u8; 32])).collect();
        let interp =
            simulate_schedule(&topo, &set, &schedule, Some(payloads.clone())).unwrap();
        let prog = CompiledProgram::compile(&topo, &set, &schedule).unwrap();
        let replayed = prog.replay(Some(payloads)).unwrap();
        assert_outcomes_identical(&interp, &replayed);
    }

    #[test]
    fn warm_scratch_replay_is_identical_and_reusable() {
        let topo = CstTopology::with_leaves(16);
        let set = examples::paper_figure_2();
        let schedule = csa_schedule(&topo, &set);
        let prog = CompiledProgram::compile(&topo, &set, &schedule).unwrap();
        let payloads = default_payloads(&set);
        let mut scratch = ReplayScratch::new();
        let first = prog.replay_with(&mut scratch, &payloads).unwrap();
        let interp = simulate_schedule(&topo, &set, &schedule, None).unwrap();
        assert_outcomes_identical(&interp, &first);
        scratch.recycle(first);
        for _ in 0..3 {
            let again = prog.replay_with(&mut scratch, &payloads).unwrap();
            assert_outcomes_identical(&interp, &again);
            scratch.recycle(again);
        }
    }

    #[test]
    fn recompile_retargets_a_pooled_program() {
        let topo = CstTopology::with_leaves(16);
        let set_a = examples::paper_figure_2();
        let set_b = CommSet::from_pairs(16, &[(0, 15), (1, 14), (2, 13)]);
        let sched_a = csa_schedule(&topo, &set_a);
        let sched_b = csa_schedule(&topo, &set_b);
        let mut prog = CompiledProgram::compile(&topo, &set_a, &sched_a).unwrap();
        prog.recompile(&topo, &set_b, &sched_b).unwrap();
        let interp = simulate_schedule(&topo, &set_b, &sched_b, None).unwrap();
        assert_outcomes_identical(&interp, &prog.replay(None).unwrap());
        // And back: no state leaks between targets.
        prog.recompile(&topo, &set_a, &sched_a).unwrap();
        let interp = simulate_schedule(&topo, &set_a, &sched_a, None).unwrap();
        assert_outcomes_identical(&interp, &prog.replay(None).unwrap());
    }

    #[test]
    fn empty_schedule_replays_to_prologue_only() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::empty(8);
        let schedule = Schedule::default();
        let prog = CompiledProgram::compile(&topo, &set, &schedule).unwrap();
        let out = prog.replay(None).unwrap();
        assert_eq!(out.cycles, Cycle::from(topo.height()));
        assert!(out.deliveries.is_empty());
        assert!(out.timings.is_empty());
    }

    #[test]
    fn compile_rejects_unknown_comm_ids() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7)]);
        let mut schedule = csa_schedule(&topo, &set);
        schedule.rounds[0].comms.push(CommId(99));
        assert!(matches!(
            CompiledProgram::compile(&topo, &set, &schedule),
            Err(CstError::ProtocolViolation { .. })
        ));
    }
}
