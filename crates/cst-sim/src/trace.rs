//! Serializable execution traces for debugging and for the examples'
//! human-readable output.

use crate::engine::SimOutcome;
use cst_comm::CommSet;
use cst_core::CstTopology;
use serde::{Deserialize, Serialize};

/// One switch's setting in one round, stringified for portability.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    pub switch: usize,
    pub config: String,
}

/// One round of the trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRound {
    pub round: usize,
    pub control_start: u64,
    pub data_cycle: u64,
    /// `(source, dest)` pairs performed this round.
    pub transfers: Vec<(usize, usize)>,
    pub switch_configs: Vec<TraceConfig>,
}

/// A complete execution trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    pub num_leaves: usize,
    pub num_comms: usize,
    pub rounds: Vec<TraceRound>,
    pub total_cycles: u64,
}

impl Trace {
    /// Build a trace from a simulation outcome.
    pub fn from_sim(topo: &CstTopology, set: &CommSet, sim: &SimOutcome) -> Trace {
        let rounds = sim
            .schedule
            .rounds
            .iter()
            .zip(&sim.timings)
            .enumerate()
            .map(|(i, (round, timing))| TraceRound {
                round: i,
                control_start: timing.control_start,
                data_cycle: timing.data_cycle,
                transfers: round
                    .comms
                    .iter()
                    .map(|&id| {
                        let c = &set.comms()[id.0];
                        (c.source.0, c.dest.0)
                    })
                    .collect(),
                switch_configs: round
                    .configs
                    .iter()
                    .map(|(n, cfg)| TraceConfig { switch: n.index(), config: cfg.to_string() })
                    .collect(),
            })
            .collect();
        Trace {
            num_leaves: topo.num_leaves(),
            num_comms: set.len(),
            rounds,
            total_cycles: sim.cycles,
        }
    }

    /// JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;

    #[test]
    fn trace_roundtrips_through_json() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]);
        let sim = simulate(&topo, &set, None).unwrap();
        let trace = Trace::from_sim(&topo, &set, &sim);
        assert_eq!(trace.rounds.len(), 2);
        assert_eq!(trace.rounds[0].transfers, vec![(0, 7)]);
        let json = trace.to_json();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn trace_cycles_match_sim() {
        let topo = CstTopology::with_leaves(16);
        let set = cst_comm::examples::paper_figure_2();
        let sim = simulate(&topo, &set, None).unwrap();
        let trace = Trace::from_sim(&topo, &set, &sim);
        assert_eq!(trace.total_cycles, sim.cycles);
        assert_eq!(trace.num_comms, set.len());
    }
}
