//! Adversarial and profile-controlled generators: inputs designed to
//! stress specific scheduler behaviours rather than to be typical.

use cst_comm::{CommSet, Communication};
use cst_core::LeafId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A "comb": many disjoint shallow teeth plus one spanning communication.
/// Width 2, but the spanning comm conflicts with *every* tooth on some
/// link of its flanks — a worst case for greedy orders that consider the
/// spanning comm late.
pub fn comb(n: usize, teeth: usize) -> CommSet {
    assert!(n >= 8 && teeth >= 1);
    let teeth = teeth.min((n - 2) / 4);
    let mut comms = vec![Communication { source: LeafId(0), dest: LeafId(n - 1) }];
    // teeth at positions 1+4k .. 3+4k inside the span
    for k in 0..teeth {
        let s = 1 + 4 * k;
        let d = s + 2;
        if d >= n - 1 {
            break;
        }
        comms.push(Communication { source: LeafId(s), dest: LeafId(d) });
    }
    CommSet::new(n, comms).expect("comb is valid")
}

/// Interleaved nests: the full nest of width `n/4` in each half, with
/// communication ids shuffled — the adversarial input order for the E8
/// ablation's `InputOrder` scan.
pub fn shuffled_double_nest<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CommSet {
    assert!(n >= 8 && n.is_power_of_two());
    let half = n / 2;
    let mut comms = Vec::with_capacity(half / 2);
    for i in 0..half / 2 {
        comms.push(Communication { source: LeafId(i), dest: LeafId(half - 1 - i) });
    }
    for i in 0..half / 2 {
        comms.push(Communication {
            source: LeafId(half + i),
            dest: LeafId(n - 1 - i),
        });
    }
    comms.shuffle(rng);
    CommSet::new(n, comms).expect("double nest is valid")
}

/// A set with an exact *nesting-depth histogram*: `profile[d]` gives the
/// number of communications at depth `d+1`. Built as consecutive towers;
/// returns `None` if the profile does not fit on `n` leaves or is not
/// monotone non-increasing (a deeper level needs an enclosing one).
pub fn with_depth_profile(n: usize, profile: &[usize]) -> Option<CommSet> {
    if profile.is_empty() || profile[0] == 0 {
        return None;
    }
    for w in profile.windows(2) {
        if w[1] > w[0] {
            return None;
        }
    }
    // Build towers greedily: each outermost communication hosts a chain of
    // nested ones as deep as the remaining profile allows.
    let mut remaining: Vec<usize> = profile.to_vec();
    let mut comms: Vec<Communication> = Vec::new();
    let mut cursor = 0usize; // next free leaf
    while remaining[0] > 0 {
        // depth of this tower = number of levels still needing comms,
        // scanning from the deepest level upward
        let depth = remaining.iter().rposition(|&c| c > 0)? + 1;
        let tower_width = 2 * depth;
        if cursor + tower_width > n {
            return None;
        }
        for (d, level_remaining) in remaining.iter_mut().enumerate().take(depth) {
            comms.push(Communication {
                source: LeafId(cursor + d),
                dest: LeafId(cursor + tower_width - 1 - d),
            });
            *level_remaining -= 1;
        }
        cursor += tower_width;
    }
    if remaining.iter().any(|&c| c > 0) {
        return None;
    }
    CommSet::new(n, comms).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_comm::width_on_topology;
    use cst_core::CstTopology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn comb_structure() {
        let topo = CstTopology::with_leaves(32);
        let set = comb(32, 6);
        assert!(set.is_well_nested());
        assert_eq!(set.len(), 7);
        assert_eq!(width_on_topology(&topo, &set), 2);
        let out = cst_padr::CsaScratch::new()
            .schedule(&topo, &set, &mut cst_comm::SchedulePool::new())
            .unwrap();
        assert_eq!(out.rounds(), 2);
    }

    #[test]
    fn double_nest_shuffled_is_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let set = shuffled_double_nest(&mut rng, 32);
        assert!(set.is_well_nested());
        assert_eq!(set.len(), 16);
        let topo = CstTopology::with_leaves(32);
        assert_eq!(width_on_topology(&topo, &set), 8);
    }

    #[test]
    fn depth_profile_exact() {
        let set = with_depth_profile(64, &[4, 2, 1]).unwrap();
        assert!(set.is_well_nested());
        let depths = set.nesting_depths();
        assert_eq!(depths.iter().filter(|&&d| d == 1).count(), 4);
        assert_eq!(depths.iter().filter(|&&d| d == 2).count(), 2);
        assert_eq!(depths.iter().filter(|&&d| d == 3).count(), 1);
    }

    #[test]
    fn depth_profile_rejects_bad_inputs() {
        // increasing profile: a depth-2 comm needs a depth-1 parent
        assert!(with_depth_profile(64, &[1, 2]).is_none());
        // does not fit
        assert!(with_depth_profile(8, &[4, 4]).is_none());
        assert!(with_depth_profile(8, &[]).is_none());
        assert!(with_depth_profile(8, &[0]).is_none());
    }

    #[test]
    fn depth_profile_fits_snugly() {
        // towers: [2,1] -> one tower of depth 2 (4 leaves) + one of depth 1
        // (2 leaves) = 6 leaves; fits on 8.
        let set = with_depth_profile(8, &[2, 1]).unwrap();
        assert_eq!(set.len(), 3);
    }
}
