//! # cst-workloads — seeded workload generators
//!
//! Inputs for the experiments:
//!
//! * [`random`] — uniformly random well-nested sets (cycle-lemma Dyck
//!   words placed on random leaf positions);
//! * [`width_targeted`] — sets with exact width `w` (planted nested chain
//!   plus width-capped filler) and the depth-vs-width "staircase";
//! * [`bus`] — segmentable-bus patterns (flat, hierarchical, random),
//!   the motivating workload class of the paper's introduction;
//! * [`adversarial`] — combs, shuffled double nests, exact depth
//!   profiles: stress inputs for specific scheduler behaviours;
//! * [`delta`] — streaming mutation chains: random [`cst_comm::PeChange`]
//!   sequences whose every prefix keeps the set routable;
//! * [`general`] — arbitrary sets that are *not* well-nested by
//!   construction (matchings, hotspots, bipartite traffic), inputs for
//!   the `cst-decomp` layering front-end.
//!
//! All generators take a caller-provided `Rng` so experiments are
//! reproducible from a seed.

pub mod adversarial;
pub mod bus;
pub mod delta;
pub mod general;
pub mod random;
pub mod width_targeted;

pub use adversarial::{comb, shuffled_double_nest, with_depth_profile};
pub use delta::random_changes;
pub use bus::{hierarchical_bus, random_bus, segmented_bus};
pub use general::{arbitrary_permutation, hotspot, random_bipartite};
pub use random::{random_dyck, sample_positions, well_nested_set, well_nested_with_density};
pub use width_targeted::{staircase, with_width, with_width_checked};
