//! Arbitrary (non-well-nested) communication sets for the decomposition
//! front-end.
//!
//! Every other generator in this crate emits legal [`cst_comm::CommSet`]
//! inputs; these three deliberately do not. They produce
//! [`GeneralCommSet`]s that violate well-nestedness by construction —
//! crossings, endpoint reuse, or both — so `cst-decomp`'s layering pass
//! and the engine's `route_general` path have honest work to do:
//!
//! * [`arbitrary_permutation`] — a uniformly random perfect matching of
//!   the leaves: unique endpoints but arbitrary crossings (the expected
//!   crossing number is Θ(m²));
//! * [`hotspot`] — one hub leaf talking to many spokes: maximal
//!   endpoint reuse, forcing one layer per spoke;
//! * [`random_bipartite`] — distinct pairs from the lower to the upper
//!   half of the leaf range: dense mutual crossings with occasional
//!   endpoint sharing.
//!
//! All generators take a caller-provided `Rng`, like the rest of the
//! crate, so experiments reproduce from a seed.

use cst_core::GeneralCommSet;
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random perfect matching of `n` leaves (`n` even,
/// `n >= 2`): `n/2` pairs, each leaf an endpoint of exactly one.
pub fn arbitrary_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> GeneralCommSet {
    assert!(n >= 2 && n.is_multiple_of(2), "matching needs an even n >= 2, got {n}");
    let mut leaves: Vec<usize> = (0..n).collect();
    leaves.shuffle(rng);
    let pairs: Vec<(usize, usize)> = leaves.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    GeneralCommSet::new(n, &pairs).expect("a matching has no duplicate pairs")
}

/// One randomly-placed hub leaf connected to `spokes` distinct other
/// leaves (`spokes < n`). With `spokes >= 2` the set reuses the hub
/// endpoint, so it is never a legal `CommSet` and decomposes to exactly
/// `spokes` layers.
pub fn hotspot<R: Rng + ?Sized>(rng: &mut R, n: usize, spokes: usize) -> GeneralCommSet {
    assert!(spokes < n, "need {spokes} spokes plus a hub within {n} leaves");
    let hub = rng.gen_range(0..n);
    let mut others: Vec<usize> = (0..n).filter(|&l| l != hub).collect();
    others.shuffle(rng);
    let pairs: Vec<(usize, usize)> = others[..spokes].iter().map(|&s| (hub, s)).collect();
    GeneralCommSet::new(n, &pairs).expect("distinct spokes give distinct pairs")
}

/// `m` distinct random pairs connecting the lower leaf half to the upper
/// half (`m <= (n/2)²`). Crossing-dense: two such pairs cross unless
/// their endpoints are ordered the same way on both sides.
pub fn random_bipartite<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> GeneralCommSet {
    let half = n / 2;
    assert!(half >= 1, "need at least 2 leaves, got {n}");
    assert!(m <= half * half, "only {} distinct lower-upper pairs exist", half * half);
    let mut set = GeneralCommSet::empty(n);
    let mut taken = vec![false; half * half];
    let mut placed = 0usize;
    while placed < m {
        let a = rng.gen_range(0..half);
        let b = rng.gen_range(half..n);
        let slot = a * half + (b - half);
        if taken[slot] {
            continue;
        }
        taken[slot] = true;
        set.push(a, b).expect("slot bitmap prevents duplicates");
        placed += 1;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matching_uses_every_leaf_once() {
        let mut rng = StdRng::seed_from_u64(7);
        let set = arbitrary_permutation(&mut rng, 32);
        assert_eq!(set.len(), 16);
        let mut used = [false; 32];
        for &(s, d) in set.pairs() {
            assert!(!used[s.0] && !used[d.0], "leaf reused in a matching");
            used[s.0] = true;
            used[d.0] = true;
        }
        assert!(used.iter().all(|&u| u));
    }

    #[test]
    fn hotspot_reuses_only_the_hub() {
        let mut rng = StdRng::seed_from_u64(11);
        let set = hotspot(&mut rng, 16, 5);
        assert_eq!(set.len(), 5);
        let mut count = [0usize; 16];
        for &(s, d) in set.pairs() {
            count[s.0] += 1;
            count[d.0] += 1;
        }
        assert_eq!(count.iter().filter(|&&c| c == 5).count(), 1, "one hub");
        assert_eq!(count.iter().filter(|&&c| c == 1).count(), 5, "five spokes");
    }

    #[test]
    fn bipartite_pairs_are_distinct_and_span_halves() {
        let mut rng = StdRng::seed_from_u64(13);
        let set = random_bipartite(&mut rng, 16, 20);
        assert_eq!(set.len(), 20);
        for &(s, d) in set.pairs() {
            assert!(s.0 < 8 && d.0 >= 8, "pair ({}, {}) does not span halves", s.0, d.0);
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        for seed in [0u64, 42, 99] {
            let a = arbitrary_permutation(&mut StdRng::seed_from_u64(seed), 64);
            let b = arbitrary_permutation(&mut StdRng::seed_from_u64(seed), 64);
            assert_eq!(a, b);
            let a = hotspot(&mut StdRng::seed_from_u64(seed), 64, 10);
            let b = hotspot(&mut StdRng::seed_from_u64(seed), 64, 10);
            assert_eq!(a, b);
            let a = random_bipartite(&mut StdRng::seed_from_u64(seed), 64, 40);
            let b = random_bipartite(&mut StdRng::seed_from_u64(seed), 64, 40);
            assert_eq!(a, b);
        }
    }
}
