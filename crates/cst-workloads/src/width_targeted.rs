//! Generators with a controlled target width `w` — the sweep variable of
//! experiments E1/E2/E6/E8.
//!
//! The construction plants one nested chain of exactly `w` communications
//! around the tree's center (all `w` share the up-link into the root from
//! its left child, so the width is at least `w`), then fills the remaining
//! leaf space left and right of the chain with independent random
//! well-nested sets whose depth is capped at `w` (their nesting depth
//! bounds any link load they create). The result has width exactly `w`.

use crate::random::well_nested_set;
use cst_comm::{width_on_topology, CommSet, Communication};
use cst_core::{CstTopology, LeafId};
use rand::Rng;

/// A set of width exactly `w` on `n` leaves (`2w <= n`, `w >= 1`): a
/// centered nested chain plus random filler in the flanks.
///
/// `filler_density` in `[0, 1]` controls how much of each flank is used by
/// extra communications (0 = the bare chain).
pub fn with_width<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    w: usize,
    filler_density: f64,
) -> CommSet {
    assert!(w >= 1 && 2 * w <= n, "need 1 <= w and 2w <= n (w={w}, n={n})");
    let mid = n / 2;
    // Chain: sources mid-w .. mid-1 (ascending), dests mid .. mid+w-1 so
    // that pair i is (mid-1-i, mid+i): properly nested around the center.
    let mut comms: Vec<Communication> = (0..w)
        .map(|i| Communication { source: LeafId(mid - 1 - i), dest: LeafId(mid + i) })
        .rev() // outermost first for readable ids
        .collect();

    // Flanks: [0, mid-w) and [mid+w, n). Fill each with a random
    // well-nested set, capping the depth by peeling: we simply generate
    // with at most floor(w/1) pairs... depth of a well-nested set never
    // exceeds its size, so limiting each flank set's size to w caps its
    // depth (hence any link load it induces) at w.
    let fill = |rng: &mut R, lo: usize, hi: usize, comms: &mut Vec<Communication>| {
        let span = hi.saturating_sub(lo);
        if span < 2 || filler_density <= 0.0 {
            return;
        }
        let budget = ((span / 2) as f64 * filler_density).floor() as usize;
        let m = budget.min(w);
        if m == 0 {
            return;
        }
        let sub = well_nested_set(rng, span, m);
        for c in sub.comms() {
            comms.push(Communication {
                source: LeafId(c.source.0 + lo),
                dest: LeafId(c.dest.0 + lo),
            });
        }
    };
    let (lo_end, hi_start) = (mid - w, mid + w);
    fill(rng, 0, lo_end, &mut comms);
    fill(rng, hi_start, n, &mut comms);

    CommSet::new(n, comms).expect("width-targeted generator produced a valid set")
}

/// Like [`with_width`] but asserts the achieved width (debug aid; the
/// experiments call this in tests, the benches call [`with_width`]).
pub fn with_width_checked<R: Rng + ?Sized>(
    rng: &mut R,
    topo: &CstTopology,
    w: usize,
    filler_density: f64,
) -> CommSet {
    let set = with_width(rng, topo.num_leaves(), w, filler_density);
    debug_assert_eq!(width_on_topology(topo, &set) as usize, w);
    set
}

/// The "staircase" family that separates nesting depth from width: tiled
/// copies of the depth-3/width-2 motif `{(3,9), (4,8), (5,6)}` (each copy
/// occupies a 16-leaf block). Each motif's three communications share
/// links only consecutively, so the whole set has nesting depth 3 but
/// width 2 — the adversarial input on which level-based (Roy-style)
/// scheduling pays `depth` rounds while the CSA pays only `width`.
///
/// Note this separation cannot be extended arbitrarily: every chain member
/// from the second outward crosses the second member's apex boundary and
/// therefore shares that apex's up-link, so a chain of length `k` forces
/// width `>= k - 1`. Depth exceeds width by at most one per motif; tiling
/// multiplies the *number* of such decisions, not the gap.
pub fn staircase(n: usize, copies: usize) -> CommSet {
    assert!(n.is_power_of_two() && n >= 16);
    let max_copies = n / 16;
    let copies = copies.clamp(1, max_copies);
    let mut comms = Vec::with_capacity(3 * copies);
    for c in 0..copies {
        let base = 16 * c;
        for &(s, d) in &[(3usize, 9usize), (4, 8), (5, 6)] {
            comms.push(Communication { source: LeafId(base + s), dest: LeafId(base + d) });
        }
    }
    CommSet::new(n, comms).expect("staircase is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bare_chain_has_exact_width() {
        for (n, w) in [(16usize, 1usize), (16, 4), (64, 7), (128, 32), (256, 100)] {
            let topo = CstTopology::with_leaves(n);
            let set = with_width(&mut rng(1), n, w, 0.0);
            assert_eq!(set.len(), w);
            assert!(set.is_well_nested());
            assert_eq!(width_on_topology(&topo, &set) as usize, w, "n={n} w={w}");
        }
    }

    #[test]
    fn filler_preserves_width() {
        for seed in 0..20u64 {
            for w in [2usize, 5, 9] {
                let n = 256;
                let topo = CstTopology::with_leaves(n);
                let set = with_width(&mut rng(seed), n, w, 0.8);
                assert!(set.is_well_nested(), "seed {seed} w {w}");
                assert_eq!(
                    width_on_topology(&topo, &set) as usize,
                    w,
                    "seed {seed} w {w}"
                );
                assert!(set.len() >= w);
            }
        }
    }

    #[test]
    fn staircase_depth_exceeds_width() {
        for copies in [1usize, 3, 8] {
            let n = 256;
            let topo = CstTopology::with_leaves(n);
            let set = staircase(n, copies);
            assert!(set.is_well_nested());
            assert_eq!(set.len(), 3 * copies);
            let w = width_on_topology(&topo, &set);
            let depth = set.max_nesting_depth();
            assert_eq!(depth, 3);
            assert_eq!(w, 2, "width must stay 2 with {copies} copies");
        }
    }

    #[test]
    fn staircase_clamps_copies() {
        let set = staircase(16, 100);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn checked_variant_agrees() {
        let topo = CstTopology::with_leaves(128);
        let set = with_width_checked(&mut rng(3), &topo, 6, 0.5);
        assert_eq!(width_on_topology(&topo, &set), 6);
    }
}
