//! Segmentable-bus workloads (paper §1: well-nested sets are "a superset
//! of the communications required by the segmentable bus; a fundamental
//! reconfigurable architecture").
//!
//! A segmentable bus partitions the PE line into contiguous segments; in
//! each segment one PE broadcasts along the segment — here modeled as one
//! communication from the segment's left end to its right end (width-1
//! traffic), plus optional nested "sub-bus" traffic inside segments.

use cst_comm::{CommSet, Communication};
use cst_core::LeafId;
use rand::Rng;

/// One communication per segment, spanning it fully: `(seg_start,
/// seg_end-1)`. Segment boundaries are chosen by splitting `n` leaves into
/// `segments` nearly-equal parts; segments shorter than 2 leaves are
/// skipped.
pub fn segmented_bus(n: usize, segments: usize) -> CommSet {
    assert!(segments >= 1);
    let mut comms = Vec::new();
    for i in 0..segments {
        let start = i * n / segments;
        let end = (i + 1) * n / segments;
        if end - start >= 2 {
            comms.push(Communication { source: LeafId(start), dest: LeafId(end - 1) });
        }
    }
    CommSet::new(n, comms).expect("segment spans are disjoint")
}

/// A hierarchical bus: like [`segmented_bus`], plus recursively nested
/// sub-segment traffic down to `levels` levels. Each level doubles the
/// number of segments and nests strictly inside the previous level's
/// spans, producing width exactly `levels` (every level's comm over a leaf
/// region shares the region's boundary-crossing links with its parents).
pub fn hierarchical_bus(n: usize, levels: u32) -> CommSet {
    assert!(levels >= 1);
    let mut comms = Vec::new();
    // Level k (0-based) splits n into 2^k segments and connects
    // (start + k) -> (end - 1 - k), shrinking by one leaf per side per
    // level so endpoints stay distinct and strictly nested.
    for k in 0..levels as usize {
        let segs = 1usize << k;
        for i in 0..segs {
            let start = i * n / segs + k;
            let end = (i + 1) * n / segs - k;
            if end > start + 1 {
                comms.push(Communication { source: LeafId(start), dest: LeafId(end - 1) });
            }
        }
    }
    CommSet::new(n, comms).expect("hierarchical bus is valid")
}

/// A randomized segmentable bus: random segment boundaries (at least
/// `min_seg` leaves each), one spanning communication per segment.
pub fn random_bus<R: Rng + ?Sized>(rng: &mut R, n: usize, min_seg: usize) -> CommSet {
    assert!(min_seg >= 2 && min_seg <= n);
    let mut comms = Vec::new();
    let mut start = 0usize;
    while start + min_seg <= n {
        let max_len = n - start;
        let len = rng.gen_range(min_seg..=max_len.min(4 * min_seg));
        comms.push(Communication { source: LeafId(start), dest: LeafId(start + len - 1) });
        start += len;
    }
    CommSet::new(n, comms).expect("random bus is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_comm::width_on_topology;
    use cst_core::CstTopology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn segmented_bus_is_width_one() {
        for (n, s) in [(16usize, 1usize), (16, 4), (64, 8), (128, 5)] {
            let topo = CstTopology::with_leaves(n);
            let set = segmented_bus(n, s);
            assert!(set.is_well_nested());
            assert!(set.is_right_oriented());
            assert_eq!(width_on_topology(&topo, &set), 1, "n={n} s={s}");
        }
    }

    #[test]
    fn hierarchical_bus_width_equals_levels() {
        for levels in 1..=3u32 {
            let n = 64;
            let topo = CstTopology::with_leaves(n);
            let set = hierarchical_bus(n, levels);
            assert!(set.is_well_nested(), "levels={levels}");
            assert_eq!(width_on_topology(&topo, &set), levels, "levels={levels}");
        }
    }

    #[test]
    fn random_bus_valid_and_width_one() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..30 {
            let n = 128;
            let topo = CstTopology::with_leaves(n);
            let set = random_bus(&mut rng, n, 4);
            assert!(set.is_well_nested());
            assert!(!set.is_empty());
            assert_eq!(width_on_topology(&topo, &set), 1);
        }
    }

    #[test]
    fn degenerate_small_segments_skipped() {
        let set = segmented_bus(8, 8);
        assert!(set.is_empty());
    }
}
