//! Seeded delta generators for the streaming experiments.
//!
//! A streaming workload is a base set plus a chain of small mutations
//! ([`PeChange`]s). The generator keeps every intermediate set routable:
//! attaches pick a source/dest pair that stays **right-oriented and
//! well-nested** against the current set (the pair's interval must nest
//! inside or lie disjoint from every existing communication), detaches
//! remove a uniformly chosen existing communication. Both endpoints of an
//! attach are free leaves (no endpoint reuse).

use cst_comm::{CommSet, PeChange};
use cst_core::LeafId;
use rand::Rng;

/// Does attaching `(l, r)` keep `set` well-nested? True iff `[l, r]`
/// nests inside or lies disjoint from every existing interval (it can
/// also *contain* existing intervals whole). `O(M)` scan.
fn attach_keeps_nested(set: &CommSet, l: usize, r: usize) -> bool {
    set.comms().iter().all(|c| {
        let (s, d) = (c.source.0, c.dest.0);
        let disjoint = r < s || d < l;
        let inside = s < l && r < d;
        let contains = l < s && d < r;
        disjoint || inside || contains
    })
}

/// One random valid attach against `set`, or `None` if `attempts`
/// rejection-sampling tries all failed (dense sets can leave no room).
fn random_attach<R: Rng + ?Sized>(
    rng: &mut R,
    set: &CommSet,
    used: &[bool],
    attempts: usize,
) -> Option<PeChange> {
    let n = set.num_leaves();
    if 2 * (set.len() + 1) > n {
        return None;
    }
    for _ in 0..attempts {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let (l, r) = (a.min(b), a.max(b));
        if used[l] || used[r] {
            continue;
        }
        if attach_keeps_nested(set, l, r) {
            return Some(PeChange::attach(l, r));
        }
    }
    None
}

/// Generate `k` random [`PeChange`]s against `set`, applying each to a
/// scratch copy so later changes are valid against the evolved set. Every
/// prefix of the returned chain keeps the set right-oriented and
/// well-nested, so an [`cst_padr::IncrementalCsa`] session can route after
/// each step. Attaches and detaches are mixed roughly evenly; when one
/// kind is impossible (empty set, or no room to nest) the other is used.
///
/// # Examples
///
/// ```
/// use cst_workloads::{random_changes, well_nested_set};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut set = well_nested_set(&mut rng, 64, 12);
/// let changes = random_changes(&mut rng, &set, 5);
/// let mut touched = Vec::new();
/// set.apply_changes(&changes, &mut touched).unwrap();
/// assert!(set.is_well_nested() && set.is_right_oriented());
/// ```
pub fn random_changes<R: Rng + ?Sized>(
    rng: &mut R,
    set: &CommSet,
    k: usize,
) -> Vec<PeChange> {
    let mut work = set.clone();
    let mut used = vec![false; work.num_leaves()];
    for c in work.comms() {
        used[c.source.0] = true;
        used[c.dest.0] = true;
    }
    let mut changes = Vec::with_capacity(k);
    let mut touched: Vec<LeafId> = Vec::new();
    for _ in 0..k {
        let want_attach = rng.gen_bool(0.5);
        let attach = if want_attach || work.is_empty() {
            random_attach(rng, &work, &used, 64)
        } else {
            None
        };
        let change = match attach {
            Some(c) => c,
            None if !work.is_empty() => {
                let i = rng.gen_range(0..work.len());
                PeChange::detach(work.comms()[i].source.0)
            }
            // Empty set and no room to attach: nothing left to mutate.
            None => break,
        };
        touched.clear();
        work.apply_changes(&[change], &mut touched)
            .expect("generated change is valid against the evolved set");
        for &leaf in &touched {
            used[leaf.0] = matches!(change, PeChange::Attach { .. });
        }
        changes.push(change);
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::well_nested_set;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_prefix_stays_routable() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let mut set = well_nested_set(&mut rng, 128, 20);
            let changes = random_changes(&mut rng, &set, 8);
            let mut touched = Vec::new();
            for (i, &c) in changes.iter().enumerate() {
                touched.clear();
                set.apply_changes(&[c], &mut touched)
                    .unwrap_or_else(|e| panic!("trial {trial} step {i}: {e}"));
                assert!(set.is_right_oriented(), "trial {trial} step {i}");
                assert!(set.is_well_nested(), "trial {trial} step {i}");
            }
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let s1 = well_nested_set(&mut r1, 64, 10);
        let s2 = well_nested_set(&mut r2, 64, 10);
        assert_eq!(random_changes(&mut r1, &s1, 6), random_changes(&mut r2, &s2, 6));
    }

    #[test]
    fn dense_set_falls_back_to_detach() {
        // 2m == n: no room for any attach; all changes must be detaches.
        let mut rng = StdRng::seed_from_u64(3);
        let set = well_nested_set(&mut rng, 32, 16);
        let changes = random_changes(&mut rng, &set, 4);
        assert!(!changes.is_empty());
        assert!(changes.iter().any(|c| matches!(c, PeChange::Detach { .. })));
    }

    #[test]
    fn empty_set_with_no_room_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = CommSet::empty(1); // a single leaf cannot host a pair
        assert!(random_changes(&mut rng, &set, 4).is_empty());
    }
}
