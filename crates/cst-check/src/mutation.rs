//! Mutation harness: the analyzer's own proof of discrimination.
//!
//! A checker that accepts everything is worse than none, so each
//! diagnostic class carries a *mutation*: a minimal, surgical corruption
//! of a known-clean scheduling artifact that must trigger exactly that
//! class — the expected code and no other error. `tests/mutation_coverage.rs`
//! drives every [`Mutation`] through [`run`] and asserts both directions:
//! the clean fixture is silent, and each corruption is attributed to
//! precisely its code.

use crate::counters::{check_counters, expected_counters, CounterTable};
use crate::{analyze, analyze_with_faults, CheckOptions};
use cst_comm::{CommId, CommSet, Round, Schedule};
use cst_core::diag::{DiagCode, DiagReport};
use cst_core::{
    Circuit, Connection, CstTopology, DirectedLink, FaultMask, MergedRound, NodeId, RoundConfigs,
};

/// One corruption per diagnostic class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Two crossing communications (`CST001`).
    CrossingComms,
    /// A left-oriented communication under the strict contract (`CST002`).
    LeftOriented,
    /// A round referencing a communication id outside the set (`CST010`).
    UnknownId,
    /// The same communication scheduled in two rounds (`CST011`).
    RepeatedComm,
    /// A communication dropped from every round (`CST012`).
    DroppedComm,
    /// Two circuits sharing a directed link in one round (`CST020`).
    CollidingRound,
    /// A required switch entry deleted from a round table (`CST021`).
    DeletedEntry,
    /// A same-side connection smuggled in via deserialization (`CST022`).
    IllegalDriver,
    /// A padding round beyond the width bound (`CST030`).
    PaddedRounds,
    /// An idle switch re-aimed every round past the budget (`CST040`).
    ThrashingSwitch,
    /// A switch's `C_S` off by one against Lemma 1 (`CST050`).
    SkewedState,
    /// A forwarded `C_U` breaking conservation (`CST051`).
    SkewedUpMsg,
    /// Rounds reversed: innermost scheduled first (`CST060`).
    InvertedOrder,
    /// One switch entry recorded twice in a round (`CST070`).
    TwoWriters,
    /// A connection no circuit asked for (`CST071`, warning).
    StraySetting,
    /// A scheduled communication crossing a dead link (`CST100`).
    MaskedHardware,
    /// One round driving a degraded edge in both directions (`CST101`).
    HalfDuplexTraffic,
    /// A routable communication reported as dropped (`CST102`).
    BogusDrop,
}

impl Mutation {
    /// Every mutation, in code order.
    pub const ALL: [Mutation; 18] = [
        Mutation::CrossingComms,
        Mutation::LeftOriented,
        Mutation::UnknownId,
        Mutation::RepeatedComm,
        Mutation::DroppedComm,
        Mutation::CollidingRound,
        Mutation::DeletedEntry,
        Mutation::IllegalDriver,
        Mutation::PaddedRounds,
        Mutation::ThrashingSwitch,
        Mutation::SkewedState,
        Mutation::SkewedUpMsg,
        Mutation::InvertedOrder,
        Mutation::TwoWriters,
        Mutation::StraySetting,
        Mutation::MaskedHardware,
        Mutation::HalfDuplexTraffic,
        Mutation::BogusDrop,
    ];

    /// The one diagnostic this corruption must produce.
    pub fn expected_code(self) -> DiagCode {
        match self {
            Mutation::CrossingComms => DiagCode::NotWellNested,
            Mutation::LeftOriented => DiagCode::NotRightOriented,
            Mutation::UnknownId => DiagCode::UnknownComm,
            Mutation::RepeatedComm => DiagCode::DuplicateComm,
            Mutation::DroppedComm => DiagCode::MissingComm,
            Mutation::CollidingRound => DiagCode::LinkConflict,
            Mutation::DeletedEntry => DiagCode::MissingConnection,
            Mutation::IllegalDriver => DiagCode::IllegalConfig,
            Mutation::PaddedRounds => DiagCode::RoundCountMismatch,
            Mutation::ThrashingSwitch => DiagCode::TransitionBudget,
            Mutation::SkewedState => DiagCode::CounterMismatch,
            Mutation::SkewedUpMsg => DiagCode::CounterFlow,
            Mutation::InvertedOrder => DiagCode::SelectionOrder,
            Mutation::TwoWriters => DiagCode::DoubleStamp,
            Mutation::StraySetting => DiagCode::ForeignConfig,
            Mutation::MaskedHardware => DiagCode::MaskedLinkUsed,
            Mutation::HalfDuplexTraffic => DiagCode::HalfDuplexViolation,
            Mutation::BogusDrop => DiagCode::DroppedRoutable,
        }
    }

    /// Whether the corruption legitimately drags extra *warnings* along
    /// (injected settings are foreign by construction); extra errors are
    /// never tolerated.
    pub fn tolerates_warnings(self) -> bool {
        matches!(self, Mutation::ThrashingSwitch | Mutation::IllegalDriver)
    }
}

/// A fault-mask context claimed by a degraded artifact: the mask the
/// schedule was routed under and the communications reported dropped.
#[derive(Clone, Debug)]
pub struct FaultScenario {
    pub mask: FaultMask,
    pub dropped: Vec<usize>,
}

/// A complete analysis subject: inputs, schedule, claimed counters and the
/// contract to check against.
#[derive(Clone, Debug)]
pub struct Fixture {
    pub topo: CstTopology,
    pub set: CommSet,
    pub schedule: Schedule,
    pub counters: Option<CounterTable>,
    pub options: CheckOptions,
    /// Present when the artifact claims degraded routing; switches the
    /// analysis to [`analyze_with_faults`].
    pub fault: Option<FaultScenario>,
}

/// Analyze a fixture: every schedule pass plus, when tables are claimed,
/// the Lemma 1 counter pass.
pub fn run(f: &Fixture) -> DiagReport {
    let mut report = match &f.fault {
        Some(s) => analyze_with_faults(&f.topo, &f.set, &f.schedule, &f.options, &s.mask, &s.dropped),
        None => analyze(&f.topo, &f.set, &f.schedule, &f.options),
    };
    if let Some(t) = &f.counters {
        report.merge(check_counters(&f.topo, &f.set, t));
    }
    report
}

/// One round performing exactly `ids`, with the honest merged configs.
fn round_of(topo: &CstTopology, set: &CommSet, ids: &[usize]) -> Round {
    let circuits: Vec<_> = ids
        .iter()
        .map(|&i| {
            let c = &set.comms()[i];
            Circuit::between(topo, c.source, c.dest)
        })
        .collect();
    let merged = MergedRound::build(topo, &circuits).expect("fixture circuits are compatible");
    Round { comms: ids.iter().map(|&i| CommId(i)).collect(), configs: merged.to_configs() }
}

/// A fixture built from `pairs` scheduled one communication per round, in
/// id order, with ground-truth counter tables.
fn fixture_of(num_leaves: usize, pairs: &[(usize, usize)]) -> Fixture {
    let topo = CstTopology::with_leaves(num_leaves);
    let set = CommSet::from_pairs(num_leaves, pairs);
    let rounds = (0..set.len()).map(|i| round_of(&topo, &set, &[i])).collect();
    let counters = Some(expected_counters(&topo, &set));
    Fixture {
        topo,
        set,
        schedule: Schedule { rounds },
        counters,
        options: CheckOptions::strict(),
        fault: None,
    }
}

/// The known-clean baseline: three nested communications on 8 PEs,
/// outermost-first, one per round — width 3, three rounds, every invariant
/// honest. [`run`] must return an empty report for it.
pub fn clean_fixture() -> Fixture {
    fixture_of(8, &[(0, 7), (1, 6), (2, 5)])
}

/// The clean fixture with exactly one corruption applied.
pub fn corrupted(m: Mutation) -> Fixture {
    let mut f = clean_fixture();
    match m {
        Mutation::CrossingComms => {
            // Crossing pairs still schedule round-per-comm cleanly (width
            // 2, two rounds); only the set structure is at fault.
            f = fixture_of(8, &[(0, 4), (2, 6)]);
        }
        Mutation::LeftOriented => {
            f = fixture_of(8, &[(3, 0)]);
        }
        Mutation::UnknownId => {
            f.schedule.rounds[0].comms.push(CommId(3));
        }
        Mutation::RepeatedComm => {
            f.schedule.rounds[0].comms.push(CommId(0));
        }
        Mutation::DroppedComm => {
            // Keep the round *count* (Theorem 5 stays satisfied); lose the
            // communication.
            f.schedule.rounds[2] = Round::default();
        }
        Mutation::CollidingRound => {
            // Cram comms 0 and 1 into round 0; their up-paths share the
            // link above n4. Configs are the force-union so only the
            // compatibility invariant is violated, not the bookkeeping.
            let donor = f.schedule.rounds.remove(1);
            f.schedule.rounds.push(Round::default()); // keep 3 rounds
            let r0 = &mut f.schedule.rounds[0];
            r0.comms.extend(donor.comms);
            for (node, cfg) in &donor.configs {
                let slot = r0.configs.entry_mut(node);
                for conn in cfg.connections() {
                    let _ = slot.force(conn);
                }
            }
        }
        Mutation::DeletedEntry => {
            let r0 = &mut f.schedule.rounds[0];
            let kept: Vec<_> =
                r0.configs.iter().filter(|&(n, _)| n != NodeId::ROOT).map(|(n, c)| (n, *c)).collect();
            r0.configs = RoundConfigs::from_entries(kept);
        }
        Mutation::IllegalDriver => {
            // `SwitchConfig::set` cannot produce p_i -> p_o; a corrupted
            // artifact can. Keep the required l_i -> r_o so nothing else
            // fires.
            *f.schedule.rounds[0].configs.entry_mut(NodeId::ROOT) =
                serde_json::from_str(r#"{"driver":[null,"Left","Parent"]}"#)
                    .expect("literal config");
        }
        Mutation::PaddedRounds => {
            f.schedule.rounds.push(Round::default());
        }
        Mutation::ThrashingSwitch => {
            // 16 nested comms on 32 PEs; n31 is idle after round 1, so
            // re-aiming its parent port every remaining round racks up 14
            // extra transitions — far past the budget of 9. The stray
            // settings are foreign (warnings), the budget breach is the
            // error.
            let pairs: Vec<_> = (0..16).map(|i| (i, 31 - i)).collect();
            f = fixture_of(32, &pairs);
            for r in 2..16 {
                let conn = if r % 2 == 0 { Connection::L_TO_P } else { Connection::R_TO_P };
                f.schedule.rounds[r]
                    .configs
                    .entry_mut(NodeId(31))
                    .set(conn)
                    .expect("n31 idle after round 1");
            }
        }
        Mutation::SkewedState => {
            let t = f.counters.as_mut().expect("clean fixture carries tables");
            t.states[NodeId::ROOT.index()][0] += 1;
        }
        Mutation::SkewedUpMsg => {
            let t = f.counters.as_mut().expect("clean fixture carries tables");
            t.up[2] = [1, 0];
        }
        Mutation::InvertedOrder => {
            f.schedule.rounds.reverse();
        }
        Mutation::TwoWriters => {
            let r0 = &mut f.schedule.rounds[0];
            let mut entries: Vec<_> = r0.configs.iter().map(|(n, c)| (n, *c)).collect();
            let dup = entries[0];
            entries.push(dup);
            r0.configs = RoundConfigs::from_entries_unchecked(entries);
        }
        Mutation::StraySetting => {
            // n5 takes no part in round 0 of the clean fixture.
            f.schedule.rounds[0]
                .configs
                .entry_mut(NodeId(5))
                .set(Connection::L_TO_R)
                .expect("n5 unused in round 0");
        }
        Mutation::MaskedHardware => {
            // The schedule is honest, but the artifact claims a mask under
            // which c0's last hop (down to leaf 7 = n15) is dead — keeping
            // c0 scheduled anyway crosses masked hardware.
            let mut mask = FaultMask::empty(&f.topo);
            assert!(mask.kill_link(DirectedLink::down_to(NodeId(15))));
            f.fault = Some(FaultScenario { mask, dropped: Vec::new() });
        }
        Mutation::HalfDuplexTraffic => {
            // Two disjoint comms legally share one round, but they drive
            // the edge above n5 in opposite directions — illegal once that
            // edge degrades to half-duplex.
            let topo = CstTopology::with_leaves(8);
            let set = CommSet::from_pairs(8, &[(0, 2), (3, 6)]);
            let schedule = Schedule { rounds: vec![round_of(&topo, &set, &[0, 1])] };
            let counters = Some(expected_counters(&topo, &set));
            let mut mask = FaultMask::empty(&topo);
            assert!(mask.degrade_edge(NodeId(5)));
            f = Fixture {
                topo,
                set,
                schedule,
                counters,
                options: CheckOptions::strict(),
                fault: Some(FaultScenario { mask, dropped: Vec::new() }),
            };
        }
        Mutation::BogusDrop => {
            // c2 is reported dropped, but the claimed mask is empty:
            // nothing blocks its path, so the drop is a router bug. The
            // empty padding round keeps Theorem 5 satisfied.
            f.schedule.rounds[2] = Round::default();
            f.fault = Some(FaultScenario {
                mask: FaultMask::empty(&f.topo),
                dropped: vec![2],
            });
        }
    }
    f
}

/// One corruption per `CST3xx` decomposition-audit class (the third
/// harness, alongside [`Mutation`] and `cst-model`'s `TraceMutation`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompMutation {
    /// Two conflicting pairs forced into one layer (`CST300`).
    LayerConflict,
    /// A pair's round moved into another layer's band (`CST301`).
    BandLeak,
    /// A pair deleted from its layer and the composite (`CST302`).
    CoverageGap,
    /// The claimed lower bound inflated past its witness (`CST303`).
    BogusCertificate,
}

impl DecompMutation {
    /// Every decomposition mutation, in code order.
    pub const ALL: [DecompMutation; 4] = [
        DecompMutation::LayerConflict,
        DecompMutation::BandLeak,
        DecompMutation::CoverageGap,
        DecompMutation::BogusCertificate,
    ];

    /// The one diagnostic this corruption must produce.
    pub fn expected_code(self) -> DiagCode {
        match self {
            DecompMutation::LayerConflict => DiagCode::LayerNotWellNested,
            DecompMutation::BandLeak => DiagCode::LayerRoundOverlap,
            DecompMutation::CoverageGap => DiagCode::DecompCoverage,
            DecompMutation::BogusCertificate => DiagCode::CertificateViolation,
        }
    }
}

/// A complete decomposition-audit subject: the general set, its claimed
/// decomposition, and the composite schedule with its round bands.
#[derive(Clone, Debug)]
pub struct DecompFixture {
    pub topo: CstTopology,
    pub gset: cst_core::GeneralCommSet,
    pub decomp: cst_decomp::Decomposition,
    pub composite: Schedule,
    pub layer_rounds: Vec<usize>,
}

/// Audit a decomposition fixture (the decomposition analogue of [`run`]).
pub fn run_decomp(f: &DecompFixture) -> DiagReport {
    crate::decomp::check_decomposition(&f.topo, &f.gset, &f.decomp, &f.composite, &f.layer_rounds)
}

fn bands_of(decomp: &cst_decomp::Decomposition) -> Schedule {
    let rounds = decomp
        .layers
        .iter()
        .map(|ids| Round {
            comms: ids.iter().map(|&i| CommId(i)).collect(),
            configs: RoundConfigs::new(),
        })
        .collect();
    Schedule { rounds }
}

fn layer_set_of(gset: &cst_core::GeneralCommSet, ids: &[usize]) -> CommSet {
    let pairs: Vec<(usize, usize)> = ids
        .iter()
        .map(|&i| {
            let (s, d) = gset.pairs()[i];
            (s.0, d.0)
        })
        .collect();
    CommSet::from_pairs(gset.num_leaves(), &pairs)
}

/// The known-clean decomposition baseline: a hotspot pair plus a
/// crossing on 8 PEs — two layers, endpoint bound 2, provably minimal.
/// Each layer's band is one round scheduling the whole layer (the audit
/// is structural; round legality is [`crate::analyze`]'s job).
pub fn clean_decomp_fixture() -> DecompFixture {
    let topo = CstTopology::with_leaves(8);
    // id 0 = (0,3), id 1 = (0,5), id 2 = (1,4): 0 conflicts with both
    // (endpoint 0, crossing 1–4), 1 and 2 nest.
    let gset = cst_core::GeneralCommSet::from_pairs(8, &[(0, 3), (0, 5), (1, 4)]);
    let decomp = cst_decomp::decompose(&gset);
    assert_eq!(decomp.num_layers(), 2, "fixture decomposes to two layers");
    assert_eq!(decomp.lower_bound, 2, "leaf 0 carries two pairs");
    let composite = bands_of(&decomp);
    let layer_rounds = vec![1; decomp.num_layers()];
    DecompFixture { topo, gset, decomp, composite, layer_rounds }
}

/// The clean decomposition fixture with exactly one corruption applied.
pub fn corrupted_decomp(m: DecompMutation) -> DecompFixture {
    let mut f = clean_decomp_fixture();
    match m {
        DecompMutation::LayerConflict => {
            // Move pair #2 = (1,4) into pair #0 = (0,3)'s layer: they
            // cross (0 < 1 < 3 < 4) but keep unique endpoints, so the
            // mutated layer still materializes as a CommSet and every
            // partition/band invariant stays intact — only the
            // conflict-freedom of the layer is at fault.
            let from = f.decomp.layer_of[2];
            let to = f.decomp.layer_of[0];
            assert_ne!(from, to, "fixture separates pairs #0 and #2");
            f.decomp.layers[from].retain(|&i| i != 2);
            f.decomp.layers[to].push(2);
            f.decomp.layer_of[2] = to;
            for j in [from, to] {
                f.decomp.layer_sets[j] = layer_set_of(&f.gset, &f.decomp.layers[j]);
            }
            f.composite = bands_of(&f.decomp);
        }
        DecompMutation::BandLeak => {
            // Reschedule pair #0 in the other layer's band round. Every
            // pair still runs exactly once (coverage is clean); only the
            // band structure lies.
            let home = f.decomp.layer_of[0];
            let foreign = 1 - home;
            f.composite.rounds[home].comms.retain(|&CommId(i)| i != 0);
            f.composite.rounds[foreign].comms.push(CommId(0));
        }
        DecompMutation::CoverageGap => {
            // Delete pair #2 from its layer, its materialized set and
            // its band round: the layers no longer partition the input.
            let j = f.decomp.layer_of[2];
            f.decomp.layers[j].retain(|&i| i != 2);
            f.decomp.layer_sets[j] = layer_set_of(&f.gset, &f.decomp.layers[j]);
            f.composite.rounds[j].comms.retain(|&CommId(i)| i != 2);
        }
        DecompMutation::BogusCertificate => {
            // Claim a bound of 3 with a 2-member witness: the witness no
            // longer certifies the bound (and 3 exceeds the 2 layers).
            f.decomp.lower_bound += 1;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_exhaustive_and_codes_distinct() {
        let mut codes: Vec<_> = Mutation::ALL.iter().map(|m| m.expected_code()).collect();
        codes.sort_by_key(|c| c.as_str());
        codes.dedup();
        assert_eq!(codes.len(), Mutation::ALL.len());
        // The CST2xx model-conformance codes are exercised by the trace
        // mutation harness in `cst-model` and the CST3xx decomposition
        // codes by [`DecompMutation`]; together the three harnesses
        // cover `DiagCode::ALL` (asserted in `cst-model`, where all
        // three are in scope).
        assert_eq!(
            codes.len(),
            DiagCode::ALL.iter().filter(|c| !c.is_model() && !c.is_decomp()).count()
        );
    }

    #[test]
    fn decomp_mutations_cover_cst3xx_distinctly() {
        let mut codes: Vec<_> = DecompMutation::ALL.iter().map(|m| m.expected_code()).collect();
        codes.sort_by_key(|c| c.as_str());
        codes.dedup();
        assert_eq!(codes.len(), DecompMutation::ALL.len());
        assert!(codes.iter().all(|c| c.is_decomp()));
        assert_eq!(codes.len(), DiagCode::ALL.iter().filter(|c| c.is_decomp()).count());
    }

    #[test]
    fn clean_fixture_is_clean() {
        assert!(run(&clean_fixture()).is_clean());
    }

    #[test]
    fn clean_decomp_fixture_is_clean() {
        let report = run_decomp(&clean_decomp_fixture());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn each_decomp_mutation_fires_exactly_its_code() {
        for m in DecompMutation::ALL {
            let report = run_decomp(&corrupted_decomp(m));
            assert!(report.has_errors(), "{m:?} produced a clean report");
            for d in report.errors() {
                assert_eq!(d.code, m.expected_code(), "{m:?} leaked {}: {}", d.code, d.message);
            }
        }
    }
}
