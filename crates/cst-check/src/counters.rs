//! Lemma 1 / Phase-1 counter conservation.
//!
//! Phase 1 of the CSA leaves each switch `u` with `C_S = [M, S_L − M, D_L,
//! S_R, D_R − M]` and each node with the forwarded `C_U = [S_L − M + S_R,
//! D_L + D_R − M]`, where `M = min(S_L, D_R)` (Lemma 1). Both tables are
//! pure functions of the input set, so a checker can recompute them
//! bottom-up from the PE roles alone and diff an artifact's claimed tables
//! against the ground truth — no protocol execution involved.

use cst_comm::CommSet;
use cst_core::diag::{DiagCode, DiagReport, Diagnostic};
use cst_core::{CstTopology, NodeId, PeRole};
use serde::{Deserialize, Serialize};

/// The Phase-1 counter tables of one run, dense over `NodeId::index()`.
///
/// `states[u]` is `C_S(u) = [M, S_L − M, D_L, S_R, D_R − M]` (zeroed at
/// leaves and the unused slots 0..2); `up[u]` is the message `C_U` node `u`
/// sent its parent, `[sources, dests]` (at leaves: the role announcement).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTable {
    pub states: Vec<[u32; 5]>,
    pub up: Vec<[u32; 2]>,
}

/// Recompute the ground-truth counter tables for `set` on `topo`: the same
/// bottom-up sweep as Phase 1, derived here independently so the checker
/// does not inherit a scheduler bug.
pub fn expected_counters(topo: &CstTopology, set: &CommSet) -> CounterTable {
    let n = topo.node_table_len();
    let mut states = vec![[0u32; 5]; n];
    let mut up = vec![[0u32; 2]; n];

    let roles = set.roles();
    for leaf in topo.leaves() {
        up[topo.leaf_node(leaf).index()] = match roles[leaf.0] {
            PeRole::Source => [1, 0],
            PeRole::Destination => [0, 1],
            PeRole::Idle => [0, 0],
        };
    }
    for u in topo.switches_bottom_up() {
        let [sl, dl] = up[u.left_child().index()];
        let [sr, dr] = up[u.right_child().index()];
        let m = sl.min(dr);
        states[u.index()] = [m, sl - m, dl, sr, dr - m];
        up[u.index()] = [sl - m + sr, dl + dr - m];
    }
    CounterTable { states, up }
}

/// Diff a claimed counter table against [`expected_counters`].
///
/// * `CST050` — a switch's `C_S` disagrees with Lemma 1 (wrong `M`, or
///   wrong residuals), one diagnostic per switch;
/// * `CST051` — a node's forwarded `C_U` breaks conservation on the way
///   up, one diagnostic per node.
///
/// The two passes are independent so a corruption in one table is
/// attributed precisely.
pub fn check_counters(topo: &CstTopology, set: &CommSet, table: &CounterTable) -> DiagReport {
    let mut report = DiagReport::new();
    let truth = expected_counters(topo, set);
    let n = topo.node_table_len();

    if table.states.len() != n || table.up.len() != n {
        report.push(Diagnostic::new(
            DiagCode::CounterMismatch,
            format!(
                "counter tables sized {}/{} but the topology has {n} node slots",
                table.states.len(),
                table.up.len()
            ),
        ));
        return report;
    }
    for i in 1..n {
        if table.states[i] != truth.states[i] {
            report.push(
                Diagnostic::new(
                    DiagCode::CounterMismatch,
                    format!(
                        "C_S is {:?}, but Lemma 1 gives {:?}",
                        table.states[i], truth.states[i]
                    ),
                )
                .with_node(NodeId(i)),
            );
        }
    }
    for i in 1..n {
        if table.up[i] != truth.up[i] {
            report.push(
                Diagnostic::new(
                    DiagCode::CounterFlow,
                    format!(
                        "forwarded C_U is {:?}, but conservation gives {:?}",
                        table.up[i], truth.up[i]
                    ),
                )
                .with_node(NodeId(i)),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (CstTopology, CommSet) {
        (CstTopology::with_leaves(8), CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]))
    }

    #[test]
    fn expected_tables_obey_lemma_1() {
        let (topo, set) = fixture();
        let t = expected_counters(&topo, &set);
        // Root matches all three pairs; nothing escapes upward.
        assert_eq!(t.states[NodeId::ROOT.index()][0], 3);
        assert_eq!(t.up[NodeId::ROOT.index()], [0, 0]);
        // Every switch: M = min(S_L, D_R) means the residuals can't both
        // be positive.
        for s in &t.states {
            assert!(s[1] == 0 || s[4] == 0);
        }
        assert!(check_counters(&topo, &set, &t).is_clean());
    }

    #[test]
    fn state_corruption_is_cst050_only() {
        let (topo, set) = fixture();
        let mut t = expected_counters(&topo, &set);
        t.states[NodeId::ROOT.index()][0] += 1;
        let rep = check_counters(&topo, &set, &t);
        assert_eq!(rep.error_count(), 1);
        assert_eq!(rep.diagnostics[0].code, DiagCode::CounterMismatch);
        assert_eq!(rep.diagnostics[0].node, Some(NodeId::ROOT));
    }

    #[test]
    fn up_corruption_is_cst051_only() {
        let (topo, set) = fixture();
        let mut t = expected_counters(&topo, &set);
        t.up[2] = [9, 9];
        let rep = check_counters(&topo, &set, &t);
        assert_eq!(rep.error_count(), 1);
        assert_eq!(rep.diagnostics[0].code, DiagCode::CounterFlow);
    }

    #[test]
    fn size_mismatch_is_reported_not_panicked() {
        let (topo, set) = fixture();
        let t = CounterTable::default();
        let rep = check_counters(&topo, &set, &t);
        assert!(rep.has_errors());
    }

    #[test]
    fn counter_table_serde_roundtrip() {
        let (topo, set) = fixture();
        let t = expected_counters(&topo, &set);
        let json = serde_json::to_string(&t).unwrap();
        let back: CounterTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
