//! # cst-check — static schedule/protocol analyzer for the CST
//!
//! Inspects a [`Schedule`] + [`CommSet`] *without simulating the protocol*
//! and emits typed diagnostics — each with a stable `CST0xx` code,
//! severity, location (round, switch, port, link) and a human message —
//! plus a machine-readable JSON report (format pinned in
//! `tests/golden_report.rs`; code table in `docs/DIAGNOSTICS.md`).
//!
//! Independent passes over the flat round tables:
//!
//! * **input set** — well-nestedness and orientation (§2.1);
//! * **rounds** — coverage, link compatibility, config/circuit match,
//!   legality, double-stamp ownership (Theorem 4; shared with
//!   [`Schedule::verify`] via [`cst_comm::check_rounds`]);
//! * **round count** — `rounds == w` (Theorem 5);
//! * **transitions** — per-switch port-transition budget by replaying the
//!   schedule's configuration *diffs* (Theorem 8);
//! * **selection order** — outermost-first `O_c(u)` at every matching
//!   switch (§4);
//! * **counters** — Phase-1 `C_S`/`C_U` conservation, `M = min(S_L, D_R)`
//!   (Lemma 1; [`counters`], for artifacts that carry the tables).
//!
//! The runtime verifiers delegate here, so static and runtime verification
//! share one diagnostic vocabulary. The analyzer itself is proven by a
//! mutation harness ([`mutation`]): one corruption per diagnostic class,
//! asserting exactly the expected code fires.
//!
//! ```
//! use cst_core::CstTopology;
//! use cst_comm::CommSet;
//! use cst_check::{analyze, CheckOptions};
//!
//! let topo = CstTopology::with_leaves(8);
//! let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]);
//! let schedule = cst_comm::Schedule::default(); // performs nothing
//! let report = analyze(&topo, &set, &schedule, &CheckOptions::default());
//! assert!(report.has_errors()); // CST012: comms never scheduled
//! ```

pub mod bundle;
pub mod counters;
pub mod decomp;
pub mod mutation;
pub mod passes;

use cst_comm::{CommSet, Schedule};
use cst_core::CstTopology;

pub use bundle::ScheduleBundle;
pub use counters::{check_counters, expected_counters, CounterTable};
pub use cst_core::diag::{DiagCode, DiagReport, Diagnostic, Severity};
pub use decomp::check_decomposition;
pub use mutation::{
    clean_decomp_fixture, clean_fixture, corrupted, corrupted_decomp, run_decomp, DecompFixture,
    DecompMutation, FaultScenario, Fixture, Mutation,
};
pub use passes::{
    check_faults, check_round_count, check_selection_order, check_set, check_transitions,
    max_static_transitions, static_port_transitions,
};

/// Empirical constant bound for per-switch port transitions under CSA.
///
/// Lemmas 6–7 bound each of the three control streams a switch receives to
/// at most two alternations; each alternation re-aims at most one port, and
/// each port serves at most two distinct drivers per stream block. Nine
/// (three ports × three transitions) is a safe constant; measured maxima
/// are reported per-experiment in EXPERIMENTS.md and are typically <= 6.
pub const CSA_PORT_TRANSITION_BOUND: u32 = 9;

/// Which optional passes [`analyze`] runs. The round-level Theorem 4 /
/// ownership checks always run; the remaining passes encode properties
/// only CSA-class schedules promise, so baseline or mixed-orientation
/// schedules are analyzed with [`CheckOptions::lenient`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckOptions {
    /// Expect the input set to be right-oriented (`CST002`).
    pub require_right_oriented: bool,
    /// Expect `rounds == width` (Theorem 5, `CST030`).
    pub optimal_rounds: bool,
    /// Expect outermost-first selection order on every link (`CST060`).
    pub selection_order: bool,
    /// Per-switch port-transition budget (Theorem 8, `CST040`);
    /// `None` disables the pass.
    pub transition_bound: Option<u32>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions::strict()
    }
}

impl CheckOptions {
    /// Full CSA contract: Theorems 4, 5 and 8 plus selection order.
    pub fn strict() -> Self {
        CheckOptions {
            require_right_oriented: true,
            optimal_rounds: true,
            selection_order: true,
            transition_bound: Some(CSA_PORT_TRANSITION_BOUND),
        }
    }

    /// Correctness only (Theorem 4 + ownership): for baselines, merged
    /// mixed-orientation schedules, or any schedule that never promised
    /// optimality.
    pub fn lenient() -> Self {
        CheckOptions {
            require_right_oriented: false,
            optimal_rounds: false,
            selection_order: false,
            transition_bound: None,
        }
    }
}

/// Run every enabled pass and collect all findings.
///
/// Never stops at the first problem: the report carries everything found,
/// in pass order (set structure, rounds, round count, transitions,
/// selection order). See [`counters::check_counters`] for the Lemma 1 pass,
/// which needs the Phase-1 tables and is therefore not derivable from a
/// `Schedule` alone.
pub fn analyze(
    topo: &CstTopology,
    set: &CommSet,
    schedule: &Schedule,
    options: &CheckOptions,
) -> DiagReport {
    let mut report = passes::check_set(set, options.require_right_oriented);
    // Selection order is defined through interval containment, which only
    // means "shares links with" on right-oriented well-nested sets.
    let set_is_canonical = report.is_clean() && set.is_well_nested() && set.is_right_oriented();

    report.merge(cst_comm::check_rounds(topo, set, schedule));
    if options.optimal_rounds {
        report.merge(passes::check_round_count(topo, set, schedule));
    }
    if let Some(bound) = options.transition_bound {
        report.merge(passes::check_transitions(topo, schedule, bound));
    }
    if options.selection_order && set_is_canonical {
        report.merge(passes::check_selection_order(topo, set, schedule));
    }
    report
}

/// [`analyze`] for degraded artifacts: a schedule routed under a hardware
/// [`FaultMask`] with `dropped` listing the communications the router
/// classified unroutable.
///
/// Runs every pass of [`analyze`], then replaces its coverage verdicts
/// with the fault-aware ones: plain `CST012` findings for communications
/// on the drop list are discarded (the absence is legitimate — whether
/// the drop itself was, `CST102` decides), and
/// [`passes::check_faults`] contributes the `CST10x` fault-model audit.
///
/// Note `optimal_rounds` still compares against the *full* set's width;
/// analyze degraded schedules with [`CheckOptions::lenient`] (or
/// `optimal_rounds: false`) when drops are expected.
pub fn analyze_with_faults(
    topo: &CstTopology,
    set: &CommSet,
    schedule: &Schedule,
    options: &CheckOptions,
    mask: &cst_core::FaultMask,
    dropped: &[usize],
) -> DiagReport {
    let mut report = analyze(topo, set, schedule, options);
    report.diagnostics.retain(|d| {
        !(d.code == DiagCode::MissingComm && d.comms.iter().any(|c| dropped.contains(c)))
    });
    report.merge(passes::check_faults(topo, set, schedule, mask, dropped));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_empty_schedule_is_clean() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::empty(8);
        let report = analyze(&topo, &set, &Schedule::default(), &CheckOptions::strict());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn missing_everything_is_flagged() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]);
        let report = analyze(&topo, &set, &Schedule::default(), &CheckOptions::strict());
        // two CST012 plus CST030 (0 rounds != width 2)
        assert!(report.error_count() >= 3);
    }
}
