//! Decomposition audit — the `CST3xx` family.
//!
//! A layered routing artifact (a [`GeneralCommSet`], its
//! [`Decomposition`], the composite [`Schedule`] and the per-layer round
//! bands) promises four composition invariants, each with its own code:
//!
//! * **CST300** — every layer is conflict-free: no two member pairs
//!   cross or share an endpoint, so the layer is a legal well-nested
//!   `CommSet`;
//! * **CST301** — the bands tile the composite: `layer_rounds` sums to
//!   the composite's round count and every round in layer `j`'s band
//!   schedules only layer `j`'s pairs;
//! * **CST302** — the layers partition the input: every input pair id
//!   sits in exactly one layer, the materialized layer sets mirror the
//!   id lists, and the composite schedules each pair exactly once;
//! * **CST303** — the lower-bound certificate is sound: the witness has
//!   `lower_bound` distinct members that pairwise conflict, the bound
//!   does not exceed the layer count actually produced, and meeting the
//!   bound is claimed as proven optimality.
//!
//! Like every pass here this is structural: it never re-runs the
//! decomposition, so it audits artifacts from any producer (the engine,
//! a replay file, a foreign tool). Round-level legality of each band is
//! [`crate::analyze`]'s job on the sliced layer (see
//! `cst_decomp::slice_layer`).

use cst_comm::{CommId, Schedule};
use cst_core::diag::{DiagCode, DiagReport, Diagnostic};
use cst_core::{CstTopology, GeneralCommSet};
use cst_decomp::Decomposition;

/// Audit the composition invariants of one layered routing artifact.
pub fn check_decomposition(
    topo: &CstTopology,
    gset: &GeneralCommSet,
    decomp: &Decomposition,
    composite: &Schedule,
    layer_rounds: &[usize],
) -> DiagReport {
    let mut report = DiagReport::new();
    let m = gset.len();

    // --- CST302: the layers partition the input pair ids -------------
    if decomp.num_leaves != gset.num_leaves() || gset.num_leaves() != topo.num_leaves() {
        report.push(Diagnostic::new(
            DiagCode::DecompCoverage,
            format!(
                "leaf counts disagree: decomposition {}, set {}, topology {}",
                decomp.num_leaves,
                gset.num_leaves(),
                topo.num_leaves()
            ),
        ));
    }
    if decomp.layer_of.len() != m {
        report.push(Diagnostic::new(
            DiagCode::DecompCoverage,
            format!("layer_of table covers {} ids, input has {m}", decomp.layer_of.len()),
        ));
    }
    let mut seen = vec![0usize; m];
    for (j, ids) in decomp.layers.iter().enumerate() {
        for &i in ids {
            if i >= m {
                report.push(Diagnostic::new(
                    DiagCode::DecompCoverage,
                    format!("layer {j} names input pair #{i}, past the {m} input pairs"),
                ));
                continue;
            }
            seen[i] += 1;
            if decomp.layer_of.get(i) != Some(&j) {
                report.push(
                    Diagnostic::new(
                        DiagCode::DecompCoverage,
                        format!("layer {j} lists pair #{i} but layer_of assigns it elsewhere"),
                    )
                    .with_comm(i),
                );
            }
        }
    }
    for (i, &count) in seen.iter().enumerate() {
        if count != 1 {
            report.push(
                Diagnostic::new(
                    DiagCode::DecompCoverage,
                    format!("input pair #{i} appears in {count} layers (must be exactly 1)"),
                )
                .with_comm(i),
            );
        }
    }
    if decomp.layer_sets.len() != decomp.layers.len() {
        report.push(Diagnostic::new(
            DiagCode::DecompCoverage,
            format!(
                "{} materialized layer sets for {} id layers",
                decomp.layer_sets.len(),
                decomp.layers.len()
            ),
        ));
    }
    for (j, (ids, set)) in decomp.layers.iter().zip(&decomp.layer_sets).enumerate() {
        if set.len() != ids.len() || set.num_leaves() != gset.num_leaves() {
            report.push(Diagnostic::new(
                DiagCode::DecompCoverage,
                format!("layer {j}: materialized set shape does not match its id list"),
            ));
            continue;
        }
        for (k, &i) in ids.iter().enumerate() {
            if i >= m {
                continue; // already flagged above
            }
            let (s, d) = gset.pairs()[i];
            let c = set.comms()[k];
            if (c.source.0, c.dest.0) != (s.0, d.0) {
                report.push(
                    Diagnostic::new(
                        DiagCode::DecompCoverage,
                        format!("layer {j} entry {k} does not match input pair #{i}"),
                    )
                    .with_comm(i),
                );
            }
        }
    }

    // --- CST300: every layer is pairwise conflict-free ----------------
    for (j, ids) in decomp.layers.iter().enumerate() {
        for (a, &x) in ids.iter().enumerate() {
            if x >= m {
                continue;
            }
            for &y in &ids[a + 1..] {
                if y >= m || x == y {
                    continue;
                }
                if gset.conflicts(x, y) {
                    report.push(
                        Diagnostic::new(
                            DiagCode::LayerNotWellNested,
                            format!("layer {j}: pairs #{x} and #{y} cross or share an endpoint"),
                        )
                        .with_comm(x)
                        .with_comm(y),
                    );
                }
            }
        }
    }

    // --- CST301: the bands tile the composite -------------------------
    if layer_rounds.len() != decomp.layers.len() {
        report.push(Diagnostic::new(
            DiagCode::LayerRoundOverlap,
            format!("{} round bands for {} layers", layer_rounds.len(), decomp.layers.len()),
        ));
    }
    let banded: usize = layer_rounds.iter().sum();
    if banded != composite.num_rounds() {
        report.push(Diagnostic::new(
            DiagCode::LayerRoundOverlap,
            format!("bands cover {banded} rounds, composite has {}", composite.num_rounds()),
        ));
    }
    let mut offset = 0usize;
    for (j, &band) in layer_rounds.iter().enumerate() {
        let end = (offset + band).min(composite.rounds.len());
        for r in offset..end {
            for &CommId(i) in &composite.rounds[r].comms {
                if i >= m || decomp.layer_of.get(i) != Some(&j) {
                    report.push(
                        Diagnostic::new(
                            DiagCode::LayerRoundOverlap,
                            format!("round {r} sits in layer {j}'s band but schedules pair #{i}"),
                        )
                        .with_round(r)
                        .with_comm(i),
                    );
                }
            }
        }
        offset += band;
    }
    let mut scheduled = vec![0usize; m];
    for round in &composite.rounds {
        for &CommId(i) in &round.comms {
            if i < m {
                scheduled[i] += 1;
            }
        }
    }
    for (i, &count) in scheduled.iter().enumerate() {
        if count != 1 {
            report.push(
                Diagnostic::new(
                    DiagCode::DecompCoverage,
                    format!("input pair #{i} is scheduled {count} times in the composite"),
                )
                .with_comm(i),
            );
        }
    }

    // --- CST303: the certificate is sound -----------------------------
    let witness = &decomp.witness;
    if witness.len() != decomp.lower_bound {
        report.push(Diagnostic::new(
            DiagCode::CertificateViolation,
            format!(
                "witness has {} members for a claimed bound of {}",
                witness.len(),
                decomp.lower_bound
            ),
        ));
    }
    let mut ids_valid = true;
    for &i in witness {
        if i >= m {
            report.push(Diagnostic::new(
                DiagCode::CertificateViolation,
                format!("witness names input pair #{i}, past the {m} input pairs"),
            ));
            ids_valid = false;
        }
    }
    let mut sorted = witness.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != witness.len() {
        report.push(Diagnostic::new(
            DiagCode::CertificateViolation,
            "witness repeats a member".to_string(),
        ));
    }
    if ids_valid {
        for (a, &x) in witness.iter().enumerate() {
            for &y in &witness[a + 1..] {
                if x != y && !gset.conflicts(x, y) {
                    report.push(
                        Diagnostic::new(
                            DiagCode::CertificateViolation,
                            format!("witness pairs #{x} and #{y} do not conflict"),
                        )
                        .with_comm(x)
                        .with_comm(y),
                    );
                }
            }
        }
    }
    if m > 0 && decomp.lower_bound > decomp.layers.len() {
        report.push(Diagnostic::new(
            DiagCode::CertificateViolation,
            format!(
                "claimed bound {} exceeds the {} layers actually produced",
                decomp.lower_bound,
                decomp.layers.len()
            ),
        ));
    }
    if m > 0 && decomp.layers.len() == decomp.lower_bound && !decomp.proven_optimal {
        report.push(Diagnostic::new(
            DiagCode::CertificateViolation,
            "layer count meets the bound but optimality is not claimed".to_string(),
        ));
    }
    report
}
