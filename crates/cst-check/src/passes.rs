//! The schedule-level analysis passes: input-set structure, round count
//! (Theorem 5), port-transition budget (Theorem 8) and selection order
//! (§4). The round-level Theorem 4 / ownership pass lives in
//! [`cst_comm::check_rounds`] so `Schedule::verify` can reach it without a
//! dependency cycle.

use cst_comm::{width_on_topology, CommSet, Orientation, Schedule};
use cst_core::diag::{DiagCode, DiagReport, Diagnostic};
use cst_core::{CstTopology, FaultMask, SwitchConfig};

/// Structural checks on the input set: well-nestedness (`CST001`) and —
/// when `require_right_oriented` — orientation (`CST002`).
pub fn check_set(set: &CommSet, require_right_oriented: bool) -> DiagReport {
    let mut report = DiagReport::new();
    if let Some((a, b)) = set.well_nested_violation() {
        report.push(
            Diagnostic::new(
                DiagCode::NotWellNested,
                format!("communications {a} and {b} cross: set is not well-nested"),
            )
            .with_comm(a.0)
            .with_comm(b.0),
        );
    }
    if require_right_oriented {
        for (id, c) in set.iter() {
            if c.orientation() != Orientation::Right {
                report.push(
                    Diagnostic::new(
                        DiagCode::NotRightOriented,
                        format!("{id} runs {}->{}: not right-oriented", c.source, c.dest),
                    )
                    .with_comm(id.0),
                );
            }
        }
    }
    report
}

/// Theorem 5: an optimal schedule uses exactly `w` rounds, where `w` is the
/// maximum directed-link load (`CST030`).
pub fn check_round_count(topo: &CstTopology, set: &CommSet, schedule: &Schedule) -> DiagReport {
    let mut report = DiagReport::new();
    let width = width_on_topology(topo, set) as usize;
    let rounds = schedule.num_rounds();
    if rounds != width {
        report.push(Diagnostic::new(
            DiagCode::RoundCountMismatch,
            format!("schedule uses {rounds} rounds but the set has width {width}"),
        ));
    }
    report
}

/// Per-switch port transitions implied by the schedule alone: replay the
/// recorded configurations round by round against a persistent per-switch
/// state, counting every output-port driver change — the same hold
/// semantics the runtime [`cst_core::PowerMeter`] charges, but derived by
/// pure diffing, no protocol simulation.
pub fn static_port_transitions(topo: &CstTopology, schedule: &Schedule) -> Vec<u32> {
    let mut held = vec![SwitchConfig::empty(); topo.node_table_len()];
    let mut transitions = vec![0u32; topo.node_table_len()];
    for round in &schedule.rounds {
        for (node, cfg) in &round.configs {
            let h = &mut held[node.index()];
            for c in cfg.connections() {
                if !c.is_legal() {
                    continue; // CST022's domain; force() would debug-panic
                }
                if h.driver_of(c.to) != Some(c.from) {
                    transitions[node.index()] += 1;
                }
                h.force(c);
            }
        }
    }
    transitions
}

/// The maximum over switches of [`static_port_transitions`].
pub fn max_static_transitions(topo: &CstTopology, schedule: &Schedule) -> u32 {
    static_port_transitions(topo, schedule).into_iter().max().unwrap_or(0)
}

/// Theorem 8: every switch stays within the O(1) port-transition budget
/// (`CST040`), one diagnostic per offending switch.
pub fn check_transitions(topo: &CstTopology, schedule: &Schedule, bound: u32) -> DiagReport {
    let mut report = DiagReport::new();
    for (i, &t) in static_port_transitions(topo, schedule).iter().enumerate() {
        if t > bound {
            report.push(
                Diagnostic::new(
                    DiagCode::TransitionBudget,
                    format!("{t} port transitions exceed the O(1) budget {bound}"),
                )
                .with_node(cst_core::NodeId(i)),
            );
        }
    }
    report
}

/// Fault-model audit of a degraded schedule (`CST10x`, docs/FAULTS.md).
///
/// `dropped` is the set of communication ids the router claims are
/// unroutable under `mask`. The pass checks the three fault invariants:
///
/// * **CST100** — no scheduled communication's circuit crosses a dead
///   link or a dead switch (the path is unique, so walking it is exact);
/// * **CST101** — no round drives a degraded (half-duplex) edge in both
///   directions;
/// * **CST102** — every dropped communication really is unroutable: a
///   drop with no blocking fault on its path is a router bug.
///
/// It also re-checks coverage under the drop list, since plain
/// `check_rounds` coverage (CST012) cannot know which absences are
/// legitimate: a communication neither scheduled nor dropped is
/// `CST012` here, and one *both* scheduled and dropped is `CST011`.
pub fn check_faults(
    topo: &CstTopology,
    set: &CommSet,
    schedule: &Schedule,
    mask: &FaultMask,
    dropped: &[usize],
) -> DiagReport {
    let mut report = DiagReport::new();
    let mut is_dropped = vec![false; set.len()];
    for &id in dropped {
        if let Some(slot) = is_dropped.get_mut(id) {
            *slot = true;
        }
    }
    let mut scheduled = vec![false; set.len()];
    // Per-round direction usage of each degraded edge, child-node indexed:
    // bit 0 = upward, bit 1 = downward.
    let mut edge_dirs = vec![0u8; topo.node_table_len()];
    for (r, round) in schedule.rounds.iter().enumerate() {
        edge_dirs.iter_mut().for_each(|d| *d = 0);
        for &id in &round.comms {
            let Some(c) = set.comms().get(id.0) else { continue };
            scheduled[id.0] = true;
            for link in topo.path_links(c.source, c.dest) {
                if mask.link_dead(link) {
                    report.push(
                        Diagnostic::new(
                            DiagCode::MaskedLinkUsed,
                            format!("{id} crosses dead link {link}"),
                        )
                        .with_round(r)
                        .with_comm(id.0)
                        .with_link(link.child, link.up),
                    );
                }
                if let Some(sw) = link.child.parent() {
                    if mask.switch_dead(sw) {
                        report.push(
                            Diagnostic::new(
                                DiagCode::MaskedLinkUsed,
                                format!("{id} routes through dead switch {sw}"),
                            )
                            .with_round(r)
                            .with_comm(id.0)
                            .with_node(sw),
                        );
                    }
                }
                if mask.edge_degraded(link.child) {
                    edge_dirs[link.child.index()] |= if link.up { 0b01 } else { 0b10 };
                }
            }
        }
        for &edge in mask.degraded_edges() {
            if edge_dirs[edge.index()] == 0b11 {
                report.push(
                    Diagnostic::new(
                        DiagCode::HalfDuplexViolation,
                        format!("degraded edge above {edge} driven in both directions"),
                    )
                    .with_round(r)
                    .with_node(edge),
                );
            }
        }
    }
    for (id, c) in set.iter() {
        match (scheduled[id.0], is_dropped[id.0]) {
            (false, false) => report.push(
                Diagnostic::new(
                    DiagCode::MissingComm,
                    format!("{id} neither scheduled nor reported dropped"),
                )
                .with_comm(id.0),
            ),
            (true, true) => report.push(
                Diagnostic::new(
                    DiagCode::DuplicateComm,
                    format!("{id} reported dropped but present in the schedule"),
                )
                .with_comm(id.0),
            ),
            (false, true) => {
                if mask.blocking_fault(topo, c.source, c.dest).is_none() {
                    report.push(
                        Diagnostic::new(
                            DiagCode::DroppedRoutable,
                            format!(
                                "{id} ({} -> {}) was dropped but no fault blocks its path",
                                c.source, c.dest
                            ),
                        )
                        .with_comm(id.0),
                    );
                }
            }
            (true, false) => {}
        }
    }
    report
}

/// The switch a communication is matched at: the LCA of its endpoints,
/// where the circuit turns around (`l_i -> r_o` for right-oriented sets).
fn apex(topo: &CstTopology, source: cst_core::LeafId, dest: cst_core::LeafId) -> cst_core::NodeId {
    let mut a = topo.leaf_node(source).0;
    let mut b = topo.leaf_node(dest).0;
    while a != b {
        if a > b {
            a >>= 1;
        } else {
            b >>= 1;
        }
    }
    cst_core::NodeId(a)
}

/// §4 selection order `O_c(u)`: the communications matched at one switch
/// `u` all need `u`'s `r_o` port, so they run in distinct rounds — and the
/// CSA picks them outermost-first, so round indices must strictly increase
/// from the enclosing communication inward (`CST060`). The order is *per
/// matching switch*: communications matched at different switches are
/// scheduled independently, and a globally inner one may legitimately run
/// first. Equal rounds are a port conflict (`CST020`/`CST021` territory),
/// not a selection-order finding, and are skipped here.
///
/// Only meaningful for right-oriented well-nested sets; [`crate::analyze`]
/// guards the call accordingly.
pub fn check_selection_order(
    topo: &CstTopology,
    set: &CommSet,
    schedule: &Schedule,
) -> DiagReport {
    let mut report = DiagReport::new();
    // First (and, for clean schedules, only) round of each communication.
    let mut round_of: Vec<Option<usize>> = vec![None; set.len()];
    for (r, round) in schedule.rounds.iter().enumerate() {
        for &id in &round.comms {
            if let Some(slot) = round_of.get_mut(id.0) {
                slot.get_or_insert(r);
            }
        }
    }
    // Communications grouped by matching switch; (left endpoint, id,
    // round) — within one switch, ascending left endpoint is outermost
    // first (same-apex comms are totally nested).
    let mut per_apex: Vec<Vec<(usize, usize, usize)>> =
        vec![Vec::new(); topo.node_table_len()];
    for (id, c) in set.iter() {
        let Some(r) = round_of[id.0] else { continue };
        let (l, _) = c.interval();
        per_apex[apex(topo, c.source, c.dest).index()].push((l, id.0, r));
    }
    for (u, comms) in per_apex.iter_mut().enumerate() {
        if comms.len() < 2 {
            continue;
        }
        comms.sort_unstable();
        for w in comms.windows(2) {
            let (_, outer_id, outer_r) = w[0];
            let (_, inner_id, inner_r) = w[1];
            if inner_r < outer_r {
                report.push(
                    Diagnostic::new(
                        DiagCode::SelectionOrder,
                        format!(
                            "c{inner_id} (round {inner_r}) runs before enclosing c{outer_id} \
                             (round {outer_r}) matched at the same switch: not outermost-first"
                        ),
                    )
                    .with_node(cst_core::NodeId(u))
                    .with_round(inner_r)
                    .with_comm(outer_id)
                    .with_comm(inner_id),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_comm::{CommId, Round};
    use cst_core::{Circuit, MergedRound, NodeId};

    fn round_of_ids(topo: &CstTopology, set: &CommSet, ids: &[usize]) -> Round {
        let circuits: Vec<_> = ids
            .iter()
            .map(|&i| {
                let c = &set.comms()[i];
                Circuit::between(topo, c.source, c.dest)
            })
            .collect();
        let merged = MergedRound::build(topo, &circuits).unwrap();
        Round { comms: ids.iter().map(|&i| CommId(i)).collect(), configs: merged.to_configs() }
    }

    #[test]
    fn set_pass_flags_crossing_and_orientation() {
        let crossing = CommSet::from_pairs(8, &[(0, 4), (2, 6)]);
        let rep = check_set(&crossing, true);
        assert_eq!(rep.error_count(), 1);
        assert_eq!(rep.diagnostics[0].code, DiagCode::NotWellNested);
        assert_eq!(rep.diagnostics[0].comms, vec![0, 1]);

        let left = CommSet::from_pairs(8, &[(3, 0)]);
        let rep = check_set(&left, true);
        assert_eq!(rep.diagnostics[0].code, DiagCode::NotRightOriented);
        assert!(check_set(&left, false).is_clean());
    }

    #[test]
    fn round_count_pass() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]);
        let sched = Schedule {
            rounds: vec![round_of_ids(&topo, &set, &[0]), round_of_ids(&topo, &set, &[1])],
        };
        assert!(check_round_count(&topo, &set, &sched).is_clean());
        let padded = Schedule {
            rounds: sched.rounds.iter().cloned().chain([Round::default()]).collect(),
        };
        let rep = check_round_count(&topo, &set, &padded);
        assert_eq!(rep.diagnostics[0].code, DiagCode::RoundCountMismatch);
    }

    #[test]
    fn static_transitions_match_meter() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]);
        let sched = Schedule {
            rounds: vec![
                round_of_ids(&topo, &set, &[0]),
                round_of_ids(&topo, &set, &[1]),
                round_of_ids(&topo, &set, &[2]),
            ],
        };
        let report = sched.meter_power(&topo).report(&topo);
        assert_eq!(max_static_transitions(&topo, &sched), report.max_port_transitions);
        assert!(check_transitions(&topo, &sched, 9).is_clean());
        // an absurd budget of 0 flags every active switch
        assert!(check_transitions(&topo, &sched, 0).has_errors());
    }

    #[test]
    fn selection_order_flags_inverted_rounds() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]);
        let good = Schedule {
            rounds: vec![round_of_ids(&topo, &set, &[0]), round_of_ids(&topo, &set, &[1])],
        };
        assert!(check_selection_order(&topo, &set, &good).is_clean());
        let bad = Schedule { rounds: good.rounds.iter().rev().cloned().collect() };
        let rep = check_selection_order(&topo, &set, &bad);
        assert!(rep.has_errors());
        let d = rep.first_error().unwrap();
        assert_eq!(d.code, DiagCode::SelectionOrder);
        assert_eq!(d.comms, vec![0, 1]);
        assert!(d.node.is_some());
    }

    #[test]
    fn fault_pass_is_clean_on_honest_degradation() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 2)]);
        let mut mask = FaultMask::empty(&topo);
        assert!(mask.kill_switch(NodeId(1))); // (0, 7) crosses the root
        // Schedule only the surviving (1, 2); report (0, 7) as dropped.
        let sched = Schedule { rounds: vec![round_of_ids(&topo, &set, &[1])] };
        let rep = check_faults(&topo, &set, &sched, &mask, &[0]);
        assert!(rep.is_clean(), "{}", rep.render_text());
    }

    #[test]
    fn fault_pass_flags_masked_hardware_use() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7)]);
        let sched = Schedule { rounds: vec![round_of_ids(&topo, &set, &[0])] };
        let mut dead_switch = FaultMask::empty(&topo);
        assert!(dead_switch.kill_switch(NodeId(1)));
        let rep = check_faults(&topo, &set, &sched, &dead_switch, &[]);
        assert!(rep.has_errors());
        assert_eq!(rep.first_error().unwrap().code, DiagCode::MaskedLinkUsed);

        let mut dead_link = FaultMask::empty(&topo);
        assert!(dead_link.kill_link(cst_core::DirectedLink::up_from(NodeId(2))));
        let rep = check_faults(&topo, &set, &sched, &dead_link, &[]);
        assert_eq!(rep.first_error().unwrap().code, DiagCode::MaskedLinkUsed);
        // The opposite direction of the same edge is a different link.
        let mut other_dir = FaultMask::empty(&topo);
        assert!(other_dir.kill_link(cst_core::DirectedLink::down_to(NodeId(2))));
        assert!(check_faults(&topo, &set, &sched, &other_dir, &[]).is_clean());
    }

    #[test]
    fn fault_pass_flags_half_duplex_violation() {
        let topo = CstTopology::with_leaves(8);
        // (0, 2) drives the edge above node 5 downward, (3, 6) upward.
        let set = CommSet::from_pairs(8, &[(0, 2), (3, 6)]);
        let mut mask = FaultMask::empty(&topo);
        assert!(mask.degrade_edge(NodeId(5)));
        let both = Schedule { rounds: vec![round_of_ids(&topo, &set, &[0, 1])] };
        let rep = check_faults(&topo, &set, &both, &mask, &[]);
        assert_eq!(rep.first_error().unwrap().code, DiagCode::HalfDuplexViolation);
        let split = Schedule {
            rounds: vec![round_of_ids(&topo, &set, &[0]), round_of_ids(&topo, &set, &[1])],
        };
        assert!(check_faults(&topo, &set, &split, &mask, &[]).is_clean());
    }

    #[test]
    fn fault_pass_flags_bogus_drops_and_coverage() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 2)]);
        let mask = FaultMask::empty(&topo);
        // Nothing blocks (0, 7); dropping it anyway is a router bug.
        let sched = Schedule { rounds: vec![round_of_ids(&topo, &set, &[1])] };
        let rep = check_faults(&topo, &set, &sched, &mask, &[0]);
        assert_eq!(rep.first_error().unwrap().code, DiagCode::DroppedRoutable);
        // Neither scheduled nor dropped → missing.
        let rep = check_faults(&topo, &set, &sched, &mask, &[]);
        assert_eq!(rep.first_error().unwrap().code, DiagCode::MissingComm);
        // Dropped but also scheduled → duplicate accounting.
        let full = Schedule {
            rounds: vec![round_of_ids(&topo, &set, &[0]), round_of_ids(&topo, &set, &[1])],
        };
        let rep = check_faults(&topo, &set, &full, &mask, &[0]);
        assert_eq!(rep.first_error().unwrap().code, DiagCode::DuplicateComm);
    }

    #[test]
    fn selection_order_ignores_disjoint_comms() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 3), (4, 7)]);
        // Disjoint comms share no link: any round order is fine.
        let sched = Schedule {
            rounds: vec![round_of_ids(&topo, &set, &[1]), round_of_ids(&topo, &set, &[0])],
        };
        assert!(check_selection_order(&topo, &set, &sched).is_clean());
        assert_eq!(NodeId::ROOT, NodeId(1)); // sanity on dense-index math
    }
}
