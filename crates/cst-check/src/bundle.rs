//! The on-disk artifact `cst-tools check` consumes: a schedule plus the
//! inputs it claims to serve, in one JSON document. Keeping the inputs in
//! the artifact makes a saved schedule *auditable* — the analyzer needs the
//! communication set to judge the rounds, and an artifact that only stored
//! switch settings could never be checked against anything.

use crate::counters::CounterTable;
use crate::{analyze, CheckOptions};
use cst_comm::{CommSet, Schedule};
use cst_core::diag::DiagReport;
use cst_core::{CstError, CstTopology};
use serde::{Deserialize, Serialize};

/// A self-contained, serializable schedule artifact.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScheduleBundle {
    /// Number of PEs (leaves); must be a power of two for the CST.
    pub num_leaves: usize,
    /// The communication set as `(source, dest)` leaf pairs, id order.
    pub comms: Vec<(usize, usize)>,
    /// The schedule under audit.
    pub schedule: Schedule,
    /// Optional Phase-1 counter tables for the Lemma 1 pass; schedules
    /// from non-CSA schedulers simply omit them.
    pub counters: Option<CounterTable>,
}

impl ScheduleBundle {
    /// Bundle a scheduling outcome for serialization.
    pub fn new(set: &CommSet, schedule: Schedule, counters: Option<CounterTable>) -> Self {
        ScheduleBundle {
            num_leaves: set.num_leaves(),
            comms: set.comms().iter().map(|c| (c.source.0, c.dest.0)).collect(),
            schedule,
            counters,
        }
    }

    /// Reconstruct the topology and communication set the bundle claims.
    ///
    /// Fails on malformed inputs (non-power-of-two size, out-of-range or
    /// degenerate pairs) — structural problems below the diagnostic level.
    pub fn instantiate(&self) -> Result<(CstTopology, CommSet), CstError> {
        let topo = CstTopology::new(self.num_leaves)?;
        let comms = self
            .comms
            .iter()
            .map(|&(s, d)| cst_comm::Communication::new(cst_core::LeafId(s), cst_core::LeafId(d)))
            .collect::<Result<Vec<_>, _>>()?;
        let set = CommSet::new(self.num_leaves, comms)?;
        Ok((topo, set))
    }

    /// Run the full analysis on the bundle: every schedule pass via
    /// [`analyze`], plus the Lemma 1 counter pass when the bundle carries
    /// tables.
    pub fn check(&self, options: &CheckOptions) -> Result<DiagReport, CstError> {
        let (topo, set) = self.instantiate()?;
        let mut report = analyze(&topo, &set, &self.schedule, options);
        if let Some(t) = &self.counters {
            report.merge(crate::counters::check_counters(&topo, &set, t));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::expected_counters;

    #[test]
    fn bundle_roundtrips_and_checks() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(1, 6)]);
        let circuit = cst_core::Circuit::between(&topo, set.comms()[0].source, set.comms()[0].dest);
        let merged = cst_core::MergedRound::build(&topo, &[circuit]).unwrap();
        let schedule = Schedule {
            rounds: vec![cst_comm::Round {
                comms: vec![cst_comm::CommId(0)],
                configs: merged.to_configs(),
            }],
        };
        let counters = Some(expected_counters(&topo, &set));
        let bundle = ScheduleBundle::new(&set, schedule, counters);

        let json = serde_json::to_string(&bundle).unwrap();
        let back: ScheduleBundle = serde_json::from_str(&json).unwrap();
        let report = back.check(&CheckOptions::strict()).unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn bad_sizes_fail_instantiation_not_analysis() {
        let bundle = ScheduleBundle { num_leaves: 3, ..ScheduleBundle::default() };
        assert!(bundle.check(&CheckOptions::lenient()).is_err());
    }
}
