//! Pins the machine-readable report format. `cst-tools check --json` is a
//! tool boundary: downstream scripts parse this, so any change to field
//! names, ordering, or the envelope must be deliberate — update the golden
//! strings here *and* docs/DIAGNOSTICS.md together.

use cst_check::{corrupted, mutation, DiagReport, Mutation};

#[test]
fn empty_report_envelope_is_pinned() {
    let json = serde_json::to_string(&DiagReport::new()).unwrap();
    assert_eq!(json, r#"{"version":1,"errors":0,"warnings":0,"diagnostics":[]}"#);
}

#[test]
fn diagnostic_serialization_is_pinned() {
    let report = mutation::run(&corrupted(Mutation::TwoWriters));
    let json = serde_json::to_string(&report).unwrap();
    assert_eq!(
        json,
        r#"{"version":1,"errors":1,"warnings":0,"diagnostics":[{"code":"CST070","severity":"error","message":"switch claimed twice within one round (two writers)","round":0,"node":1,"port":null,"up":null,"comms":[]}]}"#
    );
}

#[test]
fn link_and_comm_locations_are_pinned() {
    let report = mutation::run(&corrupted(Mutation::CollidingRound));
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains(r#""code":"CST020""#), "{json}");
    assert!(json.contains(r#""up":true"#), "{json}");
    assert!(json.contains(r#""comms":[1]"#), "{json}");
}

#[test]
fn report_roundtrips_through_json() {
    for m in [Mutation::TwoWriters, Mutation::CollidingRound, Mutation::InvertedOrder] {
        let report = mutation::run(&corrupted(m));
        let json = serde_json::to_string(&report).unwrap();
        let back: DiagReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report, "roundtrip mismatch for {m:?}");
    }
}
