//! The analyzer's discrimination proof: every diagnostic class has a
//! mutation that triggers exactly it, and the clean fixture triggers
//! nothing. A checker failing either direction is lying — too lax if a
//! corruption slips through, too eager if clean artifacts are flagged.

use cst_check::{clean_fixture, corrupted, mutation, DiagCode, Mutation, Severity};
use std::collections::BTreeSet;

fn error_codes(report: &cst_check::DiagReport) -> BTreeSet<&'static str> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code.as_str())
        .collect()
}

fn warning_codes(report: &cst_check::DiagReport) -> BTreeSet<&'static str> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .map(|d| d.code.as_str())
        .collect()
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let report = mutation::run(&clean_fixture());
    assert!(report.is_clean(), "clean fixture flagged:\n{}", report.render_text());
}

#[test]
fn every_mutation_triggers_exactly_its_code() {
    for m in Mutation::ALL {
        let expected = m.expected_code();
        let report = mutation::run(&corrupted(m));

        if expected.severity() == Severity::Error {
            assert_eq!(
                error_codes(&report),
                BTreeSet::from([expected.as_str()]),
                "{m:?} must yield exactly {expected:?} as its error set:\n{}",
                report.render_text()
            );
            if !m.tolerates_warnings() {
                assert_eq!(
                    report.warning_count(),
                    0,
                    "{m:?} dragged unexpected warnings:\n{}",
                    report.render_text()
                );
            }
        } else {
            assert_eq!(report.error_count(), 0, "{m:?} must not error:\n{}", report.render_text());
            assert_eq!(
                warning_codes(&report),
                BTreeSet::from([expected.as_str()]),
                "{m:?} must yield exactly the {expected:?} warning:\n{}",
                report.render_text()
            );
        }
    }
}

#[test]
fn mutations_cover_the_whole_code_table() {
    // CST2xx (model conformance) codes are exercised by cst-model's own
    // trace-mutation harness and CST3xx (decomposition) codes by the
    // DecompMutation harness; a cst-model unit test asserts the three
    // harnesses jointly cover DiagCode::ALL.
    let covered: BTreeSet<_> = Mutation::ALL
        .iter()
        .map(|m| m.expected_code())
        .chain(cst_check::DecompMutation::ALL.iter().map(|m| m.expected_code()))
        .collect();
    for code in DiagCode::ALL {
        if code.is_model() {
            continue;
        }
        assert!(covered.contains(&code), "{code:?} has no mutation fixture");
    }
}

#[test]
fn diagnostics_carry_locations() {
    // Spot-check that findings point at the corruption, not just name it.
    let report = mutation::run(&corrupted(Mutation::TwoWriters));
    let d = report.first_error().unwrap();
    assert_eq!(d.round, Some(0));
    assert!(d.node.is_some());

    let report = mutation::run(&corrupted(Mutation::CollidingRound));
    let d = report.first_error().unwrap();
    assert!(d.node.is_some() && d.up.is_some(), "link conflict must name the link");
}
