//! Sharded schedule cache: the concurrency layer over [`ScheduleCache`].
//!
//! The serve daemon runs one `EngineCtx` per worker thread (routing
//! scratch is thread-local by construction) but wants routed schedules
//! shared across workers. A single mutex around one big cache would
//! serialize every hit, so the shared cache is split into `2^shard_bits`
//! independent [`ScheduleCache`] shards, each behind its own lock.
//!
//! A request's shard is chosen by the **high bits** of its [`Fp64`]
//! request fingerprint (`cst_engine::request_fingerprint`). The split is
//! deliberate: the per-shard `HashMap` consumes the fingerprint's *low*
//! bits for bucketing, so high-bit sharding and low-bit hashing draw from
//! disjoint bit ranges of one well-avalanched digest — shard choice and
//! in-shard placement stay independent and uniformly spread.
//!
//! The unit cached here is the **fully-encoded response payload**
//! (`Arc<[u8]>`): a hit is an `Arc` clone plus a socket write, with no
//! re-serialization and no allocation. Inserts move the routed schedule
//! in by value and hand the displaced victim back for the worker's
//! `SchedulePool`, the same churn discipline as the single-caller cache.
//! Per-shard counters never stop being ordinary `ScheduleCache` stats;
//! [`ShardedScheduleCache::stats`] is their sum (asserted equal in the
//! unit tests, and conserved end-to-end by `tests/serve_stress.rs`:
//! hits + misses == payload lookups).
//!
//! # The hit tier
//!
//! In front of every shard's locked LRU sits a [`HitTier`]: a fixed,
//! generation-checked open-addressing index from masked fingerprint to
//! the full request key and its `Arc<[u8]>` payload. A warm hit costs one
//! relaxed atomic load (generation 0 means "nothing ever published" and
//! skips everything), a shared `RwLock` read acquire, a bounded linear
//! probe with **full key equality**, and one `Arc` clone — no exclusive
//! lock and no allocation. All tier *writes* (publish on insert,
//! invalidate on eviction, purge on clear) happen only in methods that
//! already hold the owning shard's mutex, so the locked LRU remains the
//! single writer and bumps the generation on every mutation.
//!
//! Because a payload is a pure function of its full request key, a tier
//! hit can never serve stale or wrong bytes: equality is checked against
//! the stored key, and an entry for an evicted key is explicitly
//! invalidated (even un-invalidated it would still be byte-identical to a
//! recomputation). Tier hits bump the LRU entry's recency with a
//! best-effort `try_lock` — exact in sequential runs (which keeps the
//! seeded CI goldens deterministic), approximate under contention — and
//! are counted in a dedicated per-shard `tier_hits` counter that
//! [`ShardedScheduleCache::shard_stats`] folds into `hits`, preserving
//! the conservation invariant.
//!
//! [`Fp64`]: cst_core::Fp64

use crate::cache::{CacheStats, ScheduleCache};
use crate::DegradationReport;
use cst_comm::{CommSet, Schedule};
use cst_core::{FaultMask, PowerReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Linear-probe window of the hit tier: a lookup or publish examines at
/// most this many slots past the home slot. Small and fixed so the
/// read path is branch-predictable and deletion needs no tombstones (a
/// probe never early-exits on empty slots within the window).
const TIER_PROBE: usize = 4;

/// One published entry of the [`HitTier`]: the full request key plus the
/// encoded payload. The key is stored by value so the read path can
/// equality-check without touching the locked LRU.
#[derive(Debug)]
struct TierSlot {
    fp: u64,
    router: &'static str,
    set: CommSet,
    mask: Option<FaultMask>,
    payload: Arc<[u8]>,
}

/// The read-optimized index in front of one shard (see the module docs).
/// Readers take the `RwLock` in shared mode only; every writer holds the
/// owning shard's mutex, making the LRU the single writer.
#[derive(Debug)]
struct HitTier {
    slots: RwLock<Vec<Option<TierSlot>>>,
    /// Index mask (`slots.len() - 1`; slot count is a power of two).
    index_mask: usize,
    /// Monotonic publication counter. 0 means nothing was ever published
    /// (the read path skips the lock entirely); every publish/invalidate/
    /// purge bumps it with release ordering.
    generation: AtomicU64,
    /// Lookups answered here instead of by the locked LRU.
    hits: AtomicU64,
}

impl HitTier {
    fn new(shard_capacity: usize) -> HitTier {
        // 2x the shard's entry budget keeps the load factor <= 0.5 so
        // window conflicts (which fall back to the locked LRU — correct,
        // just slower) stay rare. Capacity 0 disables the shard and the
        // tier with it.
        let slots = if shard_capacity == 0 {
            0
        } else {
            (shard_capacity * 2).next_power_of_two().max(8)
        };
        HitTier {
            slots: RwLock::new((0..slots).map(|_| None).collect()),
            index_mask: slots.wrapping_sub(1),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Read a slot table guard, recovering from poisoning: writers only
    /// mutate `Option` slots, so the table is valid after any panic.
    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Option<TierSlot>>> {
        match self.slots.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Option<TierSlot>>> {
        match self.slots.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The lock-free(-of-exclusive-locks) hit path. `fp` must already be
    /// masked to the effective fingerprint width.
    fn lookup(
        &self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Option<Arc<[u8]>> {
        if self.generation.load(Ordering::Acquire) == 0 {
            return None;
        }
        let found = {
            let slots = self.read();
            let mut found = None;
            for d in 0..TIER_PROBE {
                let j = (fp as usize).wrapping_add(d) & self.index_mask;
                if let Some(e) = &slots[j] {
                    if e.fp == fp
                        && e.router == router
                        && e.set == *set
                        && match (&e.mask, mask) {
                            (None, None) => true,
                            (Some(a), Some(b)) => a == b,
                            _ => false,
                        }
                    {
                        found = Some(Arc::clone(&e.payload));
                        break;
                    }
                }
            }
            found
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Publish a key → payload mapping. Caller must hold the owning
    /// shard's mutex (single-writer discipline). Prefers the slot already
    /// holding this fingerprint (overwrite — also how a collision victim
    /// gets replaced), then the first free slot in the window, then the
    /// home slot (deterministic conflict victim).
    fn publish(
        &self,
        fp: u64,
        router: &'static str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        payload: Arc<[u8]>,
    ) {
        if self.index_mask == usize::MAX {
            return; // disabled (0 slots)
        }
        let mut slots = self.write();
        let home = (fp as usize) & self.index_mask;
        let mut target = home;
        let mut free = None;
        for d in 0..TIER_PROBE {
            let j = (fp as usize).wrapping_add(d) & self.index_mask;
            match &slots[j] {
                Some(e) if e.fp == fp => {
                    target = j;
                    free = None;
                    break;
                }
                None if free.is_none() => free = Some(j),
                _ => {}
            }
        }
        if let Some(j) = free {
            target = j;
        }
        slots[target] = Some(TierSlot {
            fp,
            router,
            set: set.clone(),
            mask: mask.cloned(),
            payload,
        });
        drop(slots);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Drop the entry for `fp` (an LRU eviction victim), if present.
    /// Caller must hold the owning shard's mutex.
    fn invalidate(&self, fp: u64) {
        if self.index_mask == usize::MAX {
            return;
        }
        let mut slots = self.write();
        let mut changed = false;
        for d in 0..TIER_PROBE {
            let j = (fp as usize).wrapping_add(d) & self.index_mask;
            if matches!(&slots[j], Some(e) if e.fp == fp) {
                slots[j] = None;
                changed = true;
            }
        }
        drop(slots);
        if changed {
            self.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Empty the tier and zero its counters (shard `clear`). Resetting the
    /// generation to 0 re-arms the "never published" fast path.
    fn purge(&self) {
        let mut slots = self.write();
        for s in slots.iter_mut() {
            *s = None;
        }
        drop(slots);
        self.generation.store(0, Ordering::Release);
        self.hits.store(0, Ordering::Release);
    }

    fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// A fixed set of independently locked [`ScheduleCache`] shards addressed
/// by fingerprint high bits. All methods take `&self`; locking is
/// per-shard and never nested, so the structure is deadlock-free and
/// shareable across worker threads via `Arc`.
#[derive(Debug)]
pub struct ShardedScheduleCache {
    shards: Vec<Mutex<ScheduleCache>>,
    /// One read-optimized hit tier per shard, indexed in lockstep with
    /// `shards`. All writes to `tiers[i]` happen while `shards[i]` is
    /// locked.
    tiers: Vec<HitTier>,
    shard_bits: u32,
    /// Capacity given to each shard (total capacity rounded up to a
    /// multiple of the shard count).
    shard_capacity: usize,
    /// Effective fingerprint width, mirrored into every shard. 64 in
    /// production; tests truncate it to force collisions.
    fp_bits: u32,
    /// AND-mask equivalent of `fp_bits`, applied before shard selection
    /// so the sharded view masks exactly like each shard does.
    fp_mask: u64,
}

impl ShardedScheduleCache {
    /// A cache of `2^shard_bits` shards holding `total_capacity` entries
    /// altogether (rounded up so every shard gets an equal share).
    /// `shard_bits` is clamped to 8 (256 shards) — beyond that the locks
    /// outnumber any plausible worker pool.
    pub fn new(total_capacity: usize, shard_bits: u32) -> ShardedScheduleCache {
        ShardedScheduleCache::with_fp_bits(total_capacity, shard_bits, 64)
    }

    /// [`Self::new`] with a truncated fingerprint width. Test knob: a
    /// narrow fingerprint makes collisions routine so the stress suite
    /// can prove collisions are counted and never served. Truncation
    /// zeroes the high bits, so every request lands in shard 0 — the
    /// degenerate layout is part of the point (one shard takes the whole
    /// collision war while the others stay provably idle).
    #[doc(hidden)]
    pub fn with_fp_bits(total_capacity: usize, shard_bits: u32, fp_bits: u32) -> ShardedScheduleCache {
        let shard_bits = shard_bits.min(8);
        let num_shards = 1usize << shard_bits;
        let shard_capacity = total_capacity.div_ceil(num_shards);
        let shards = (0..num_shards)
            .map(|_| {
                let mut shard = ScheduleCache::new(shard_capacity);
                shard.set_fp_bits(fp_bits);
                Mutex::new(shard)
            })
            .collect();
        let tiers = (0..num_shards).map(|_| HitTier::new(shard_capacity)).collect();
        let fp_mask = if fp_bits >= 64 { !0 } else { (1u64 << fp_bits) - 1 };
        ShardedScheduleCache { shards, tiers, shard_bits, shard_capacity, fp_bits, fp_mask }
    }

    /// Number of shards (`2^shard_bits`).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Capacity of each individual shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Which shard a request fingerprint belongs to: its high
    /// `shard_bits` bits (after the test-only width mask).
    pub fn shard_of(&self, fp: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            ((fp & self.fp_mask) >> (64 - self.shard_bits)) as usize
        }
    }

    /// Lock one shard, recovering from poisoning: the caches' invariants
    /// hold between method calls, so a worker that panicked elsewhere
    /// must not wedge every other worker's cache access.
    fn shard(&self, idx: usize) -> MutexGuard<'_, ScheduleCache> {
        match self.shards[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look up the encoded response payload for a request. A hit clones
    /// the `Arc` (no copy of the bytes) and bumps the entry's recency in
    /// its shard. Exactly one of hit/miss is counted per call, in the
    /// owning shard's stats (tier hits count in the shard's `tier_hits`,
    /// which [`Self::shard_stats`] folds into `hits`).
    ///
    /// The hit tier is probed first, without the shard lock; only a tier
    /// miss falls through to the locked LRU. A tier hit bumps the LRU
    /// entry's recency via `try_lock` — exact whenever the shard is
    /// uncontended (in particular in every sequential run), best-effort
    /// under contention.
    pub fn lookup_payload(
        &self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Option<Arc<[u8]>> {
        if let Some(payload) = self.lookup_payload_tier(fp, router, set, mask) {
            return Some(payload);
        }
        self.shard(self.shard_of(fp)).lookup_payload(fp, router, set, mask)
    }

    /// Probe only the lock-free hit tier — never the locked shard, and
    /// never counting a miss. A `None` here means "not answerable without
    /// the shard lock", not "absent": callers that get `None` should
    /// coalesce or fall through to [`Self::lookup_payload`], which keeps
    /// hit/miss accounting exact.
    pub fn lookup_payload_tier(
        &self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Option<Arc<[u8]>> {
        let idx = self.shard_of(fp);
        let mfp = fp & self.fp_mask;
        let payload = self.tiers[idx].lookup(mfp, router, set, mask)?;
        if let Ok(mut shard) = self.shards[idx].try_lock() {
            shard.touch(fp, router, set, mask);
        }
        Some(payload)
    }

    /// Insert a routed outcome with its encoded payload into the owning
    /// shard. The schedule moves in by value; the returned schedule (the
    /// shard's evicted victim, or the rejected input when capacity is 0)
    /// should be recycled into the calling worker's pool.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_with_payload(
        &self,
        fp: u64,
        router: &'static str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        schedule: Schedule,
        power: &PowerReport,
        degradation: Option<&DegradationReport>,
        payload: Arc<[u8]>,
    ) -> Option<Schedule> {
        let idx = self.shard_of(fp);
        let mfp = fp & self.fp_mask;
        let mut shard = self.shard(idx);
        let out = shard.insert_with_payload(
            fp,
            router,
            set,
            mask,
            schedule,
            power,
            degradation,
            Arc::clone(&payload),
        );
        // Mirror the LRU mutation into the hit tier *while still holding
        // the shard mutex*, so tier writes are serialized in LRU order
        // (the single-writer discipline the tier documents). Readers only
        // ever take the tier's read lock and a non-blocking `try_lock` on
        // the shard, so nesting shard-mutex → tier-write-lock cannot
        // deadlock. Invalidate the eviction victim first so its slot can
        // be reused by the new key.
        let tier = &self.tiers[idx];
        if let Some(victim_fp) = out.evicted_fp {
            tier.invalidate(victim_fp);
        }
        if out.resident {
            tier.publish(mfp, router, set, mask, payload);
        }
        drop(shard);
        out.displaced
    }

    /// Counters of one shard, with that shard's tier hits folded into
    /// `hits` (and reported separately as `tier_hits`): `hits + misses`
    /// still equals the payload lookups routed to the shard.
    pub fn shard_stats(&self, idx: usize) -> CacheStats {
        let mut s = self.shard(idx).stats();
        let tier = self.tiers[idx].hit_count();
        s.hits += tier;
        s.tier_hits = tier;
        s
    }

    /// Per-shard counters, in shard order.
    pub fn all_shard_stats(&self) -> Vec<CacheStats> {
        (0..self.shards.len()).map(|i| self.shard_stats(i)).collect()
    }

    /// Rolled-up counters: the field-wise sum over all shards (including
    /// `entries` and `capacity`, so the roll-up reads like one big cache).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for idx in 0..self.shards.len() {
            let s = self.shard_stats(idx);
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.collisions += s.collisions;
            total.entries += s.entries;
            total.capacity += s.capacity;
            total.tier_hits += s.tier_hits;
        }
        total
    }

    /// Drop every entry and zero every counter, shard by shard. The serve
    /// daemon's `Reset` frame uses this so seeded bench runs start from a
    /// byte-identical state.
    pub fn clear(&self) {
        for idx in 0..self.shards.len() {
            let mut fresh = ScheduleCache::new(self.shard_capacity);
            fresh.set_fp_bits(self.fp_bits);
            let mut shard = self.shard(idx);
            *shard = fresh;
            // Purge the tier under the shard mutex (single-writer
            // discipline), so no insert can interleave between the LRU
            // swap and the tier purge.
            self.tiers[idx].purge();
            drop(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_core::Fp64;

    fn key(i: usize) -> (u64, CommSet) {
        let n = 64;
        let set = CommSet::from_pairs(n, &[(2 * (i % 31), 2 * (i % 31) + 1), (62, 63)]);
        let mut fp = Fp64::new("shard-test");
        fp.write_usize(i);
        fp.write_u64(set.fingerprint());
        (fp.finish(), set)
    }

    fn payload(i: usize) -> Arc<[u8]> {
        Arc::from(vec![i as u8; 4].into_boxed_slice())
    }

    #[test]
    fn shard_routing_is_stable_and_uses_high_bits() {
        let c = ShardedScheduleCache::new(16, 2);
        assert_eq!(c.num_shards(), 4);
        // Stable: same fingerprint, same shard, every time.
        for i in 0..64 {
            let (fp, _) = key(i);
            let first = c.shard_of(fp);
            for _ in 0..3 {
                assert_eq!(c.shard_of(fp), first);
            }
        }
        // High bits select the shard: low 62 bits are invisible to it.
        for s in 0..4u64 {
            let base = s << 62;
            assert_eq!(c.shard_of(base), s as usize);
            assert_eq!(c.shard_of(base | 0x3fff_ffff_ffff_ffff), s as usize);
        }
        // A well-avalanched digest stream reaches every shard.
        let mut seen = [false; 4];
        for i in 0..64 {
            let (fp, _) = key(i);
            seen[c.shard_of(fp)] = true;
        }
        assert_eq!(seen, [true; 4], "64 digests left a shard cold");
    }

    #[test]
    fn zero_shard_bits_is_a_single_shard() {
        let c = ShardedScheduleCache::new(8, 0);
        assert_eq!(c.num_shards(), 1);
        for i in 0..32 {
            let (fp, _) = key(i);
            assert_eq!(c.shard_of(fp), 0);
        }
    }

    /// Per-shard LRU behavior must be exactly `ScheduleCache`: replay one
    /// request sequence against the sharded cache and against independent
    /// unsharded oracles (one per shard, fed that shard's subsequence),
    /// and require identical hit/miss answers per operation and identical
    /// final counters per shard.
    #[test]
    fn sharded_matches_unsharded_oracle_per_shard() {
        let total_cap = 8;
        let bits = 2;
        let c = ShardedScheduleCache::new(total_cap, bits);
        let mut oracles: Vec<ScheduleCache> =
            (0..c.num_shards()).map(|_| ScheduleCache::new(c.shard_capacity())).collect();

        // Seeded mixed workload over a working set larger than capacity,
        // serve-style: lookup, insert on miss.
        let mut state = 0x9e37_79b9u64;
        for step in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = ((state >> 33) % 24) as usize;
            let (fp, set) = key(i);
            let shard = c.shard_of(fp);

            let got = c.lookup_payload(fp, "csa", &set, None);
            let want = oracles[shard].lookup_payload(fp, "csa", &set, None);
            assert_eq!(
                got.as_deref(),
                want.as_deref(),
                "step {step}: sharded and oracle disagree on key {i}"
            );
            if got.is_none() {
                let displaced_sharded = c.insert_with_payload(
                    fp,
                    "csa",
                    &set,
                    None,
                    Schedule::default(),
                    &PowerReport::default(),
                    None,
                    payload(i),
                );
                let displaced_oracle = oracles[shard].insert_with_payload(
                    fp,
                    "csa",
                    &set,
                    None,
                    Schedule::default(),
                    &PowerReport::default(),
                    None,
                    payload(i),
                );
                assert_eq!(displaced_sharded.is_some(), displaced_oracle.displaced.is_some());
            }
        }
        // The oracle has no hit tier, so its hits all count in `hits`
        // proper; the sharded cache splits them between the tier and the
        // locked LRU but folds them back together in `shard_stats`. With
        // the tier's recency touch the *sum* must match the oracle
        // exactly — field for field once `tier_hits` is zeroed out.
        let mut total_tier_hits = 0;
        for (idx, oracle) in oracles.iter().enumerate() {
            let mut got = c.shard_stats(idx);
            assert!(got.tier_hits <= got.hits);
            total_tier_hits += got.tier_hits;
            got.tier_hits = 0;
            assert_eq!(
                got,
                oracle.stats(),
                "shard {idx} counters diverge from the unsharded oracle"
            );
        }
        assert!(total_tier_hits > 0, "a 400-step repeat workload must hit the tier");
    }

    #[test]
    fn rollup_equals_sum_of_shard_counters() {
        let c = ShardedScheduleCache::new(8, 2);
        for round in 0..3 {
            for i in 0..20 {
                let (fp, set) = key(i);
                if c.lookup_payload(fp, "csa", &set, None).is_none() {
                    c.insert_with_payload(
                        fp,
                        "csa",
                        &set,
                        None,
                        Schedule::default(),
                        &PowerReport::default(),
                        None,
                        payload(i),
                    );
                }
                let _ = round;
            }
        }
        let per_shard = c.all_shard_stats();
        let rollup = c.stats();
        assert_eq!(rollup.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(rollup.misses, per_shard.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(rollup.evictions, per_shard.iter().map(|s| s.evictions).sum::<u64>());
        assert_eq!(rollup.collisions, per_shard.iter().map(|s| s.collisions).sum::<u64>());
        assert_eq!(rollup.entries, per_shard.iter().map(|s| s.entries).sum::<usize>());
        assert_eq!(rollup.capacity, per_shard.iter().map(|s| s.capacity).sum::<usize>());
        assert_eq!(rollup.tier_hits, per_shard.iter().map(|s| s.tier_hits).sum::<u64>());
        assert!(rollup.hits > 0 && rollup.misses > 0, "workload exercised both outcomes");
        assert!(rollup.tier_hits > 0, "repeat lookups of published keys must hit the tier");
        assert!(rollup.tier_hits <= rollup.hits, "tier hits are a subset of hits");
    }

    #[test]
    fn truncated_fingerprints_collide_within_shard_zero() {
        let c = ShardedScheduleCache::with_fp_bits(16, 2, 4);
        let mut served_other_key = 0;
        for i in 0..32 {
            let (fp, set) = key(i);
            assert_eq!(c.shard_of(fp), 0, "truncated fingerprints all shard to 0");
            if let Some(p) = c.lookup_payload(fp, "csa", &set, None) {
                // A hit must be *our* payload — collisions are misses.
                assert_eq!(&*p, &*payload(i), "collision served another key's payload");
                served_other_key += 1;
            } else {
                c.insert_with_payload(
                    fp,
                    "csa",
                    &set,
                    None,
                    Schedule::default(),
                    &PowerReport::default(),
                    None,
                    payload(i),
                );
            }
        }
        let _ = served_other_key;
        let stats = c.stats();
        assert!(stats.collisions > 0, "4-bit fingerprints over 32 keys must collide");
        for idx in 1..c.num_shards() {
            let s = c.shard_stats(idx);
            assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0), "shard {idx} should be idle");
        }
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let c = ShardedScheduleCache::new(8, 1);
        for i in 0..8 {
            let (fp, set) = key(i);
            c.insert_with_payload(
                fp,
                "csa",
                &set,
                None,
                Schedule::default(),
                &PowerReport::default(),
                None,
                payload(i),
            );
        }
        assert!(c.stats().entries > 0);
        // Warm the tier so clear() provably purges it too.
        let (fp, set) = key(7);
        assert!(c.lookup_payload(fp, "csa", &set, None).is_some());
        assert!(c.stats().tier_hits > 0);
        c.clear();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions, s.tier_hits), (0, 0, 0, 0, 0));
        assert_eq!(s.capacity, c.num_shards() * c.shard_capacity());
        // And the purged tier must not serve anything stale.
        assert!(c.lookup_payload(fp, "csa", &set, None).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    /// The first lookup after an insert is already a tier hit (publish
    /// rides the insert), and the served bytes are the published payload.
    #[test]
    fn tier_serves_published_payloads_without_the_shard_lock_path() {
        // Generous capacity so no shard evicts regardless of key skew.
        let c = ShardedScheduleCache::new(64, 2);
        for i in 0..8 {
            let (fp, set) = key(i);
            c.insert_with_payload(
                fp,
                "csa",
                &set,
                None,
                Schedule::default(),
                &PowerReport::default(),
                None,
                payload(i),
            );
        }
        for i in 0..8 {
            let (fp, set) = key(i);
            let got = c.lookup_payload(fp, "csa", &set, None).expect("published key must hit");
            assert_eq!(&*got, &*payload(i));
            // Full-key equality gates the tier exactly like the LRU: a
            // different router under the same fingerprint is a miss.
            assert!(c.lookup_payload(fp, "greedy", &set, None).is_none());
        }
        let s = c.stats();
        assert_eq!(s.hits, 8);
        assert_eq!(s.tier_hits, 8, "warm lookups are all tier hits");
        assert_eq!(s.misses, 8);
    }

    /// Evicting a key from the LRU invalidates its tier entry: the next
    /// lookup is a counted miss on both layers, never a stale answer.
    #[test]
    fn eviction_invalidates_the_tier_entry() {
        let c = ShardedScheduleCache::new(1, 0); // one shard, one entry
        let (fp_a, set_a) = key(1);
        let (fp_b, set_b) = key(2);
        c.insert_with_payload(
            fp_a,
            "csa",
            &set_a,
            None,
            Schedule::default(),
            &PowerReport::default(),
            None,
            payload(1),
        );
        assert!(c.lookup_payload(fp_a, "csa", &set_a, None).is_some());
        c.insert_with_payload(
            fp_b,
            "csa",
            &set_b,
            None,
            Schedule::default(),
            &PowerReport::default(),
            None,
            payload(2),
        );
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup_payload(fp_a, "csa", &set_a, None).is_none(), "evicted key must miss");
        assert_eq!(&*c.lookup_payload(fp_b, "csa", &set_b, None).unwrap(), &*payload(2));
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 3, "every lookup counted exactly once");
    }

    /// A tier hit keeps LRU recency exact in sequential runs: hammering
    /// one key through the tier must still protect it from eviction.
    #[test]
    fn tier_hits_keep_lru_recency_exact_when_uncontended() {
        let c = ShardedScheduleCache::new(2, 0); // one shard, two entries
        let keys: Vec<_> = (1..=3).map(key).collect();
        for (i, (fp, set)) in keys.iter().take(2).enumerate() {
            c.insert_with_payload(
                *fp,
                "csa",
                set,
                None,
                Schedule::default(),
                &PowerReport::default(),
                None,
                payload(i + 1),
            );
        }
        // Tier-hit key 0 so key 1 becomes the LRU victim.
        assert!(c.lookup_payload(keys[0].0, "csa", &keys[0].1, None).is_some());
        assert_eq!(c.stats().tier_hits, 1);
        c.insert_with_payload(
            keys[2].0,
            "csa",
            &keys[2].1,
            None,
            Schedule::default(),
            &PowerReport::default(),
            None,
            payload(3),
        );
        assert!(c.lookup_payload(keys[0].0, "csa", &keys[0].1, None).is_some(), "touched key survives");
        assert!(c.lookup_payload(keys[1].0, "csa", &keys[1].1, None).is_none(), "untouched key evicted");
    }
}
