//! Sharded schedule cache: the concurrency layer over [`ScheduleCache`].
//!
//! The serve daemon runs one `EngineCtx` per worker thread (routing
//! scratch is thread-local by construction) but wants routed schedules
//! shared across workers. A single mutex around one big cache would
//! serialize every hit, so the shared cache is split into `2^shard_bits`
//! independent [`ScheduleCache`] shards, each behind its own lock.
//!
//! A request's shard is chosen by the **high bits** of its [`Fp64`]
//! request fingerprint (`cst_engine::request_fingerprint`). The split is
//! deliberate: the per-shard `HashMap` consumes the fingerprint's *low*
//! bits for bucketing, so high-bit sharding and low-bit hashing draw from
//! disjoint bit ranges of one well-avalanched digest — shard choice and
//! in-shard placement stay independent and uniformly spread.
//!
//! The unit cached here is the **fully-encoded response payload**
//! (`Arc<[u8]>`): a hit is an `Arc` clone under a brief shard lock plus a
//! socket write, with no re-serialization and no allocation. Inserts move
//! the routed schedule in by value and hand the displaced victim back for
//! the worker's `SchedulePool`, the same churn discipline as the
//! single-caller cache. Per-shard counters never stop being ordinary
//! `ScheduleCache` stats; [`ShardedScheduleCache::stats`] is their sum
//! (asserted equal in the unit tests, and conserved end-to-end by
//! `tests/serve_stress.rs`: hits + misses == payload lookups).
//!
//! [`Fp64`]: cst_core::Fp64

use crate::cache::{CacheStats, ScheduleCache};
use crate::DegradationReport;
use cst_comm::{CommSet, Schedule};
use cst_core::{FaultMask, PowerReport};
use std::sync::{Arc, Mutex, MutexGuard};

/// A fixed set of independently locked [`ScheduleCache`] shards addressed
/// by fingerprint high bits. All methods take `&self`; locking is
/// per-shard and never nested, so the structure is deadlock-free and
/// shareable across worker threads via `Arc`.
#[derive(Debug)]
pub struct ShardedScheduleCache {
    shards: Vec<Mutex<ScheduleCache>>,
    shard_bits: u32,
    /// Capacity given to each shard (total capacity rounded up to a
    /// multiple of the shard count).
    shard_capacity: usize,
    /// Effective fingerprint width, mirrored into every shard. 64 in
    /// production; tests truncate it to force collisions.
    fp_bits: u32,
    /// AND-mask equivalent of `fp_bits`, applied before shard selection
    /// so the sharded view masks exactly like each shard does.
    fp_mask: u64,
}

impl ShardedScheduleCache {
    /// A cache of `2^shard_bits` shards holding `total_capacity` entries
    /// altogether (rounded up so every shard gets an equal share).
    /// `shard_bits` is clamped to 8 (256 shards) — beyond that the locks
    /// outnumber any plausible worker pool.
    pub fn new(total_capacity: usize, shard_bits: u32) -> ShardedScheduleCache {
        ShardedScheduleCache::with_fp_bits(total_capacity, shard_bits, 64)
    }

    /// [`Self::new`] with a truncated fingerprint width. Test knob: a
    /// narrow fingerprint makes collisions routine so the stress suite
    /// can prove collisions are counted and never served. Truncation
    /// zeroes the high bits, so every request lands in shard 0 — the
    /// degenerate layout is part of the point (one shard takes the whole
    /// collision war while the others stay provably idle).
    #[doc(hidden)]
    pub fn with_fp_bits(total_capacity: usize, shard_bits: u32, fp_bits: u32) -> ShardedScheduleCache {
        let shard_bits = shard_bits.min(8);
        let num_shards = 1usize << shard_bits;
        let shard_capacity = total_capacity.div_ceil(num_shards);
        let shards = (0..num_shards)
            .map(|_| {
                let mut shard = ScheduleCache::new(shard_capacity);
                shard.set_fp_bits(fp_bits);
                Mutex::new(shard)
            })
            .collect();
        let fp_mask = if fp_bits >= 64 { !0 } else { (1u64 << fp_bits) - 1 };
        ShardedScheduleCache { shards, shard_bits, shard_capacity, fp_bits, fp_mask }
    }

    /// Number of shards (`2^shard_bits`).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Capacity of each individual shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Which shard a request fingerprint belongs to: its high
    /// `shard_bits` bits (after the test-only width mask).
    pub fn shard_of(&self, fp: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            ((fp & self.fp_mask) >> (64 - self.shard_bits)) as usize
        }
    }

    /// Lock one shard, recovering from poisoning: the caches' invariants
    /// hold between method calls, so a worker that panicked elsewhere
    /// must not wedge every other worker's cache access.
    fn shard(&self, idx: usize) -> MutexGuard<'_, ScheduleCache> {
        match self.shards[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look up the encoded response payload for a request. A hit clones
    /// the `Arc` (no copy of the bytes) and bumps the entry's recency in
    /// its shard. Exactly one of hit/miss is counted per call, in the
    /// owning shard's stats.
    pub fn lookup_payload(
        &self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Option<Arc<[u8]>> {
        self.shard(self.shard_of(fp)).lookup_payload(fp, router, set, mask)
    }

    /// Insert a routed outcome with its encoded payload into the owning
    /// shard. The schedule moves in by value; the returned schedule (the
    /// shard's evicted victim, or the rejected input when capacity is 0)
    /// should be recycled into the calling worker's pool.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_with_payload(
        &self,
        fp: u64,
        router: &'static str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        schedule: Schedule,
        power: &PowerReport,
        degradation: Option<&DegradationReport>,
        payload: Arc<[u8]>,
    ) -> Option<Schedule> {
        self.shard(self.shard_of(fp)).insert_with_payload(
            fp,
            router,
            set,
            mask,
            schedule,
            power,
            degradation,
            payload,
        )
    }

    /// Counters of one shard.
    pub fn shard_stats(&self, idx: usize) -> CacheStats {
        self.shard(idx).stats()
    }

    /// Per-shard counters, in shard order.
    pub fn all_shard_stats(&self) -> Vec<CacheStats> {
        (0..self.shards.len()).map(|i| self.shard_stats(i)).collect()
    }

    /// Rolled-up counters: the field-wise sum over all shards (including
    /// `entries` and `capacity`, so the roll-up reads like one big cache).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for idx in 0..self.shards.len() {
            let s = self.shard_stats(idx);
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.collisions += s.collisions;
            total.entries += s.entries;
            total.capacity += s.capacity;
        }
        total
    }

    /// Drop every entry and zero every counter, shard by shard. The serve
    /// daemon's `Reset` frame uses this so seeded bench runs start from a
    /// byte-identical state.
    pub fn clear(&self) {
        for idx in 0..self.shards.len() {
            let mut fresh = ScheduleCache::new(self.shard_capacity);
            fresh.set_fp_bits(self.fp_bits);
            *self.shard(idx) = fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_core::Fp64;

    fn key(i: usize) -> (u64, CommSet) {
        let n = 64;
        let set = CommSet::from_pairs(n, &[(2 * (i % 31), 2 * (i % 31) + 1), (62, 63)]);
        let mut fp = Fp64::new("shard-test");
        fp.write_usize(i);
        fp.write_u64(set.fingerprint());
        (fp.finish(), set)
    }

    fn payload(i: usize) -> Arc<[u8]> {
        Arc::from(vec![i as u8; 4].into_boxed_slice())
    }

    #[test]
    fn shard_routing_is_stable_and_uses_high_bits() {
        let c = ShardedScheduleCache::new(16, 2);
        assert_eq!(c.num_shards(), 4);
        // Stable: same fingerprint, same shard, every time.
        for i in 0..64 {
            let (fp, _) = key(i);
            let first = c.shard_of(fp);
            for _ in 0..3 {
                assert_eq!(c.shard_of(fp), first);
            }
        }
        // High bits select the shard: low 62 bits are invisible to it.
        for s in 0..4u64 {
            let base = s << 62;
            assert_eq!(c.shard_of(base), s as usize);
            assert_eq!(c.shard_of(base | 0x3fff_ffff_ffff_ffff), s as usize);
        }
        // A well-avalanched digest stream reaches every shard.
        let mut seen = [false; 4];
        for i in 0..64 {
            let (fp, _) = key(i);
            seen[c.shard_of(fp)] = true;
        }
        assert_eq!(seen, [true; 4], "64 digests left a shard cold");
    }

    #[test]
    fn zero_shard_bits_is_a_single_shard() {
        let c = ShardedScheduleCache::new(8, 0);
        assert_eq!(c.num_shards(), 1);
        for i in 0..32 {
            let (fp, _) = key(i);
            assert_eq!(c.shard_of(fp), 0);
        }
    }

    /// Per-shard LRU behavior must be exactly `ScheduleCache`: replay one
    /// request sequence against the sharded cache and against independent
    /// unsharded oracles (one per shard, fed that shard's subsequence),
    /// and require identical hit/miss answers per operation and identical
    /// final counters per shard.
    #[test]
    fn sharded_matches_unsharded_oracle_per_shard() {
        let total_cap = 8;
        let bits = 2;
        let c = ShardedScheduleCache::new(total_cap, bits);
        let mut oracles: Vec<ScheduleCache> =
            (0..c.num_shards()).map(|_| ScheduleCache::new(c.shard_capacity())).collect();

        // Seeded mixed workload over a working set larger than capacity,
        // serve-style: lookup, insert on miss.
        let mut state = 0x9e37_79b9u64;
        for step in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = ((state >> 33) % 24) as usize;
            let (fp, set) = key(i);
            let shard = c.shard_of(fp);

            let got = c.lookup_payload(fp, "csa", &set, None);
            let want = oracles[shard].lookup_payload(fp, "csa", &set, None);
            assert_eq!(
                got.as_deref(),
                want.as_deref(),
                "step {step}: sharded and oracle disagree on key {i}"
            );
            if got.is_none() {
                let displaced_sharded = c.insert_with_payload(
                    fp,
                    "csa",
                    &set,
                    None,
                    Schedule::default(),
                    &PowerReport::default(),
                    None,
                    payload(i),
                );
                let displaced_oracle = oracles[shard].insert_with_payload(
                    fp,
                    "csa",
                    &set,
                    None,
                    Schedule::default(),
                    &PowerReport::default(),
                    None,
                    payload(i),
                );
                assert_eq!(displaced_sharded.is_some(), displaced_oracle.is_some());
            }
        }
        for (idx, oracle) in oracles.iter().enumerate() {
            assert_eq!(
                c.shard_stats(idx),
                oracle.stats(),
                "shard {idx} counters diverge from the unsharded oracle"
            );
        }
    }

    #[test]
    fn rollup_equals_sum_of_shard_counters() {
        let c = ShardedScheduleCache::new(8, 2);
        for round in 0..3 {
            for i in 0..20 {
                let (fp, set) = key(i);
                if c.lookup_payload(fp, "csa", &set, None).is_none() {
                    c.insert_with_payload(
                        fp,
                        "csa",
                        &set,
                        None,
                        Schedule::default(),
                        &PowerReport::default(),
                        None,
                        payload(i),
                    );
                }
                let _ = round;
            }
        }
        let per_shard = c.all_shard_stats();
        let rollup = c.stats();
        assert_eq!(rollup.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(rollup.misses, per_shard.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(rollup.evictions, per_shard.iter().map(|s| s.evictions).sum::<u64>());
        assert_eq!(rollup.collisions, per_shard.iter().map(|s| s.collisions).sum::<u64>());
        assert_eq!(rollup.entries, per_shard.iter().map(|s| s.entries).sum::<usize>());
        assert_eq!(rollup.capacity, per_shard.iter().map(|s| s.capacity).sum::<usize>());
        assert!(rollup.hits > 0 && rollup.misses > 0, "workload exercised both outcomes");
    }

    #[test]
    fn truncated_fingerprints_collide_within_shard_zero() {
        let c = ShardedScheduleCache::with_fp_bits(16, 2, 4);
        let mut served_other_key = 0;
        for i in 0..32 {
            let (fp, set) = key(i);
            assert_eq!(c.shard_of(fp), 0, "truncated fingerprints all shard to 0");
            if let Some(p) = c.lookup_payload(fp, "csa", &set, None) {
                // A hit must be *our* payload — collisions are misses.
                assert_eq!(&*p, &*payload(i), "collision served another key's payload");
                served_other_key += 1;
            } else {
                c.insert_with_payload(
                    fp,
                    "csa",
                    &set,
                    None,
                    Schedule::default(),
                    &PowerReport::default(),
                    None,
                    payload(i),
                );
            }
        }
        let _ = served_other_key;
        let stats = c.stats();
        assert!(stats.collisions > 0, "4-bit fingerprints over 32 keys must collide");
        for idx in 1..c.num_shards() {
            let s = c.shard_stats(idx);
            assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0), "shard {idx} should be idle");
        }
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let c = ShardedScheduleCache::new(8, 1);
        for i in 0..8 {
            let (fp, set) = key(i);
            c.insert_with_payload(
                fp,
                "csa",
                &set,
                None,
                Schedule::default(),
                &PowerReport::default(),
                None,
                payload(i),
            );
        }
        assert!(c.stats().entries > 0);
        c.clear();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions), (0, 0, 0, 0));
        assert_eq!(s.capacity, c.num_shards() * c.shard_capacity());
    }
}
