//! The normalized result every router returns: one schedule, one power
//! report, per-phase timings, and a typed bag of router-specific extras.

use cst_baseline::{GreedyOutcome, RoyOutcome, ScanOrder};
use cst_comm::Schedule;
use cst_core::{PowerMeter, PowerReport};
use cst_padr::{ControlMetrics, CsaTimings};

/// Wall-clock nanoseconds of one routing request, split by phase where the
/// router can attribute them. Every router fills `total_ns`; only the CSA
/// family attributes the validate/phase1/rounds split (other routers leave
/// those at zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Input validation (orientation + well-nestedness checks).
    pub validate_ns: u64,
    /// Phase-1 bottom-up counter sweep.
    pub phase1_ns: u64,
    /// Round generation (Phase-2 sweeps, schedule assembly).
    pub rounds_ns: u64,
    /// End-to-end time of the `route` call.
    pub total_ns: u64,
}

impl PhaseTimings {
    /// Build from the CSA scratch's per-phase split plus the engine's
    /// end-to-end measurement.
    pub(crate) fn from_csa(t: CsaTimings, total_ns: u64) -> Self {
        PhaseTimings {
            validate_ns: t.validate_ns,
            phase1_ns: t.phase1_ns,
            rounds_ns: t.rounds_ns,
            total_ns,
        }
    }

    /// Total-only timings (routers without a phase split).
    pub(crate) fn total_only(total_ns: u64) -> Self {
        PhaseTimings { total_ns, ..Default::default() }
    }
}

/// Router-specific results that do not fit the common shape. Typed, so
/// consumers can match instead of stringly-typed downcasting.
#[derive(Clone, Debug)]
pub enum RouteExtra {
    /// CSA family (serial, parallel, threaded): control-plane counters and
    /// the raw power meter (recycled by [`crate::EngineCtx::recycle`]).
    Csa {
        metrics: ControlMetrics,
        meter: PowerMeter,
    },
    /// Orientation decomposition: rounds per half.
    General { right_rounds: usize, left_rounds: usize },
    /// Crossing-free layering: number of layers.
    Layered { num_layers: usize },
    /// Orientation + layering composition: layers per half.
    Universal { right_layers: usize, left_layers: usize },
    /// Greedy baseline: the scan order used.
    Greedy { order: ScanOrder },
    /// Roy-style baseline: per-communication ID levels.
    Roy { levels: Vec<u32>, max_level: u32 },
    /// Served from the schedule cache without touching a scheduler; the
    /// stats snapshot includes this hit.
    Cached { stats: crate::CacheStats },
    /// Nothing beyond the common shape.
    None,
}

/// Normalized outcome of one routing request.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    /// Registry name of the router that produced this outcome.
    pub router: &'static str,
    /// The rounds: scheduled communications + per-switch configurations.
    pub schedule: Schedule,
    /// Number of rounds (`== schedule.num_rounds()`, denormalized for
    /// table-building consumers).
    pub rounds: usize,
    /// Power accounting under the PADR model (hold + write-through).
    pub power: PowerReport,
    /// Per-phase wall-clock timings of this request.
    pub timings: PhaseTimings,
    /// Router-specific extras.
    pub extra: RouteExtra,
    /// Fault-mask accounting; `None` unless the request went through
    /// [`crate::EngineCtx::route_masked`].
    pub degradation: Option<crate::DegradationReport>,
}

impl RouteOutcome {
    /// Reassemble the CSA-family outcome this route produced, or `None`
    /// for non-CSA routers. Consumes the outcome (the schedule and meter
    /// move into the returned value).
    pub fn into_csa(self) -> Option<cst_padr::CsaOutcome> {
        match self.extra {
            RouteExtra::Csa { metrics, meter } => Some(cst_padr::CsaOutcome {
                schedule: self.schedule,
                power: self.power,
                meter,
                metrics,
            }),
            _ => None,
        }
    }
}

pub(crate) fn from_greedy(
    router: &'static str,
    out: GreedyOutcome,
    power: PowerReport,
    timings: PhaseTimings,
) -> RouteOutcome {
    let rounds = out.schedule.num_rounds();
    RouteOutcome {
        router,
        schedule: out.schedule,
        rounds,
        power,
        timings,
        extra: RouteExtra::Greedy { order: out.order },
        degradation: None,
    }
}

pub(crate) fn from_roy(
    router: &'static str,
    out: RoyOutcome,
    power: PowerReport,
    timings: PhaseTimings,
) -> RouteOutcome {
    let rounds = out.schedule.num_rounds();
    RouteOutcome {
        router,
        schedule: out.schedule,
        rounds,
        power,
        timings,
        extra: RouteExtra::Roy { levels: out.levels, max_level: out.max_level },
        degradation: None,
    }
}
