//! Cross-caller single-flight coalescing for cache misses.
//!
//! When several connections miss the schedule cache on the same request
//! fingerprint at once, routing the set once is enough: the first caller
//! to register becomes the **leader** and computes; everyone else parks
//! on a per-key `Condvar` and receives the leader's encoded payload
//! (`Arc<[u8]>`) directly. The table holds full request keys, not just
//! fingerprints, so a fingerprint collision never coalesces two
//! different requests — the collider is told to route solo.
//!
//! Failure is first-class: completing a flight consumes a
//! [`FlightLease`]; if the leader errors out (or panics — the lease's
//! `Drop` runs during unwind), the flight is marked failed, every waiter
//! is woken, and each falls back to the normal miss path. Waiters also
//! carry a deadline so a wedged leader can never strand them. In all
//! cases the flight is removed from the table when it resolves, so the
//! *next* miss for the key starts a fresh flight.
//!
//! Locking: the table mutex is held only for map operations; waiting
//! happens on the flight's own state mutex. Neither is ever held while
//! calling user code, so the primitive composes with any cache or
//! routing locks the caller holds before/after.

use cst_comm::CommSet;
use cst_core::FaultMask;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Resolution state of one in-flight computation.
#[derive(Debug, Clone)]
enum FlightState {
    Pending,
    Done(Arc<[u8]>),
    Failed,
}

/// One in-flight computation: resolution state plus the wake channel.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Table entry: the flight plus the leader's full request key, so
/// joiners can refuse to coalesce across a fingerprint collision.
#[derive(Debug)]
struct FlightEntry {
    flight: Arc<Flight>,
    router: String,
    set: CommSet,
    mask: Option<FaultMask>,
}

/// The cross-caller single-flight table. Cheap to share (`Arc` the whole
/// struct or embed it in an `Arc`'d aggregate); all methods take `&self`.
#[derive(Debug, Default)]
pub struct SingleFlight {
    table: Arc<Mutex<HashMap<u64, FlightEntry>>>,
}

/// What [`SingleFlight::join`] decided for this caller.
#[derive(Debug)]
pub enum Joined {
    /// No flight was registered for the key: the caller is now the
    /// leader and **must** resolve the lease — [`FlightLease::complete`]
    /// on success, or drop it on failure (including by panic) so waiters
    /// are released into their own miss path.
    Lead(FlightLease),
    /// A leader was already in flight for an equal key; this caller
    /// parked and received the leader's payload.
    Wait(Arc<[u8]>),
    /// A leader was in flight but failed (or the wait deadline passed):
    /// the caller should take the normal miss path itself.
    Failed,
    /// A flight exists under this fingerprint for a *different* full
    /// key (fingerprint collision): never coalesce — route solo,
    /// without touching the flight.
    Mismatch,
}

/// Leadership of one flight (see [`Joined::Lead`]). Completing publishes
/// the payload to every waiter and retires the flight; dropping without
/// completing marks it failed and still wakes everyone.
#[derive(Debug)]
pub struct FlightLease {
    table: Arc<Mutex<HashMap<u64, FlightEntry>>>,
    flight: Arc<Flight>,
    fp: u64,
    completed: bool,
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Number of flights currently pending (diagnostics).
    pub fn in_flight(&self) -> usize {
        match self.table.lock() {
            Ok(t) => t.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Join (or start) the flight for `fp`. The full key is recorded by
    /// the leader and equality-checked by joiners; `timeout` bounds how
    /// long a joiner will wait for the leader before giving up with
    /// [`Joined::Failed`].
    pub fn join(
        &self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        timeout: Duration,
    ) -> Joined {
        let flight = {
            let mut table = match self.table.lock() {
                Ok(t) => t,
                Err(p) => p.into_inner(),
            };
            match table.get(&fp) {
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        cv: Condvar::new(),
                    });
                    table.insert(
                        fp,
                        FlightEntry {
                            flight: Arc::clone(&flight),
                            router: router.to_owned(),
                            set: set.clone(),
                            mask: mask.cloned(),
                        },
                    );
                    return Joined::Lead(FlightLease {
                        table: Arc::clone(&self.table),
                        flight,
                        fp,
                        completed: false,
                    });
                }
                Some(entry) => {
                    let key_equal = entry.router == router
                        && entry.set == *set
                        && match (&entry.mask, mask) {
                            (None, None) => true,
                            (Some(a), Some(b)) => a == b,
                            _ => false,
                        };
                    if !key_equal {
                        return Joined::Mismatch;
                    }
                    Arc::clone(&entry.flight)
                }
            }
        };
        // Park outside the table lock so new keys keep flowing while we
        // wait. wait_timeout can wake spuriously; loop on the state.
        let deadline = std::time::Instant::now() + timeout;
        let mut state = match flight.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            match &*state {
                FlightState::Done(payload) => return Joined::Wait(Arc::clone(payload)),
                FlightState::Failed => return Joined::Failed,
                FlightState::Pending => {}
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                return Joined::Failed;
            };
            state = match flight.cv.wait_timeout(state, left) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
    }
}

impl FlightLease {
    /// Publish the leader's payload to every waiter and retire the
    /// flight. Call this *after* inserting the payload into the cache:
    /// then a latecomer that finds the table empty is guaranteed a cache
    /// hit, which is what makes "exactly one computation per in-flight
    /// fingerprint" a hard property rather than a racy one.
    pub fn complete(mut self, payload: Arc<[u8]>) {
        self.resolve(FlightState::Done(payload));
        self.completed = true;
    }

    fn resolve(&self, state: FlightState) {
        {
            let mut s = match self.flight.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *s = state;
        }
        self.flight.cv.notify_all();
        let mut table = match self.table.lock() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        };
        // Only remove our own flight: after a failure resolution a new
        // leader may already have registered a fresh one under this fp.
        if let Some(entry) = table.get(&self.fp) {
            if Arc::ptr_eq(&entry.flight, &self.flight) {
                table.remove(&self.fp);
            }
        }
    }
}

impl Drop for FlightLease {
    /// A lease dropped without completing — the leader returned an error
    /// or is unwinding from a panic — fails the flight so waiters fall
    /// back to their own miss path instead of hanging.
    fn drop(&mut self) {
        if !self.completed {
            self.resolve(FlightState::Failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    fn set() -> CommSet {
        CommSet::from_pairs(8, &[(0, 7)])
    }

    fn other_set() -> CommSet {
        CommSet::from_pairs(8, &[(1, 6)])
    }

    const WAIT: Duration = Duration::from_secs(10);

    #[test]
    fn first_joiner_leads_then_waiters_receive_the_payload() {
        let sf = Arc::new(SingleFlight::new());
        let s = set();
        let lease = match sf.join(42, "csa", &s, None, WAIT) {
            Joined::Lead(lease) => lease,
            other => panic!("expected Lead, got {other:?}"),
        };
        assert_eq!(sf.in_flight(), 1);
        let n = 4;
        let barrier = Arc::new(Barrier::new(n + 1));
        let waiters: Vec<_> = (0..n)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                let s = set();
                thread::spawn(move || {
                    barrier.wait();
                    sf.join(42, "csa", &s, None, WAIT)
                })
            })
            .collect();
        barrier.wait();
        // Give the waiters a beat to park before resolving.
        thread::sleep(Duration::from_millis(100));
        lease.complete(Arc::from(&b"payload"[..]));
        let mut served = 0;
        for w in waiters {
            match w.join().unwrap() {
                // A waiter that parked before completion gets the bytes;
                // one that joined after retirement leads a fresh flight
                // (and would find the payload in the cache in real use).
                // A waiter of such a *late* flight can even time out if
                // this thread is still blocked joining earlier handles —
                // the daemon handles that by routing solo.
                Joined::Wait(p) => {
                    assert_eq!(&*p, b"payload");
                    served += 1;
                }
                Joined::Lead(lease) => lease.complete(Arc::from(&b"payload"[..])),
                Joined::Failed => {}
                Joined::Mismatch => panic!("equal keys must never mismatch"),
            }
        }
        assert!(served >= 1, "at least one waiter was served by the leader");
        assert_eq!(sf.in_flight(), 0, "completed flights are retired");
    }

    #[test]
    fn dropped_lease_fails_waiters_and_next_joiner_leads() {
        let sf = Arc::new(SingleFlight::new());
        let s = set();
        let lease = match sf.join(7, "csa", &s, None, WAIT) {
            Joined::Lead(l) => l,
            other => panic!("expected Lead, got {other:?}"),
        };
        let waiter = {
            let sf = Arc::clone(&sf);
            let s = set();
            thread::spawn(move || sf.join(7, "csa", &s, None, WAIT))
        };
        // Let the waiter park (best effort; Failed is correct either way).
        thread::sleep(Duration::from_millis(20));
        drop(lease); // leader "panicked"
        assert!(matches!(waiter.join().unwrap(), Joined::Failed | Joined::Lead(_)));
        assert_eq!(sf.in_flight(), 0);
        // The failure is not sticky: a fresh miss starts a fresh flight.
        match sf.join(7, "csa", &s, None, WAIT) {
            Joined::Lead(lease) => lease.complete(Arc::from(&b"ok"[..])),
            other => panic!("expected a fresh Lead, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_collisions_never_coalesce() {
        let sf = SingleFlight::new();
        let s = set();
        let lease = match sf.join(9, "csa", &s, None, WAIT) {
            Joined::Lead(l) => l,
            other => panic!("expected Lead, got {other:?}"),
        };
        // Same fp, different set / router / mask presence: all mismatches.
        assert!(matches!(sf.join(9, "csa", &other_set(), None, WAIT), Joined::Mismatch));
        assert!(matches!(sf.join(9, "greedy", &s, None, WAIT), Joined::Mismatch));
        let topo = cst_core::CstTopology::with_leaves(8);
        let mask = FaultMask::empty(&topo);
        assert!(matches!(sf.join(9, "csa", &s, Some(&mask), WAIT), Joined::Mismatch));
        lease.complete(Arc::from(&b"x"[..]));
    }

    #[test]
    fn waiters_time_out_instead_of_hanging() {
        let sf = SingleFlight::new();
        let s = set();
        let _lease = match sf.join(3, "csa", &s, None, WAIT) {
            Joined::Lead(l) => l,
            other => panic!("expected Lead, got {other:?}"),
        };
        // The leader never resolves within the joiner's budget.
        let t0 = std::time::Instant::now();
        assert!(matches!(
            sf.join(3, "csa", &s, None, Duration::from_millis(30)),
            Joined::Failed
        ));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn concurrent_herd_has_exactly_one_leader() {
        let sf = Arc::new(SingleFlight::new());
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let s = set();
                    barrier.wait();
                    match sf.join(100, "csa", &s, None, WAIT) {
                        Joined::Lead(lease) => {
                            // Simulate the route + cache insert. Generous
                            // so even a descheduled joiner on a loaded
                            // single-core box arrives while pending.
                            thread::sleep(Duration::from_millis(300));
                            lease.complete(Arc::from(&b"herd"[..]));
                            (1u32, 0u32)
                        }
                        Joined::Wait(p) => {
                            assert_eq!(&*p, b"herd");
                            (0, 1)
                        }
                        other => panic!("unexpected outcome {other:?}"),
                    }
                })
            })
            .collect();
        let (mut leads, mut waits) = (0, 0);
        for h in handles {
            let (l, w) = h.join().unwrap();
            leads += l;
            waits += w;
        }
        // Every thread joined while the flight table was observably in
        // one lifetime (the leader sleeps 10ms before completing), so
        // exactly one led. In the full daemon even a post-retirement
        // joiner is safe: the cache is populated before retirement.
        assert_eq!(leads, 1, "exactly one leader per flight lifetime");
        assert_eq!(waits as usize, n - 1);
    }
}
