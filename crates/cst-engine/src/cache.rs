//! The schedule cache: an arena-backed LRU keyed by request fingerprint.
//!
//! Entries live in a fixed-capacity slab (`Vec<Entry>`); recency is an
//! intrusive doubly-linked list threaded through the slab by index, and a
//! `HashMap<u64, u32>` maps a request fingerprint to its slot. A lookup
//! is: hash probe, then a **full equality check** of the stored key
//! (router, set, mask) — a 64-bit fingerprint can collide, and the
//! equality fallback turns a collision into a counted miss instead of a
//! wrong schedule (property-tested with deliberately truncated
//! fingerprints, see `tests/fingerprint_proptests.rs`).
//!
//! Eviction overwrites the least-recently-used slot **in place** with
//! `clone_from`, so the evicted entry's buffers (set, schedule rounds)
//! are reused; in steady state the cache churns without growing. The hit
//! path itself never touches the allocator — the engine clones the
//! cached schedule out through pooled round shells
//! ([`cst_comm::SchedulePool::copy_schedule`]), which the workspace
//! allocation gate pins at 0 allocs / 0 bytes when warm.

use crate::DegradationReport;
use cst_comm::{CommSet, Schedule};
use cst_core::{CstError, CstTopology, FaultMask, PowerReport};
use cst_sim::CompiledProgram;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Running counters of one [`ScheduleCache`]. Attached to cache-hit
/// outcomes (`RouteExtra::Cached`) and the stream tool's JSON report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the scheduler.
    pub misses: u64,
    /// Entries overwritten to make room.
    pub evictions: u64,
    /// Of the misses, how many hit an equal fingerprint with an unequal
    /// key — the equality fallback firing.
    pub collisions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Of the hits, how many were answered by the lock-free hit tier in
    /// front of the locked LRU (always 0 for a plain [`ScheduleCache`];
    /// populated by `ShardedScheduleCache`). Already included in `hits`,
    /// never in addition to it.
    pub tier_hits: u64,
}

/// Slab index sentinel: no neighbor / no entry.
const NIL: u32 = u32::MAX;

/// What [`ScheduleCache::insert`] did to the slab. `displaced` is a
/// schedule the caller should recycle into its pool (the evicted
/// victim's, or the rejected input when the cache is disabled);
/// `resident` borrows the freshly written entry's schedule for copy-out;
/// `evicted_fp` is the masked fingerprint of a *different* key whose slot
/// was reclaimed (`None` for fills and same-fingerprint overwrites) — the
/// sharded front tier uses it to invalidate its copy of the victim.
pub(crate) struct InsertOutcome<'a> {
    pub(crate) displaced: Option<Schedule>,
    pub(crate) resident: Option<&'a Schedule>,
    pub(crate) evicted_fp: Option<u64>,
}

/// What [`ScheduleCache::insert_with_payload`] did: like
/// [`InsertOutcome`] but owning no borrow, plus whether the payload is
/// now resident (false when the cache is disabled) so the caller knows
/// whether publishing the key to a front tier is sound.
pub(crate) struct PayloadInsertOutcome {
    pub(crate) displaced: Option<Schedule>,
    pub(crate) evicted_fp: Option<u64>,
    pub(crate) resident: bool,
}

/// One cached routing outcome with its full request key.
#[derive(Debug)]
pub(crate) struct Entry {
    /// Effective (possibly test-truncated) request fingerprint.
    fp: u64,
    pub(crate) router: &'static str,
    pub(crate) set: CommSet,
    pub(crate) mask: Option<FaultMask>,
    pub(crate) schedule: Schedule,
    pub(crate) rounds: usize,
    pub(crate) power: PowerReport,
    pub(crate) degradation: Option<DegradationReport>,
    /// Lazily-attached compiled replay program for this entry's schedule
    /// (see `EngineCtx::route_compiled`): compiled on the first compiled
    /// request, reused verbatim by every later hit. Overwriting the entry
    /// salvages the program's buffers into the cache's spare pool.
    pub(crate) compiled: Option<CompiledProgram>,
    /// Fully-encoded response bytes for this entry (the serve daemon's
    /// unit of caching): a hit is an `Arc` clone plus a socket write, no
    /// re-serialization. `None` for entries routed through the plain
    /// engine paths.
    pub(crate) payload: Option<std::sync::Arc<[u8]>>,
    /// Intrusive LRU links (slab indices).
    prev: u32,
    next: u32,
}

/// Fixed-capacity LRU cache of routing outcomes. See the module docs for
/// the representation; see `EngineCtx::route_cached` for the keying rules
/// (router name + set fingerprint + fault-mask fingerprint).
#[derive(Debug)]
pub struct ScheduleCache {
    slab: Vec<Entry>,
    by_fp: HashMap<u64, u32>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (eviction victim).
    tail: u32,
    capacity: usize,
    /// AND-mask applied to every fingerprint before use. `!0` in
    /// production; tests truncate it to force collisions and exercise
    /// the equality fallback.
    fp_mask: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
    /// Compiled programs salvaged from overwritten entries, reused (via
    /// `recompile`) before allocating fresh ones — `SchedulePool` for
    /// straight-line programs.
    spare_programs: Vec<CompiledProgram>,
    /// Programs compiled and attached to entries (not served from one) —
    /// the "zero recompilation on a hit" counter.
    compile_count: u64,
}

impl ScheduleCache {
    /// An empty cache holding at most `capacity` entries (0 disables it:
    /// every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> ScheduleCache {
        ScheduleCache {
            slab: Vec::with_capacity(capacity.min(1024)),
            by_fp: HashMap::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            capacity,
            fp_mask: !0,
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
            spare_programs: Vec::new(),
            compile_count: 0,
        }
    }

    /// How many times a compiled program was built (first compiled request
    /// per resident entry). Hits on an already-attached program do not
    /// count — that is the point.
    #[doc(hidden)]
    pub fn compile_count(&self) -> u64 {
        self.compile_count
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            collisions: self.collisions,
            entries: self.slab.len(),
            capacity: self.capacity,
            tier_hits: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Truncate every fingerprint to its low bits before use. Test knob:
    /// forcing e.g. an 8-bit fingerprint space makes collisions routine,
    /// so the equality fallback is exercised instead of being a
    /// one-in-2^64 code path. Applies to future operations only.
    #[doc(hidden)]
    pub fn set_fp_bits(&mut self, bits: u32) {
        self.fp_mask = if bits >= 64 { !0 } else { (1u64 << bits) - 1 };
    }

    /// Look up a request. A hit requires fingerprint match **and** full
    /// key equality; the entry is bumped to most-recently-used. A
    /// fingerprint match with an unequal key counts as a collision (and
    /// a miss) — never a wrong answer.
    pub(crate) fn lookup(
        &mut self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Option<&Entry> {
        let fp = fp & self.fp_mask;
        match self.by_fp.get(&fp) {
            Some(&slot) => {
                let e = &self.slab[slot as usize];
                if e.router == router && e.set == *set && e.mask.as_deref_eq(mask) {
                    self.hits += 1;
                    self.bump(slot);
                    Some(&self.slab[slot as usize])
                } else {
                    self.collisions += 1;
                    self.misses += 1;
                    None
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or overwrite) the outcome for a request key.
    ///
    /// Takes the schedule **by value**: the freshly routed schedule moves
    /// into the entry instead of being cloned, which keeps the miss path
    /// within a few percent of an uncached route (the engine then copies
    /// it back out through pooled shells, the same cheap path a hit
    /// takes). See [`InsertOutcome`] for what comes back.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &mut self,
        fp: u64,
        router: &'static str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        schedule: Schedule,
        power: &PowerReport,
        degradation: Option<&DegradationReport>,
    ) -> InsertOutcome<'_> {
        if self.capacity == 0 {
            return InsertOutcome { displaced: Some(schedule), resident: None, evicted_fp: None };
        }
        let fp = fp & self.fp_mask;
        let mut evicted_fp = None;
        let slot = if let Some(&slot) = self.by_fp.get(&fp) {
            // Same fingerprint already resident: overwrite in place
            // (either a refresh of the same key, or a collision victim —
            // one slot per fingerprint either way).
            slot
        } else if self.slab.len() < self.capacity {
            let slot = self.slab.len() as u32;
            self.slab.push(Entry {
                fp,
                router,
                set: CommSet::empty(0),
                mask: None,
                schedule: Schedule::default(),
                rounds: 0,
                power: PowerReport::default(),
                degradation: None,
                compiled: None,
                payload: None,
                prev: NIL,
                next: NIL,
            });
            self.attach_front(slot);
            slot
        } else {
            // Evict the least-recently-used entry, reusing its slot.
            let victim = self.tail;
            self.evictions += 1;
            evicted_fp = Some(self.slab[victim as usize].fp);
            self.by_fp.remove(&self.slab[victim as usize].fp);
            self.bump(victim);
            victim
        };
        self.by_fp.insert(fp, slot);
        // The slot's compiled program (if any) was lowered from the
        // schedule being overwritten: stale now, but its buffers are not —
        // salvage it for the next first-compile.
        if let Some(stale) = self.slab[slot as usize].compiled.take() {
            self.spare_programs.push(stale);
        }
        let e = &mut self.slab[slot as usize];
        // Any encoded payload was serialized from the overwritten
        // schedule; it must not survive the overwrite.
        e.payload = None;
        e.fp = fp;
        e.router = router;
        e.set.clone_from(set);
        match (&mut e.mask, mask) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.cloned(),
        }
        e.rounds = schedule.num_rounds();
        let displaced = std::mem::replace(&mut e.schedule, schedule);
        e.power.clone_from(power);
        match (&mut e.degradation, degradation) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.cloned(),
        }
        self.bump(slot);
        InsertOutcome {
            displaced: Some(displaced),
            resident: Some(&self.slab[slot as usize].schedule),
            evicted_fp,
        }
    }

    /// Bump the entry at `fp` to most-recently-used **iff** the full
    /// request key matches — no counters move. The sharded cache calls
    /// this after a front-tier hit so the locked LRU's recency order
    /// stays exactly what it would have been had the hit gone through
    /// [`Self::lookup_payload`].
    pub(crate) fn touch(
        &mut self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) {
        let fp = fp & self.fp_mask;
        if let Some(&slot) = self.by_fp.get(&fp) {
            let e = &self.slab[slot as usize];
            if e.router == router && e.set == *set && e.mask.as_deref_eq(mask) {
                self.bump(slot);
            }
        }
    }

    /// Look up the *encoded response payload* for a request — the serve
    /// daemon's hit path. Identical keying rules to [`Self::lookup`], but
    /// a hit additionally requires an attached payload; a resident entry
    /// without one (inserted through the plain engine paths) counts as a
    /// miss, so `hits + misses` always equals the number of payload
    /// lookups performed.
    pub(crate) fn lookup_payload(
        &mut self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Option<std::sync::Arc<[u8]>> {
        let fp = fp & self.fp_mask;
        match self.by_fp.get(&fp) {
            Some(&slot) => {
                let e = &self.slab[slot as usize];
                if e.router == router && e.set == *set && e.mask.as_deref_eq(mask) {
                    if let Some(payload) = e.payload.clone() {
                        self.hits += 1;
                        self.bump(slot);
                        return Some(payload);
                    }
                    self.misses += 1;
                    None
                } else {
                    self.collisions += 1;
                    self.misses += 1;
                    None
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`Self::insert`], then attach the encoded response payload to the
    /// freshly written entry. See [`PayloadInsertOutcome`] for what comes
    /// back.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_with_payload(
        &mut self,
        fp: u64,
        router: &'static str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        schedule: Schedule,
        power: &PowerReport,
        degradation: Option<&DegradationReport>,
        payload: std::sync::Arc<[u8]>,
    ) -> PayloadInsertOutcome {
        let out = self.insert(fp, router, set, mask, schedule, power, degradation);
        let (displaced, evicted_fp) = (out.displaced, out.evicted_fp);
        let fp = fp & self.fp_mask;
        let mut resident = false;
        if let Some(&slot) = self.by_fp.get(&fp) {
            self.slab[slot as usize].payload = Some(payload);
            resident = true;
        }
        PayloadInsertOutcome { displaced, evicted_fp, resident }
    }

    /// The compiled replay program of the entry at `fp`, lowering and
    /// attaching it on first use (reusing a salvaged spare program's
    /// buffers when one is available). Returns `None` when no entry
    /// matches the full request key — the cache is disabled, or the slot
    /// was lost to a fingerprint collision since the schedule was routed.
    pub(crate) fn compiled_program(
        &mut self,
        fp: u64,
        router: &str,
        set: &CommSet,
        mask: Option<&FaultMask>,
        topo: &CstTopology,
    ) -> Result<Option<&CompiledProgram>, CstError> {
        let fp = fp & self.fp_mask;
        let Some(&slot) = self.by_fp.get(&fp) else { return Ok(None) };
        let spare = self.spare_programs.pop();
        let e = &mut self.slab[slot as usize];
        if !(e.router == router && e.set == *set && e.mask.as_deref_eq(mask)) {
            if let Some(p) = spare {
                self.spare_programs.push(p);
            }
            return Ok(None);
        }
        if e.compiled.is_none() {
            let prog = match spare {
                Some(mut p) => {
                    p.recompile(topo, &e.set, &e.schedule)?;
                    p
                }
                None => CompiledProgram::compile(topo, &e.set, &e.schedule)?,
            };
            e.compiled = Some(prog);
            self.compile_count += 1;
        } else if let Some(p) = spare {
            self.spare_programs.push(p);
        }
        Ok(self.slab[slot as usize].compiled.as_ref())
    }

    /// Move `slot` to the most-recently-used position.
    fn bump(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.detach(slot);
        self.attach_front(slot);
    }

    fn detach(&mut self, slot: u32) {
        let (prev, next) = {
            let e = &self.slab[slot as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        let e = &mut self.slab[slot as usize];
        e.prev = NIL;
        e.next = NIL;
    }

    fn attach_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[slot as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// Equality between an `Option<FaultMask>` entry key and the request's
/// `Option<&FaultMask>` without cloning either.
trait AsDerefEq {
    fn as_deref_eq(&self, other: Option<&FaultMask>) -> bool;
}

impl AsDerefEq for Option<FaultMask> {
    fn as_deref_eq(&self, other: Option<&FaultMask>) -> bool {
        match (self, other) {
            (None, None) => true,
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_key(i: usize) -> (u64, CommSet) {
        let set = CommSet::from_pairs(8, &[(0, i % 7 + 1)]);
        (set.fingerprint(), set)
    }

    fn dummy_schedule() -> Schedule {
        Schedule::default()
    }

    #[test]
    fn hit_requires_full_key_equality() {
        let mut c = ScheduleCache::new(4);
        let (fp, set) = entry_key(1);
        assert!(c.lookup(fp, "csa", &set, None).is_none());
        c.insert(fp, "csa", &set, None, dummy_schedule(), &PowerReport::default(), None);
        assert!(c.lookup(fp, "csa", &set, None).is_some());
        // Same fingerprint, different router: the fallback rejects it.
        assert!(c.lookup(fp, "greedy", &set, None).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.collisions), (1, 2, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = ScheduleCache::new(2);
        let keys: Vec<_> = (1..=3).map(entry_key).collect();
        for (fp, set) in &keys[..2] {
            c.insert(*fp, "csa", set, None, dummy_schedule(), &PowerReport::default(), None);
        }
        // Touch key 0 so key 1 is the LRU victim.
        assert!(c.lookup(keys[0].0, "csa", &keys[0].1, None).is_some());
        c.insert(keys[2].0, "csa", &keys[2].1, None, dummy_schedule(), &PowerReport::default(), None);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
        assert!(c.lookup(keys[0].0, "csa", &keys[0].1, None).is_some());
        assert!(c.lookup(keys[1].0, "csa", &keys[1].1, None).is_none());
        assert!(c.lookup(keys[2].0, "csa", &keys[2].1, None).is_some());
    }

    #[test]
    fn truncated_fingerprints_collide_safely() {
        let mut c = ScheduleCache::new(8);
        c.set_fp_bits(0); // every fingerprint is 0: one slot, constant war
        let keys: Vec<_> = (1..=4).map(entry_key).collect();
        for (fp, set) in &keys {
            c.insert(*fp, "csa", set, None, dummy_schedule(), &PowerReport::default(), None);
        }
        assert_eq!(c.len(), 1, "one slot per (masked) fingerprint");
        // Only the last insert survives; earlier keys collide and miss —
        // never return another key's schedule.
        assert!(c.lookup(keys[3].0, "csa", &keys[3].1, None).is_some());
        for (fp, set) in &keys[..3] {
            assert!(c.lookup(*fp, "csa", set, None).is_none());
        }
        assert_eq!(c.stats().collisions, 3);
    }

    #[test]
    fn payload_hits_require_an_attached_payload() {
        let mut c = ScheduleCache::new(4);
        let (fp, set) = entry_key(1);
        // Plain insert: resident, but no payload — a payload lookup is a
        // counted miss, never a half-hit.
        c.insert(fp, "csa", &set, None, dummy_schedule(), &PowerReport::default(), None);
        assert!(c.lookup_payload(fp, "csa", &set, None).is_none());
        let payload: std::sync::Arc<[u8]> = std::sync::Arc::from(&b"frame"[..]);
        c.insert_with_payload(
            fp,
            "csa",
            &set,
            None,
            dummy_schedule(),
            &PowerReport::default(),
            None,
            payload,
        );
        assert_eq!(c.lookup_payload(fp, "csa", &set, None).as_deref(), Some(&b"frame"[..]));
        // Overwriting through the plain path invalidates the payload.
        c.insert(fp, "csa", &set, None, dummy_schedule(), &PowerReport::default(), None);
        assert!(c.lookup_payload(fp, "csa", &set, None).is_none());
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 3, "every payload lookup counts exactly once");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ScheduleCache::new(0);
        let (fp, set) = entry_key(1);
        c.insert(fp, "csa", &set, None, dummy_schedule(), &PowerReport::default(), None);
        assert!(c.lookup(fp, "csa", &set, None).is_none());
        assert_eq!(c.len(), 0);
    }
}
