//! # cst-engine — one front door for every CST scheduler
//!
//! Unifies the workspace's ten scheduling entry points behind a single
//! [`Router`] trait with a normalized [`RouteOutcome`], a reusable
//! [`EngineCtx`] holding every scratch buffer (so repeated scheduling
//! through one context reaches a zero-allocation steady state on the
//! serial CSA path), and a [`registry()`] mapping stable names to boxed
//! routers. See `docs/ENGINE.md` for the architecture.
//!
//! ```
//! use cst_core::CstTopology;
//! use cst_comm::CommSet;
//! use cst_engine::EngineCtx;
//!
//! let topo = CstTopology::with_leaves(16);
//! let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (8, 15)]);
//! let mut ctx = EngineCtx::new(); // reuse across requests
//! for name in ["csa", "general", "greedy"] {
//!     let out = ctx.route_named(name, &topo, &set).unwrap();
//!     assert!(out.rounds >= 2);
//!     ctx.recycle(out); // schedule + meter go back to the pool
//! }
//! ```

mod cache;
mod ctx;
mod degrade;
mod flight;
mod general;
mod outcome;
mod registry;
mod router;
mod shard;

pub use cache::{CacheStats, ScheduleCache};
pub use ctx::{request_fingerprint, EngineCtx, DEFAULT_CACHE_CAPACITY};
pub use flight::{FlightLease, Joined, SingleFlight};
pub use shard::ShardedScheduleCache;
pub use degrade::{route_once_masked, DegradationReport, DroppedComm, ReroutedComm};
pub use general::GeneralOutcome;
pub use outcome::{PhaseTimings, RouteExtra, RouteOutcome};
pub use registry::{find, names, registry, route_once, CANONICAL};
pub use router::{
    Csa, CsaNoPrune, CsaParallel, CsaThreaded, General, GeneralMerged, Greedy, Layered, Roy,
    Router, Sequential, Universal,
};

#[cfg(test)]
mod tests {
    use super::*;
    use cst_comm::CommSet;
    use cst_core::{CstError, CstTopology, FaultCause, FaultMask, NodeId};

    #[test]
    fn canonical_names_resolve_and_match() {
        for name in CANONICAL {
            let router = find(name).unwrap_or_else(|| panic!("{name} missing from registry"));
            assert_eq!(router.name(), name);
            assert!(!router.description().is_empty());
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate router names");
    }

    #[test]
    fn canonical_prefix_order() {
        let names = names();
        assert_eq!(&names[..CANONICAL.len()], &CANONICAL[..]);
    }

    #[test]
    fn unknown_name_is_typed_error() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 1)]);
        let err = EngineCtx::new().route_named("no-such-router", &topo, &set).unwrap_err();
        assert!(matches!(err, CstError::UnknownRouter { .. }));
    }

    #[test]
    fn all_routers_schedule_a_well_nested_set() {
        // A right-oriented well-nested set every router accepts.
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 15)]);
        let mut ctx = EngineCtx::new();
        for router in registry() {
            let out = ctx.route(router.as_ref(), &topo, &set).unwrap();
            assert_eq!(out.router, router.name());
            assert_eq!(out.rounds, out.schedule.num_rounds());
            out.schedule
                .verify(&topo, &set)
                .unwrap_or_else(|e| panic!("{} schedule failed to verify: {e}", router.name()));
            assert!(out.power.total_units > 0, "{}", router.name());
            assert!(out.timings.total_ns > 0, "{}", router.name());
            ctx.recycle(out);
        }
    }

    #[test]
    fn csa_family_reports_phase_split_and_metrics() {
        let topo = CstTopology::with_leaves(32);
        let set = CommSet::from_pairs(32, &[(0, 31), (1, 30), (2, 29)]);
        let mut ctx = EngineCtx::new();
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        assert!(out.timings.phase1_ns > 0 || out.timings.rounds_ns > 0);
        match &out.extra {
            RouteExtra::Csa { metrics, .. } => assert!(metrics.phase1_words > 0),
            other => panic!("expected Csa extra, got {other:?}"),
        }
        let csa = out.into_csa().unwrap();
        assert_eq!(csa.rounds(), 3);
    }

    #[test]
    fn universal_router_takes_any_valid_set() {
        let topo = CstTopology::with_leaves(16);
        // mixed orientations and a crossing pair
        let set = CommSet::from_pairs(16, &[(0, 4), (2, 6), (15, 9)]);
        let mut ctx = EngineCtx::new();
        let out = ctx.route_named("universal", &topo, &set).unwrap();
        out.schedule.verify(&topo, &set).unwrap();
        match out.extra {
            RouteExtra::Universal { right_layers, left_layers } => {
                assert_eq!(right_layers, 2);
                assert_eq!(left_layers, 1);
            }
            ref other => panic!("expected Universal extra, got {other:?}"),
        }
        // strict routers reject the same set
        assert!(ctx.route_named("csa", &topo, &set).is_err());
    }

    #[test]
    fn metered_power_matches_csa_meter() {
        // The engine's pooled metering of a schedule must agree with the
        // meter the CSA carried along while building it.
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 15), (1, 14), (4, 11)]);
        let mut ctx = EngineCtx::new();
        let out = ctx.route_named("csa", &topo, &set).unwrap();
        let replayed = ctx.meter_schedule(&topo, &out.schedule);
        assert_eq!(replayed.total_units, out.power.total_units);
        assert_eq!(replayed.max_port_transitions, out.power.max_port_transitions);
    }

    #[test]
    fn parallel_routers_agree_with_serial() {
        let topo = CstTopology::with_leaves(64);
        let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, 63 - i)).collect();
        let set = CommSet::from_pairs(64, &pairs);
        let mut ctx = EngineCtx::new();
        let serial = ctx.route_named("csa", &topo, &set).unwrap();
        for name in ["csa-parallel", "csa-threaded"] {
            let par = ctx.route_named(name, &topo, &set).unwrap();
            assert_eq!(par.schedule.rounds, serial.schedule.rounds, "{name}");
            assert_eq!(par.power.total_units, serial.power.total_units, "{name}");
            ctx.recycle(par);
        }
        ctx.recycle(serial);
    }

    #[test]
    fn empty_mask_is_byte_identical_to_plain_routing() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 15)]);
        let mask = FaultMask::empty(&topo);
        let mut ctx = EngineCtx::new();
        for router in registry() {
            let plain = ctx.route(router.as_ref(), &topo, &set).unwrap();
            let masked = ctx.route_masked(router.as_ref(), &topo, &set, &mask).unwrap();
            assert_eq!(plain.schedule, masked.schedule, "{}", router.name());
            assert_eq!(plain.power.total_units, masked.power.total_units);
            let report = masked.degradation.as_ref().unwrap();
            assert!(report.is_clean(), "{}", router.name());
            assert_eq!(report.routed, set.len());
            assert!(plain.degradation.is_none());
            ctx.recycle(plain);
            ctx.recycle(masked);
        }
    }

    #[test]
    fn dead_switch_drops_exactly_the_comms_through_it() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 15)]);
        let mut mask = FaultMask::empty(&topo);
        // Node 2 roots the subtree over leaves 0..=7: the three nested
        // comms route through it, (8, 15) does not.
        assert!(mask.kill_switch(NodeId(2)));
        let mut ctx = EngineCtx::new();
        let out = ctx.route_masked(&Csa, &topo, &set, &mask).unwrap();
        let report = out.degradation.as_ref().unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.routed, 1);
        assert_eq!(report.dropped, 3);
        assert_eq!(report.routed + report.dropped, set.len());
        for drop in &report.drops {
            assert_eq!(drop.cause, FaultCause::DeadSwitch(NodeId(2)));
        }
        // The surviving schedule names only the surviving comm, id-mapped
        // back onto the caller's set.
        let scheduled: Vec<usize> = out
            .schedule
            .rounds
            .iter()
            .flat_map(|r| r.comms.iter().map(|c| c.0))
            .collect();
        assert_eq!(scheduled, vec![3]);
    }

    #[test]
    fn fully_blocked_set_yields_empty_schedule() {
        let topo = CstTopology::with_leaves(8);
        let set = CommSet::from_pairs(8, &[(0, 7), (1, 6)]);
        let mut mask = FaultMask::empty(&topo);
        assert!(mask.kill_switch(NodeId(1))); // both comms cross the root
        let mut ctx = EngineCtx::new();
        let out = ctx.route_masked(&Csa, &topo, &set, &mask).unwrap();
        assert_eq!(out.rounds, 0);
        assert!(out.schedule.rounds.is_empty());
        let report = out.degradation.unwrap();
        assert_eq!(report.dropped, 2);
        assert_eq!(report.routed, 0);
    }

    #[test]
    fn degraded_edge_splits_rounds_and_reports_reroutes() {
        let topo = CstTopology::with_leaves(8);
        // Disjoint spans → one round; but (0, 2) drives the edge above
        // node 5 downward while (3, 6) drives it upward.
        let set = CommSet::from_pairs(8, &[(0, 2), (3, 6)]);
        let mut mask = FaultMask::empty(&topo);
        assert!(mask.degrade_edge(NodeId(5)));
        let mut ctx = EngineCtx::new();
        let plain = ctx.route_named("csa", &topo, &set).unwrap();
        assert_eq!(plain.rounds, 1);
        let out = ctx.route_masked(&Csa, &topo, &set, &mask).unwrap();
        assert_eq!(out.rounds, 2);
        assert_eq!(out.rounds, out.schedule.num_rounds());
        out.schedule.verify(&topo, &set).unwrap();
        let report = out.degradation.as_ref().unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.routed, 2);
        assert_eq!(report.rerouted, 1);
        assert_eq!(report.extra_rounds, 1);
        assert_eq!(report.reroutes[0].edge, 5);
        // Power was re-metered for the split schedule.
        let replayed = ctx.meter_schedule(&topo, &out.schedule);
        assert_eq!(replayed.total_units, out.power.total_units);
    }

    #[test]
    fn cached_route_hits_and_matches() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (8, 15)]);
        let mut ctx = EngineCtx::new();
        let miss = ctx.route_cached(&Csa, &topo, &set).unwrap();
        assert!(matches!(miss.extra, RouteExtra::Csa { .. }), "first call is a miss");
        let hit = ctx.route_cached(&Csa, &topo, &set).unwrap();
        assert_eq!(hit.schedule, miss.schedule);
        assert_eq!(hit.power, miss.power);
        assert_eq!(hit.rounds, miss.rounds);
        assert_eq!(hit.router, "csa");
        match hit.extra {
            RouteExtra::Cached { stats } => {
                assert_eq!((stats.hits, stats.misses), (1, 1));
                assert_eq!(stats.entries, 1);
            }
            ref other => panic!("expected Cached extra, got {other:?}"),
        }
        let stats = ctx.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        // A different router misses: keys include the router name.
        let other = ctx.route_cached(&General, &topo, &set).unwrap();
        assert!(!matches!(other.extra, RouteExtra::Cached { .. }));
    }

    #[test]
    fn batch_dedupes_and_preserves_order() {
        let topo = CstTopology::with_leaves(16);
        let a = CommSet::from_pairs(16, &[(0, 7), (1, 6)]);
        let b = CommSet::from_pairs(16, &[(8, 15)]);
        let sets = vec![a.clone(), b.clone(), a.clone(), a.clone(), b.clone()];
        let mut ctx = EngineCtx::new();
        let outs = ctx.route_batch(&Csa, &topo, &sets).unwrap();
        assert_eq!(outs.len(), 5);
        // Representatives routed, duplicates fanned out as cached copies.
        assert!(matches!(outs[0].extra, RouteExtra::Csa { .. }));
        assert!(matches!(outs[1].extra, RouteExtra::Csa { .. }));
        for i in [2, 3] {
            assert!(matches!(outs[i].extra, RouteExtra::Cached { .. }), "outs[{i}]");
            assert_eq!(outs[i].schedule, outs[0].schedule, "outs[{i}]");
            assert_eq!(outs[i].power, outs[0].power);
        }
        assert!(matches!(outs[4].extra, RouteExtra::Cached { .. }));
        assert_eq!(outs[4].schedule, outs[1].schedule);
        // The scheduler ran exactly twice (misses), never for duplicates.
        let stats = ctx.cache_stats().unwrap();
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn mask_flip_never_serves_stale_schedule() {
        // Satellite regression: identical set, mask toggling between
        // requests — the cache must key on the mask.
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (8, 15)]);
        let mut mask = FaultMask::empty(&topo);
        assert!(mask.kill_switch(NodeId(4)));
        let mut ctx = EngineCtx::new();
        let plain = ctx.route_cached(&Csa, &topo, &set).unwrap();
        let masked = ctx.route_masked_cached(&Csa, &topo, &set, &mask).unwrap();
        assert_ne!(masked.schedule, plain.schedule, "mask dropped comms");
        assert_eq!(masked.degradation.as_ref().unwrap().dropped, 2);
        // Hits on both keys, each byte-faithful to its own mode.
        let plain2 = ctx.route_cached(&Csa, &topo, &set).unwrap();
        let masked2 = ctx.route_masked_cached(&Csa, &topo, &set, &mask).unwrap();
        assert!(matches!(plain2.extra, RouteExtra::Cached { .. }));
        assert!(matches!(masked2.extra, RouteExtra::Cached { .. }));
        assert_eq!(plain2.schedule, plain.schedule);
        assert_eq!(masked2.schedule, masked.schedule);
        assert_eq!(masked2.degradation, masked.degradation);
        // Empty mask shares the plain entry and reports fault-free.
        let empty = FaultMask::empty(&topo);
        let clean = ctx.route_masked_cached(&Csa, &topo, &set, &empty).unwrap();
        assert!(matches!(clean.extra, RouteExtra::Cached { .. }));
        assert_eq!(clean.schedule, plain.schedule);
        assert!(clean.degradation.unwrap().is_clean());
    }

    #[test]
    fn masked_routing_works_through_the_registry_by_name() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (8, 15)]);
        let mut mask = FaultMask::empty(&topo);
        assert!(mask.kill_switch(NodeId(4))); // under node 2, over leaves 0..=3
        let mut ctx = EngineCtx::new();
        for name in CANONICAL {
            let out = ctx.route_named_masked(name, &topo, &set, &mask).unwrap();
            let report = out.degradation.as_ref().unwrap();
            assert_eq!(report.routed + report.dropped, set.len(), "{name}");
            assert_eq!(report.dropped, 2, "{name}");
            ctx.recycle(out);
        }
        let once = route_once_masked("csa", &topo, &set, &mask).unwrap();
        assert_eq!(once.degradation.unwrap().dropped, 2);
    }

    #[test]
    fn compiled_route_matches_interpreter_with_zero_recompilation() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 15)]);
        let mut ctx = EngineCtx::new();
        let (out, sim) = ctx.route_compiled(&Csa, &topo, &set).unwrap();
        let reference = cst_sim::simulate_schedule(&topo, &set, &out.schedule, None).unwrap();
        assert_eq!(sim.schedule, reference.schedule);
        assert_eq!(sim.cycles, reference.cycles);
        assert_eq!(sim.timings, reference.timings);
        assert_eq!(sim.deliveries, reference.deliveries);
        assert_eq!(sim.meter, reference.meter);
        assert_eq!(ctx.cache_compile_count(), 1);
        ctx.recycle(out);
        ctx.recycle_sim(sim);
        // Repeat requests hit the cache and replay the attached program:
        // the compile count must not move.
        for _ in 0..3 {
            let (out, sim) = ctx.route_compiled(&Csa, &topo, &set).unwrap();
            assert!(matches!(out.extra, RouteExtra::Cached { .. }));
            assert_eq!(sim.deliveries, reference.deliveries);
            assert_eq!(sim.meter, reference.meter);
            ctx.recycle(out);
            ctx.recycle_sim(sim);
        }
        assert_eq!(ctx.cache_compile_count(), 1, "hits must not recompile");
    }

    #[test]
    fn compiled_route_works_masked_and_with_cache_disabled() {
        let topo = CstTopology::with_leaves(16);
        let set = CommSet::from_pairs(16, &[(0, 7), (1, 6), (2, 5), (8, 15)]);
        let mut mask = FaultMask::empty(&topo);
        // Node 4 roots leaves 0..=3: all three nested comms route through it.
        assert!(mask.kill_switch(NodeId(4)));
        let mut ctx = EngineCtx::new();
        let (out, sim) = ctx.route_masked_compiled(&Csa, &topo, &set, &mask).unwrap();
        let report = out.degradation.as_ref().unwrap();
        assert_eq!(report.dropped, 3);
        assert_eq!(sim.deliveries.len(), report.routed);
        let reference = cst_sim::simulate_schedule(&topo, &set, &out.schedule, None).unwrap();
        assert_eq!(sim.deliveries, reference.deliveries);
        assert_eq!(sim.meter, reference.meter);
        ctx.recycle(out);
        ctx.recycle_sim(sim);
        // Empty mask shares the plain entry, like route_masked_cached.
        let clean = FaultMask::empty(&topo);
        let (out, sim) = ctx.route_masked_compiled(&Csa, &topo, &set, &clean).unwrap();
        assert!(out.degradation.unwrap().is_clean());
        assert_eq!(sim.deliveries.len(), set.len());
        ctx.recycle_sim(sim);
        // Disabled cache falls back to the context-pooled program.
        let mut ctx = EngineCtx::new();
        ctx.enable_cache(0);
        let (out, sim) = ctx.route_compiled(&Csa, &topo, &set).unwrap();
        let reference = cst_sim::simulate_schedule(&topo, &set, &out.schedule, None).unwrap();
        assert_eq!(sim.deliveries, reference.deliveries);
        assert_eq!(sim.meter, reference.meter);
        assert_eq!(ctx.cache_compile_count(), 0, "disabled cache attaches nothing");
        ctx.recycle(out);
        ctx.recycle_sim(sim);
    }
}
