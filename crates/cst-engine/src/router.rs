//! The [`Router`] trait and one implementation per scheduler in the
//! workspace. Every scheduler — the paper's CSA in its serial, parallel
//! and threaded forms, the orientation/layering front ends, and the three
//! baselines — is driven through the same normalized interface.

use crate::ctx::EngineCtx;
use crate::outcome::{self, PhaseTimings, RouteExtra, RouteOutcome};
use cst_baseline::{greedy, roy, sequential, LevelOrder, ScanOrder};
use cst_comm::CommSet;
use cst_core::{CstError, CstTopology};
use cst_padr::{layers, merge, orientation, universal, CsaOutcome, Options};
use std::time::Instant;

/// A scheduler with a stable registry name, routable through a reusable
/// [`EngineCtx`].
pub trait Router: Send + Sync {
    /// Stable registry name (`"csa"`, `"greedy"`, ...). The single source
    /// of truth for CLI flags, bench IDs, and analysis tables.
    fn name(&self) -> &'static str;

    /// One-line human description for `list-routers` output.
    fn description(&self) -> &'static str;

    /// Schedule `set` on `topo`, reusing `ctx`'s scratch buffers.
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError>;
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

/// Package a CSA-family outcome without touching its allocations.
fn csa_route(router: &'static str, out: CsaOutcome, timings: PhaseTimings) -> RouteOutcome {
    let rounds = out.schedule.num_rounds();
    RouteOutcome {
        router,
        schedule: out.schedule,
        rounds,
        power: out.power,
        timings,
        extra: RouteExtra::Csa { metrics: out.metrics, meter: out.meter },
        degradation: None,
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
}

/// The paper's serial CSA (strict preconditions: right-oriented,
/// well-nested). The only router with a guaranteed zero-allocation warm
/// path, asserted by the workspace allocation gate.
pub struct Csa;

impl Router for Csa {
    fn name(&self) -> &'static str {
        "csa"
    }
    fn description(&self) -> &'static str {
        "serial power-aware CSA: w rounds, O(1) config changes per switch"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let out = ctx.csa.schedule(topo, set, &mut ctx.pool)?;
        let timings = PhaseTimings::from_csa(ctx.csa.timings(), elapsed_ns(start));
        Ok(csa_route(self.name(), out, timings))
    }
}

/// Serial CSA with quiescent-subtree pruning disabled (every round sweeps
/// all switches). Identical output; used by the work-reduction ablation.
pub struct CsaNoPrune;

impl Router for CsaNoPrune {
    fn name(&self) -> &'static str {
        "csa-no-prune"
    }
    fn description(&self) -> &'static str {
        "serial CSA without quiescent-subtree pruning (ablation; identical output)"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let options = Options { prune_quiescent: false };
        let out = ctx.csa.schedule_with(topo, set, options, &mut ctx.pool)?;
        let timings = PhaseTimings::from_csa(ctx.csa.timings(), elapsed_ns(start));
        Ok(csa_route(self.name(), out, timings))
    }
}

/// Adaptive parallel CSA: subtree decomposition with worker threads when
/// the host has more than one core, identical inline execution otherwise.
/// `threads == 0` means "one worker per available core".
#[derive(Default)]
pub struct CsaParallel {
    pub threads: usize,
}

impl Router for CsaParallel {
    fn name(&self) -> &'static str {
        "csa-parallel"
    }
    fn description(&self) -> &'static str {
        "adaptive parallel CSA (subtree workers; serial-identical output)"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let threads = if self.threads == 0 { available_cores() } else { self.threads };
        let start = Instant::now();
        let out = ctx.parallel.schedule(topo, set, threads, &mut ctx.pool)?;
        let timings = PhaseTimings::total_only(elapsed_ns(start));
        Ok(csa_route(self.name(), out, timings))
    }
}

/// Parallel CSA that always spawns worker threads, even on a single-core
/// host — exercises the cross-thread merge path deterministically.
/// `threads == 0` means `max(cores, 2)` workers.
#[derive(Default)]
pub struct CsaThreaded {
    pub threads: usize,
}

impl Router for CsaThreaded {
    fn name(&self) -> &'static str {
        "csa-threaded"
    }
    fn description(&self) -> &'static str {
        "parallel CSA with forced worker threads (stress path; serial-identical output)"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let threads = if self.threads == 0 { available_cores().max(2) } else { self.threads };
        let start = Instant::now();
        let out = ctx.parallel.schedule_threaded(topo, set, threads, &mut ctx.pool)?;
        let timings = PhaseTimings::total_only(elapsed_ns(start));
        Ok(csa_route(self.name(), out, timings))
    }
}

/// Mixed-orientation well-nested sets: decompose into oriented halves,
/// CSA each (left half through the mirror transform), concatenate.
pub struct General;

impl Router for General {
    fn name(&self) -> &'static str {
        "general"
    }
    fn description(&self) -> &'static str {
        "orientation decomposition: CSA per oriented half, rounds concatenated"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let out = orientation::schedule_general_in(&mut ctx.csa, &mut ctx.pool, topo, set)?;
        let orientation::GeneralOutcome { schedule, right_rounds, left_rounds, right, left } = out;
        for half in [right, left].into_iter().flatten() {
            ctx.pool.put_schedule(half.schedule);
            ctx.pool.put_meter(half.meter);
        }
        let power = ctx.meter_schedule(topo, &schedule);
        let rounds = schedule.num_rounds();
        Ok(RouteOutcome {
            router: self.name(),
            schedule,
            rounds,
            power,
            timings: PhaseTimings::total_only(elapsed_ns(start)),
            extra: RouteExtra::General { right_rounds, left_rounds },
            degradation: None,
        })
    }
}

/// Like [`General`], but greedily interleaving compatible rounds of the
/// two halves instead of concatenating them.
pub struct GeneralMerged;

impl Router for GeneralMerged {
    fn name(&self) -> &'static str {
        "general-merged"
    }
    fn description(&self) -> &'static str {
        "orientation decomposition with round merging across the two halves"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let schedule = merge::schedule_general_merged_in(&mut ctx.csa, &mut ctx.pool, topo, set)?;
        let power = ctx.meter_schedule(topo, &schedule);
        let rounds = schedule.num_rounds();
        Ok(RouteOutcome {
            router: self.name(),
            schedule,
            rounds,
            power,
            timings: PhaseTimings::total_only(elapsed_ns(start)),
            extra: RouteExtra::None,
            degradation: None,
        })
    }
}

/// Arbitrary right-oriented sets: crossing-free layering, CSA per layer.
pub struct Layered;

impl Router for Layered {
    fn name(&self) -> &'static str {
        "layered"
    }
    fn description(&self) -> &'static str {
        "crossing-free layering of right-oriented sets, CSA per layer"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let out = layers::schedule_layered_in(&mut ctx.csa, &mut ctx.pool, topo, set)?;
        let layers::LayeredOutcome { schedule, per_layer, layering } = out;
        let num_layers = layering.layers.len();
        for layer in per_layer {
            ctx.pool.put_schedule(layer.schedule);
            ctx.pool.put_meter(layer.meter);
        }
        let power = ctx.meter_schedule(topo, &schedule);
        let rounds = schedule.num_rounds();
        Ok(RouteOutcome {
            router: self.name(),
            schedule,
            rounds,
            power,
            timings: PhaseTimings::total_only(elapsed_ns(start)),
            extra: RouteExtra::Layered { num_layers },
            degradation: None,
        })
    }
}

/// Any valid set: orientation decomposition plus layering per half.
pub struct Universal;

impl Router for Universal {
    fn name(&self) -> &'static str {
        "universal"
    }
    fn description(&self) -> &'static str {
        "any valid set: orientation decomposition + crossing-free layering per half"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let out = universal::schedule_any_in(&mut ctx.csa, &mut ctx.pool, topo, set)?;
        let universal::UniversalOutcome { schedule, right_layers, left_layers } = out;
        let power = ctx.meter_schedule(topo, &schedule);
        let rounds = schedule.num_rounds();
        Ok(RouteOutcome {
            router: self.name(),
            schedule,
            rounds,
            power,
            timings: PhaseTimings::total_only(elapsed_ns(start)),
            extra: RouteExtra::Universal { right_layers, left_layers },
            degradation: None,
        })
    }
}

/// Greedy maximal-compatible-set baseline. The registry exposes one entry
/// per scan order (`"greedy"`, `"greedy-innermost"`, `"greedy-input"`).
pub struct Greedy {
    pub order: ScanOrder,
}

impl Router for Greedy {
    fn name(&self) -> &'static str {
        match self.order {
            ScanOrder::OutermostFirst => "greedy",
            ScanOrder::InnermostFirst => "greedy-innermost",
            ScanOrder::InputOrder => "greedy-input",
        }
    }
    fn description(&self) -> &'static str {
        match self.order {
            ScanOrder::OutermostFirst => "greedy maximal compatible sets, outermost-first scan",
            ScanOrder::InnermostFirst => "greedy maximal compatible sets, innermost-first scan",
            ScanOrder::InputOrder => "greedy maximal compatible sets, input-order scan",
        }
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let out = greedy::run(topo, set, self.order, &mut ctx.merged)?;
        let power = ctx.meter_schedule(topo, &out.schedule);
        let timings = PhaseTimings::total_only(elapsed_ns(start));
        Ok(outcome::from_greedy(self.name(), out, power, timings))
    }
}

/// Roy-style ID-level comparator. The registry exposes one entry per
/// level order (`"roy"` = innermost-first, `"roy-outermost"`).
pub struct Roy {
    pub order: LevelOrder,
}

impl Router for Roy {
    fn name(&self) -> &'static str {
        match self.order {
            LevelOrder::InnermostFirst => "roy",
            LevelOrder::OutermostFirst => "roy-outermost",
        }
    }
    fn description(&self) -> &'static str {
        match self.order {
            LevelOrder::InnermostFirst => {
                "Roy-style ID levels, one level per round (innermost-first)"
            }
            LevelOrder::OutermostFirst => {
                "Roy-style ID levels, one level per round (outermost-first)"
            }
        }
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let out = roy::run(topo, set, self.order, &mut ctx.merged)?;
        let power = ctx.meter_schedule(topo, &out.schedule);
        let timings = PhaseTimings::total_only(elapsed_ns(start));
        Ok(outcome::from_roy(self.name(), out, power, timings))
    }
}

/// One communication per round — the floor baseline.
pub struct Sequential;

impl Router for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }
    fn description(&self) -> &'static str {
        "one communication per round (floor baseline)"
    }
    fn route(
        &self,
        ctx: &mut EngineCtx,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let start = Instant::now();
        let schedule = sequential::run(topo, set, &mut ctx.merged)?;
        let power = ctx.meter_schedule(topo, &schedule);
        let rounds = schedule.num_rounds();
        Ok(RouteOutcome {
            router: self.name(),
            schedule,
            rounds,
            power,
            timings: PhaseTimings::total_only(elapsed_ns(start)),
            extra: RouteExtra::None,
            degradation: None,
        })
    }
}
