//! The scheduler registry: the single source of truth mapping stable
//! router names to boxed [`Router`] implementations. CLI flags, bench IDs,
//! analysis tables, and scripts all resolve names through here.

use crate::ctx::EngineCtx;
use crate::outcome::RouteOutcome;
use crate::router::{
    Csa, CsaNoPrune, CsaParallel, CsaThreaded, General, GeneralMerged, Greedy, Layered, Roy,
    Router, Sequential, Universal,
};
use cst_baseline::{LevelOrder, ScanOrder};
use cst_comm::CommSet;
use cst_core::{CstError, CstTopology};

/// The ten canonical router names, in presentation order. Every consumer
/// table and script iterates these; the registry additionally carries
/// parameterized ablation variants (`csa-no-prune`, `greedy-innermost`,
/// `greedy-input`, `roy-outermost`).
pub const CANONICAL: [&str; 10] = [
    "csa",
    "csa-parallel",
    "csa-threaded",
    "general",
    "general-merged",
    "layered",
    "universal",
    "greedy",
    "roy",
    "sequential",
];

/// All routers, canonical first, ablation variants after.
pub fn registry() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(Csa),
        Box::new(CsaParallel::default()),
        Box::new(CsaThreaded::default()),
        Box::new(General),
        Box::new(GeneralMerged),
        Box::new(Layered),
        Box::new(Universal),
        Box::new(Greedy { order: ScanOrder::OutermostFirst }),
        Box::new(Roy { order: LevelOrder::InnermostFirst }),
        Box::new(Sequential),
        // Ablation / parameterized variants (non-canonical).
        Box::new(CsaNoPrune),
        Box::new(Greedy { order: ScanOrder::InnermostFirst }),
        Box::new(Greedy { order: ScanOrder::InputOrder }),
        Box::new(Roy { order: LevelOrder::OutermostFirst }),
    ]
}

/// Look up a router by stable name.
pub fn find(name: &str) -> Option<Box<dyn Router>> {
    registry().into_iter().find(|r| r.name() == name)
}

/// All registry names, canonical first.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|r| r.name()).collect()
}

/// One-shot convenience: route with a throwaway [`EngineCtx`]. Prefer a
/// long-lived context for repeated scheduling.
pub fn route_once(
    name: &str,
    topo: &CstTopology,
    set: &CommSet,
) -> Result<RouteOutcome, CstError> {
    EngineCtx::new().route_named(name, topo, set)
}
