//! Masked routing: run any registry router against a hardware
//! [`FaultMask`] and report how the schedule degraded.
//!
//! The flow composes the two `cst-padr` degrade passes around the normal
//! router dispatch:
//!
//! 1. partition the set — unroutable communications (dead switch/link on
//!    their unique path) are dropped with a typed [`FaultCause`];
//! 2. route the survivors with the chosen router (ids are remapped back
//!    onto the caller's set afterwards);
//! 3. if the mask degrades any edge to half-duplex, split offending
//!    rounds so each round drives a degraded edge in one direction only.
//!
//! An empty mask short-circuits to the plain route call, so the fault-free
//! warm path stays allocation-free (the workspace allocation gate pins it
//! at 0 allocs / 0 bytes) and the schedule is byte-identical to unmasked
//! routing for every router.

use crate::ctx::EngineCtx;
use crate::outcome::{PhaseTimings, RouteExtra, RouteOutcome};
use crate::registry;
use crate::router::Router;
use cst_comm::CommSet;
use cst_core::{CstError, CstTopology, FaultCause, FaultMask};
use cst_padr::degrade;
use serde::{de_field, Deserialize, Error as SerdeError, Serialize, Value};
use std::time::Instant;

/// One unroutable communication and the fault responsible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DroppedComm {
    /// Id in the caller's communication set.
    pub comm: usize,
    /// Source PE.
    pub source: usize,
    /// Destination PE.
    pub dest: usize,
    /// The first dead switch or link on the communication's unique path.
    pub cause: FaultCause,
}

/// One temporal reroute: the communication still runs, but in a round
/// added by the half-duplex split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReroutedComm {
    /// Id in the caller's communication set.
    pub comm: usize,
    /// Child endpoint of the degraded edge that forced the move.
    pub edge: usize,
}

/// How a masked routing request degraded. Attached to
/// [`RouteOutcome::degradation`] by [`EngineCtx::route_masked`]; plain
/// routing leaves the field `None`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Size of the requested set (`routed + dropped`).
    pub total: usize,
    /// Communications scheduled (includes the rerouted ones).
    pub routed: usize,
    /// Of the routed, how many moved to a split-off round.
    pub rerouted: usize,
    /// Communications unroutable under the mask.
    pub dropped: usize,
    /// Rounds added by the half-duplex split.
    pub extra_rounds: usize,
    /// Per-drop attribution.
    pub drops: Vec<DroppedComm>,
    /// Per-reroute attribution.
    pub reroutes: Vec<ReroutedComm>,
}

impl DegradationReport {
    /// The report of a request nothing interfered with.
    pub fn fault_free(total: usize) -> DegradationReport {
        DegradationReport { total, routed: total, ..DegradationReport::default() }
    }

    /// True when every communication was routed in its original round.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.rerouted == 0
    }
}

impl Serialize for DroppedComm {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("comm".to_string(), Value::UInt(self.comm as u64)),
            ("source".to_string(), Value::UInt(self.source as u64)),
            ("dest".to_string(), Value::UInt(self.dest as u64)),
            ("cause".to_string(), self.cause.to_value()),
        ])
    }
}

impl Deserialize for DroppedComm {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Ok(DroppedComm {
            comm: de_field(v, "comm")?,
            source: de_field(v, "source")?,
            dest: de_field(v, "dest")?,
            cause: de_field(v, "cause")?,
        })
    }
}

impl Serialize for ReroutedComm {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("comm".to_string(), Value::UInt(self.comm as u64)),
            ("edge".to_string(), Value::UInt(self.edge as u64)),
        ])
    }
}

impl Deserialize for ReroutedComm {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Ok(ReroutedComm { comm: de_field(v, "comm")?, edge: de_field(v, "edge")? })
    }
}

impl Serialize for DegradationReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("total".to_string(), Value::UInt(self.total as u64)),
            ("routed".to_string(), Value::UInt(self.routed as u64)),
            ("rerouted".to_string(), Value::UInt(self.rerouted as u64)),
            ("dropped".to_string(), Value::UInt(self.dropped as u64)),
            ("extra_rounds".to_string(), Value::UInt(self.extra_rounds as u64)),
            ("drops".to_string(), self.drops.to_value()),
            ("reroutes".to_string(), self.reroutes.to_value()),
        ])
    }
}

impl Deserialize for DegradationReport {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Ok(DegradationReport {
            total: de_field(v, "total")?,
            routed: de_field(v, "routed")?,
            rerouted: de_field(v, "rerouted")?,
            dropped: de_field(v, "dropped")?,
            extra_rounds: de_field(v, "extra_rounds")?,
            drops: de_field(v, "drops")?,
            reroutes: de_field(v, "reroutes")?,
        })
    }
}

impl EngineCtx {
    /// Route `set` on `topo` under a hardware fault mask. Unroutable
    /// communications are dropped (never mis-routed), half-duplex edges
    /// trigger temporal rerouting, and the outcome carries a
    /// [`DegradationReport`] with `routed + dropped == set.len()`.
    ///
    /// With an empty mask this is exactly [`EngineCtx::route`] plus a
    /// clean report: same schedule bytes, no extra allocation on the warm
    /// serial-CSA path.
    pub fn route_masked(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
        mask: &FaultMask,
    ) -> Result<RouteOutcome, CstError> {
        if mask.is_empty() {
            let mut out = self.route(router, topo, set)?;
            out.degradation = Some(DegradationReport::fault_free(set.len()));
            return Ok(out);
        }

        let start = Instant::now();
        let part = degrade::partition_by_mask(topo, set, mask);
        let mut report = DegradationReport {
            total: set.len(),
            routed: part.survivors.len(),
            dropped: part.drops.len(),
            ..DegradationReport::default()
        };
        for &(id, cause) in &part.drops {
            let c = &set.comms()[id.0];
            report.drops.push(DroppedComm {
                comm: id.0,
                source: c.source.0,
                dest: c.dest.0,
                cause,
            });
        }

        let mut out = if part.survivors.is_empty() {
            // Nothing left to route: an empty schedule, metered as such.
            let schedule = self.pool.take_schedule();
            let power = self.meter_schedule(topo, &schedule);
            RouteOutcome {
                router: router.name(),
                schedule,
                rounds: 0,
                power,
                timings: PhaseTimings::total_only(elapsed_ns(start)),
                extra: RouteExtra::None,
                degradation: None,
            }
        } else {
            let mut out = router.route(self, topo, &part.survivors)?;
            // Remap round membership back onto the caller's ids.
            for round in &mut out.schedule.rounds {
                for id in &mut round.comms {
                    *id = part.original[id.0];
                }
            }
            out
        };

        if mask.has_degraded() && !out.schedule.rounds.is_empty() {
            let schedule = std::mem::take(&mut out.schedule);
            let (schedule, stats) = degrade::split_half_duplex(
                topo,
                set,
                mask,
                schedule,
                &mut self.merged,
                &mut self.pool,
            )?;
            out.schedule = schedule;
            report.rerouted = stats.reroutes.len();
            report.extra_rounds = stats.extra_rounds;
            for r in stats.reroutes {
                report.reroutes.push(ReroutedComm { comm: r.comm.0, edge: r.edge.0 });
            }
            if stats.extra_rounds > 0 {
                // Rounds changed: re-meter and refresh denormalized fields.
                out.power = self.meter_schedule(topo, &out.schedule);
            }
        }
        out.rounds = out.schedule.num_rounds();
        out.timings.total_ns = elapsed_ns(start);
        out.degradation = Some(report);
        Ok(out)
    }

    /// [`EngineCtx::route_masked`] through the registry by stable name.
    pub fn route_named_masked(
        &mut self,
        name: &str,
        topo: &CstTopology,
        set: &CommSet,
        mask: &FaultMask,
    ) -> Result<RouteOutcome, CstError> {
        let router = registry::find(name)
            .ok_or_else(|| CstError::UnknownRouter { name: name.to_string() })?;
        self.route_masked(router.as_ref(), topo, set, mask)
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

/// Convenience one-shot masked route (fresh context each call). Prefer a
/// long-lived [`EngineCtx`] with [`EngineCtx::route_masked`] in loops.
pub fn route_once_masked(
    name: &str,
    topo: &CstTopology,
    set: &CommSet,
    mask: &FaultMask,
) -> Result<RouteOutcome, CstError> {
    EngineCtx::new().route_named_masked(name, topo, set, mask)
}
