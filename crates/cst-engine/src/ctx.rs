//! The reusable engine context: every scratch buffer any router needs,
//! kept warm across requests so repeated scheduling through one
//! [`EngineCtx`] reaches a zero-allocation steady state (asserted by the
//! workspace's allocation-gate test for the serial CSA).

use crate::cache::{CacheStats, ScheduleCache};
use crate::degrade::DegradationReport;
use crate::outcome::{PhaseTimings, RouteExtra, RouteOutcome};
use crate::registry;
use crate::router::Router;
use cst_comm::{CommSet, Schedule, SchedulePool};
use cst_core::{CstError, CstTopology, FaultMask, Fp64, MergedRound, PowerReport};
use cst_padr::{CsaScratch, ParallelScratch};
use std::time::Instant;

/// Capacity [`EngineCtx::route_cached`] uses when the caller has not
/// sized the cache explicitly with [`EngineCtx::enable_cache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Reusable scratch for repeated routing requests.
///
/// One context serves requests of any size, any router, in any order: each
/// scratch re-targets itself to the request's topology and grows its
/// buffers monotonically. After a warm-up call per (router, shape), the
/// serial CSA path allocates nothing; the other routers reuse the pooled
/// schedules/meters and the shared [`MergedRound`] but still allocate for
/// their own intermediate structures (decompositions, mirrored sets,
/// layerings).
///
/// # Examples
///
/// ```
/// use cst_core::CstTopology;
/// use cst_comm::CommSet;
/// use cst_engine::EngineCtx;
///
/// let topo = CstTopology::with_leaves(8);
/// let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]); // width 3
/// let mut ctx = EngineCtx::new();
/// let out = ctx.route_named("csa", &topo, &set).unwrap();
/// assert_eq!(out.rounds, 3); // Theorem 5
/// ctx.recycle(out); // return the schedule + meter to the pool
/// ```
#[derive(Default)]
pub struct EngineCtx {
    pub(crate) csa: CsaScratch,
    pub(crate) parallel: ParallelScratch,
    pub(crate) merged: MergedRound,
    pub(crate) pool: SchedulePool,
    /// Schedule cache; `None` until the first `route_cached`-family call
    /// (or an explicit [`EngineCtx::enable_cache`]). Plain `route` never
    /// consults it.
    pub(crate) cache: Option<ScheduleCache>,
    /// Replay buffers for the compiled-replay path; outcomes come back
    /// through [`EngineCtx::recycle_sim`].
    pub(crate) replay: cst_sim::ReplayScratch,
    /// Pooled compiled program for compiled requests the cache cannot hold
    /// (disabled cache, collision-displaced entry).
    pub(crate) local_program: Option<cst_sim::CompiledProgram>,
    /// Last general request's decomposition, memoized so a repeated
    /// [`EngineCtx::route_general_cached`] request skips the layering pass
    /// entirely (fingerprint prefilter + set equality, like the cache).
    pub(crate) general_memo: Option<crate::general::GeneralMemo>,
    /// Recycled per-layer accounting buffers for general outcomes
    /// (returned by [`EngineCtx::recycle_general`]).
    pub(crate) layer_rounds_scratch: Vec<usize>,
    pub(crate) layer_power_scratch: Vec<u64>,
}

impl EngineCtx {
    /// An empty context; buffers are sized lazily by the first requests.
    pub fn new() -> Self {
        EngineCtx::default()
    }

    /// Route `set` on `topo` with an explicit router.
    pub fn route(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        router.route(self, topo, set)
    }

    /// Route through the registry by stable name (see
    /// [`crate::registry::names`]).
    pub fn route_named(
        &mut self,
        name: &str,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let router = registry::find(name)
            .ok_or_else(|| CstError::UnknownRouter { name: name.to_string() })?;
        router.route(self, topo, set)
    }

    /// Return an outcome's recyclable parts (schedule, meter) to the pool
    /// so the next request reuses their allocations.
    pub fn recycle(&mut self, outcome: RouteOutcome) {
        self.pool.put_schedule(outcome.schedule);
        if let RouteExtra::Csa { meter, .. } = outcome.extra {
            self.pool.put_meter(meter);
        }
    }

    /// Meter an arbitrary schedule under the PADR power model using pooled
    /// meter storage. Used by routers whose construction path does not
    /// already meter (baselines, composed schedulers).
    pub(crate) fn meter_schedule(
        &mut self,
        topo: &CstTopology,
        schedule: &Schedule,
    ) -> PowerReport {
        let mut meter = self.pool.take_meter(topo);
        for round in &schedule.rounds {
            meter.begin_round();
            for (node, conn) in round.requirements() {
                meter.require(node, conn);
            }
        }
        let report = meter.report(topo);
        self.pool.put_meter(meter);
        report
    }
}

/// The streaming front-end: fingerprint-keyed caching and batch routing.
///
/// Keying rules (see `docs/ENGINE.md` §"Caching & streaming"):
/// * the key fingerprints the **router name**, the **set**, and — for
///   masked requests — the **fault mask**, so no router ever serves
///   another router's schedule and `route_masked_cached` never serves a
///   fault-free schedule under a live mask;
/// * an **empty** mask keys identically to a plain request (masked
///   routing with no faults is defined as byte-identical to plain
///   routing), with the clean `DegradationReport` re-attached on a hit;
/// * a hit also requires full key *equality* — fingerprints are 64-bit
///   and may collide; a collision is a counted miss, never a wrong
///   schedule.
impl EngineCtx {
    /// Size (or resize) the schedule cache. Resizing discards resident
    /// entries but keeps nothing else; pass 0 to disable caching while
    /// keeping the `route_cached` call sites intact.
    pub fn enable_cache(&mut self, capacity: usize) {
        self.cache = Some(ScheduleCache::new(capacity));
    }

    /// Counters of the schedule cache, if one has been created.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// How many compiled programs the cache has built so far. Pinned by
    /// tests: repeat compiled requests must not recompile.
    #[doc(hidden)]
    pub fn cache_compile_count(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.compile_count())
    }

    /// Test knob: truncate cache fingerprints to `bits` low bits to make
    /// collisions likely (exercises the equality fallback). Creates the
    /// cache at the default capacity if absent.
    #[doc(hidden)]
    pub fn set_cache_fp_bits(&mut self, bits: u32) {
        self.cache
            .get_or_insert_with(|| ScheduleCache::new(DEFAULT_CACHE_CAPACITY))
            .set_fp_bits(bits);
    }

    /// [`EngineCtx::route`] through the schedule cache: a hit returns the
    /// cached outcome (schedule copied out of pooled shells, zero
    /// allocations when warm) without touching the scheduler; a miss
    /// routes normally and inserts. Creates the cache at
    /// [`DEFAULT_CACHE_CAPACITY`] on first use.
    pub fn route_cached(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        self.route_cached_inner(router, topo, set, None)
    }

    /// [`EngineCtx::route_cached`] through the registry by stable name.
    pub fn route_named_cached(
        &mut self,
        name: &str,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let router = registry::find(name)
            .ok_or_else(|| CstError::UnknownRouter { name: name.to_string() })?;
        self.route_cached_inner(router.as_ref(), topo, set, None)
    }

    /// [`EngineCtx::route_masked`] through the schedule cache. The mask
    /// participates in the cache key, so identical sets under different
    /// masks are distinct entries; an empty mask shares the plain
    /// request's entry (and re-attaches the clean report on a hit).
    pub fn route_masked_cached(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
        mask: &FaultMask,
    ) -> Result<RouteOutcome, CstError> {
        if mask.is_empty() {
            let mut out = self.route_cached_inner(router, topo, set, None)?;
            out.degradation = Some(DegradationReport::fault_free(set.len()));
            return Ok(out);
        }
        self.route_cached_inner(router, topo, set, Some(mask))
    }

    /// Route a request slice, deduplicating by fingerprint: each unique
    /// set is routed (through the cache) exactly once, duplicates are
    /// fanned back out as copies, and the outcomes come back in input
    /// order.
    pub fn route_batch(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        sets: &[CommSet],
    ) -> Result<Vec<RouteOutcome>, CstError> {
        // representative[i] = first index whose set equals sets[i]
        // (fingerprint prefilter, equality to confirm — collisions must
        // not merge distinct requests).
        let fps: Vec<u64> = sets.iter().map(|s| s.fingerprint()).collect();
        let representative: Vec<usize> = (0..sets.len())
            .map(|i| {
                (0..i)
                    .find(|&j| fps[j] == fps[i] && sets[j] == sets[i])
                    .unwrap_or(i)
            })
            .collect();

        // One pass in input order: a representative routes through the
        // cache; a duplicate copies from its representative's outcome,
        // which is already in `outcomes` because rep < i.
        let mut outcomes: Vec<RouteOutcome> = Vec::with_capacity(sets.len());
        for i in 0..sets.len() {
            let rep = representative[i];
            if rep == i {
                outcomes.push(self.route_cached(router, topo, &sets[i])?);
            } else {
                let t0 = Instant::now();
                let stats = self.cache_stats().unwrap_or_default();
                let src = &outcomes[rep];
                let schedule = self.pool.copy_schedule(&src.schedule);
                outcomes.push(RouteOutcome {
                    router: src.router,
                    rounds: src.rounds,
                    power: src.power.clone(),
                    degradation: src.degradation.clone(),
                    schedule,
                    timings: PhaseTimings::total_only(t0.elapsed().as_nanos() as u64),
                    extra: RouteExtra::Cached { stats },
                });
            }
        }
        Ok(outcomes)
    }

    /// The cache key of one request (see [`request_fingerprint`]).
    fn request_fp(router: &str, set: &CommSet, mask: Option<&FaultMask>) -> u64 {
        request_fingerprint(router, set, mask)
    }

    /// Route through the schedule cache **and** execute the schedule on
    /// the compiled-replay simulator in one call.
    ///
    /// The request routes via [`EngineCtx::route_cached`]; its cache entry
    /// then carries a lazily-attached [`cst_sim::CompiledProgram`], so the
    /// first compiled request per entry pays one lowering pass and every
    /// later hit replays the cached program with **zero recompilation**
    /// (program buffers are pooled and reused like `SchedulePool`
    /// schedules — eviction salvages them, first-compiles reuse them).
    /// The returned [`cst_sim::SimOutcome`] is byte-for-byte identical to
    /// `cst_sim::simulate_schedule` on the routed schedule with default
    /// payloads; recycle it with [`EngineCtx::recycle_sim`].
    pub fn route_compiled(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<(RouteOutcome, cst_sim::SimOutcome), CstError> {
        self.route_compiled_inner(router, topo, set, None)
    }

    /// [`EngineCtx::route_compiled`] through the registry by stable name.
    pub fn route_named_compiled(
        &mut self,
        name: &str,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<(RouteOutcome, cst_sim::SimOutcome), CstError> {
        let router = registry::find(name)
            .ok_or_else(|| CstError::UnknownRouter { name: name.to_string() })?;
        self.route_compiled_inner(router.as_ref(), topo, set, None)
    }

    /// [`EngineCtx::route_masked`] plus compiled replay of the degraded
    /// schedule. Half-duplex split rounds lower like any others — just
    /// more instructions — and an empty mask shares the plain request's
    /// entry and program, exactly like [`EngineCtx::route_masked_cached`].
    pub fn route_masked_compiled(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
        mask: &FaultMask,
    ) -> Result<(RouteOutcome, cst_sim::SimOutcome), CstError> {
        if mask.is_empty() {
            let (mut out, sim) = self.route_compiled_inner(router, topo, set, None)?;
            out.degradation = Some(DegradationReport::fault_free(set.len()));
            return Ok((out, sim));
        }
        self.route_compiled_inner(router, topo, set, Some(mask))
    }

    /// Return a replayed outcome's buffers to the replay scratch so the
    /// next compiled request reuses them (the `recycle` of this path).
    pub fn recycle_sim(&mut self, sim: cst_sim::SimOutcome) {
        self.replay.recycle(sim);
    }

    fn route_compiled_inner(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Result<(RouteOutcome, cst_sim::SimOutcome), CstError> {
        let out = self.route_cached_inner(router, topo, set, mask)?;
        let fp = Self::request_fp(router.name(), set, mask);
        let payloads = cst_sim::default_payloads(set);
        // Warm path: the entry this request just hit (or inserted) holds
        // the compiled program; replay it through the context's scratch.
        if let Some(cache) = self.cache.as_mut() {
            if let Some(prog) = cache.compiled_program(fp, router.name(), set, mask, topo)? {
                let sim = prog.replay_with(&mut self.replay, &payloads)?;
                return Ok((out, sim));
            }
        }
        // No resident entry (cache disabled or displaced): lower into the
        // context's own pooled program.
        let prog = match self.local_program.as_mut() {
            Some(p) => {
                p.recompile(topo, set, &out.schedule)?;
                p
            }
            None => self
                .local_program
                .insert(cst_sim::CompiledProgram::compile(topo, set, &out.schedule)?),
        };
        let sim = prog.replay_with(&mut self.replay, &payloads)?;
        Ok((out, sim))
    }

    fn route_cached_inner(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
        mask: Option<&FaultMask>,
    ) -> Result<RouteOutcome, CstError> {
        let t0 = Instant::now();
        let fp = Self::request_fp(router.name(), set, mask);
        // Hit path: cache and pool are disjoint fields, so the cached
        // schedule can be copied out through pooled round shells while
        // the entry is still borrowed.
        let cache = self
            .cache
            .get_or_insert_with(|| ScheduleCache::new(DEFAULT_CACHE_CAPACITY));
        if let Some(entry) = cache.lookup(fp, router.name(), set, mask) {
            let schedule = self.pool.copy_schedule(&entry.schedule);
            let rounds = entry.rounds;
            let router_name = entry.router;
            let power = entry.power.clone();
            let degradation = entry.degradation.clone();
            let stats = cache.stats();
            return Ok(RouteOutcome {
                router: router_name,
                schedule,
                rounds,
                power,
                timings: PhaseTimings::total_only(t0.elapsed().as_nanos() as u64),
                extra: RouteExtra::Cached { stats },
                degradation,
            });
        }

        let mut out = match mask {
            Some(m) => self.route_masked(router, topo, set, m)?,
            None => self.route(router, topo, set)?,
        };
        // The fresh schedule moves into the entry (no clone); the caller
        // gets a copy through pooled shells — the same cheap path a hit
        // takes — and the displaced victim schedule recirculates into the
        // pool. With the cache disabled the schedule comes straight back.
        let fresh = std::mem::take(&mut out.schedule);
        let cache = self
            .cache
            .get_or_insert_with(|| ScheduleCache::new(DEFAULT_CACHE_CAPACITY));
        let ins = cache.insert(
            fp,
            out.router,
            set,
            mask,
            fresh,
            &out.power,
            out.degradation.as_ref(),
        );
        out.schedule = match (ins.displaced, ins.resident) {
            (displaced, Some(entry_schedule)) => {
                let copy = self.pool.copy_schedule(entry_schedule);
                if let Some(victim) = displaced {
                    self.pool.put_schedule(victim);
                }
                copy
            }
            (Some(original), None) => original,
            (None, None) => unreachable!("disabled cache returns the input schedule"),
        };
        Ok(out)
    }
}

/// The canonical 64-bit cache key of one routing request: the router
/// name (length-prefixed), the communication-set fingerprint, and the
/// fault-mask fingerprint behind a presence tag — so "no mask" can never
/// alias any real mask. This is the *one* keying function for every
/// schedule cache in the workspace: `EngineCtx`'s private cache, the
/// batch dedupe, and the serve daemon's shared
/// [`ShardedScheduleCache`](crate::ShardedScheduleCache) all call it, so
/// a request fingerprinted on one side of a socket addresses the same
/// entry on the other.
pub fn request_fingerprint(router: &str, set: &CommSet, mask: Option<&FaultMask>) -> u64 {
    let mut fp = Fp64::new("cst/route-request");
    fp.write_str(router);
    fp.write_u64(set.fingerprint());
    match mask {
        None => fp.write_u64(0),
        Some(m) => {
            fp.write_u64(1);
            fp.write_u64(m.fingerprint());
        }
    }
    fp.finish()
}
