//! The reusable engine context: every scratch buffer any router needs,
//! kept warm across requests so repeated scheduling through one
//! [`EngineCtx`] reaches a zero-allocation steady state (asserted by the
//! workspace's allocation-gate test for the serial CSA).

use crate::outcome::{RouteExtra, RouteOutcome};
use crate::registry;
use crate::router::Router;
use cst_comm::{CommSet, Schedule, SchedulePool};
use cst_core::{CstError, CstTopology, MergedRound, PowerReport};
use cst_padr::{CsaScratch, ParallelScratch};

/// Reusable scratch for repeated routing requests.
///
/// One context serves requests of any size, any router, in any order: each
/// scratch re-targets itself to the request's topology and grows its
/// buffers monotonically. After a warm-up call per (router, shape), the
/// serial CSA path allocates nothing; the other routers reuse the pooled
/// schedules/meters and the shared [`MergedRound`] but still allocate for
/// their own intermediate structures (decompositions, mirrored sets,
/// layerings).
///
/// # Examples
///
/// ```
/// use cst_core::CstTopology;
/// use cst_comm::CommSet;
/// use cst_engine::EngineCtx;
///
/// let topo = CstTopology::with_leaves(8);
/// let set = CommSet::from_pairs(8, &[(0, 7), (1, 6), (2, 5)]); // width 3
/// let mut ctx = EngineCtx::new();
/// let out = ctx.route_named("csa", &topo, &set).unwrap();
/// assert_eq!(out.rounds, 3); // Theorem 5
/// ctx.recycle(out); // return the schedule + meter to the pool
/// ```
#[derive(Default)]
pub struct EngineCtx {
    pub(crate) csa: CsaScratch,
    pub(crate) parallel: ParallelScratch,
    pub(crate) merged: MergedRound,
    pub(crate) pool: SchedulePool,
}

impl EngineCtx {
    /// An empty context; buffers are sized lazily by the first requests.
    pub fn new() -> Self {
        EngineCtx::default()
    }

    /// Route `set` on `topo` with an explicit router.
    pub fn route(
        &mut self,
        router: &dyn Router,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        router.route(self, topo, set)
    }

    /// Route through the registry by stable name (see
    /// [`crate::registry::names`]).
    pub fn route_named(
        &mut self,
        name: &str,
        topo: &CstTopology,
        set: &CommSet,
    ) -> Result<RouteOutcome, CstError> {
        let router = registry::find(name)
            .ok_or_else(|| CstError::UnknownRouter { name: name.to_string() })?;
        router.route(self, topo, set)
    }

    /// Return an outcome's recyclable parts (schedule, meter) to the pool
    /// so the next request reuses their allocations.
    pub fn recycle(&mut self, outcome: RouteOutcome) {
        self.pool.put_schedule(outcome.schedule);
        if let RouteExtra::Csa { meter, .. } = outcome.extra {
            self.pool.put_meter(meter);
        }
    }

    /// Meter an arbitrary schedule under the PADR power model using pooled
    /// meter storage. Used by routers whose construction path does not
    /// already meter (baselines, composed schedulers).
    pub(crate) fn meter_schedule(
        &mut self,
        topo: &CstTopology,
        schedule: &Schedule,
    ) -> PowerReport {
        let mut meter = self.pool.take_meter(topo);
        for round in &schedule.rounds {
            meter.begin_round();
            for (node, conn) in round.requirements() {
                meter.require(node, conn);
            }
        }
        let report = meter.report(topo);
        self.pool.put_meter(meter);
        report
    }
}
